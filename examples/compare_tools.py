"""Compare every disassembly algorithm on one complex binary.

Run with::

    python examples/compare_tools.py [style] [seed]

This is the paper's motivating experiment in miniature: on a binary
with data embedded in the text section, linear sweep loses precision,
recursive descent loses recall, probabilistic disassembly splits the
difference, and the prioritized error-correcting disassembler keeps
both.
"""

import sys

from repro import BinarySpec, Disassembler, generate_binary
from repro.baselines import (heuristic_descent, linear_sweep,
                             probabilistic_disassembly, recursive_descent)
from repro.eval import Table, evaluate
from repro.synth import style_by_name


def main(style_name: str = "msvc-like", seed: int = 7) -> None:
    case = generate_binary(BinarySpec(name="compare",
                                      style=style_by_name(style_name),
                                      function_count=40, seed=seed))
    print(f"binary: {style_name}, {case.truth.size} bytes, "
          f"{case.truth.data_bytes} bytes embedded data\n")

    disassembler = Disassembler()
    tools = {
        "linear-sweep": lambda: linear_sweep(case.text),
        "recursive-descent": lambda: recursive_descent(case.text, 0),
        "rd-heuristic": lambda: heuristic_descent(case.text, 0),
        "probabilistic": lambda: probabilistic_disassembly(case.text, 0),
        "repro (this paper)": lambda: disassembler.disassemble(case),
    }

    table = Table(title=f"Tool comparison on {style_name} (seed {seed})",
                  columns=["tool", "precision", "recall", "f1",
                           "false_code", "missed_code"])
    for name, run in tools.items():
        evaluation = evaluate(run(), case.truth)
        table.add(tool=name,
                  precision=evaluation.instructions.precision,
                  recall=evaluation.instructions.recall,
                  f1=evaluation.instructions.f1,
                  false_code=evaluation.bytes.false_code,
                  missed_code=evaluation.bytes.missed_code)
    print(table.render())


if __name__ == "__main__":
    style = sys.argv[1] if len(sys.argv) > 1 else "msvc-like"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(style, seed)
