"""Train the statistical models on a custom corpus.

Run with::

    python examples/custom_models.py

The default models are trained on a balanced mix of all three compiler
styles.  When the deployment target is known (say, a fleet of MSVC-built
firmware), training on matching binaries sharpens the n-gram and data
models.  This example measures that effect, and also demonstrates model
serialization so trained models can ship with an application.
"""

from repro import BinarySpec, Disassembler, generate_binary
from repro.eval import evaluate
from repro.stats import (DataByteModel, Models, NgramModel, train_models)
from repro.synth import MSVC_LIKE, generate_corpus


def main() -> None:
    # Held-out evaluation binary (eval seeds never overlap training).
    target = generate_binary(BinarySpec(name="target", style=MSVC_LIKE,
                                        function_count=40, seed=3))

    # 1. Specialized corpus: msvc-like training binaries only.
    training = [generate_binary(BinarySpec(name=f"train-{s}",
                                           style=MSVC_LIKE,
                                           function_count=30, seed=s))
                for s in (90010, 90011, 90012)]
    specialized = train_models(training)
    print(f"specialized models: {specialized.code.total} n-gram events, "
          f"{specialized.data.total} data bytes")

    # 2. Generic corpus: every style.
    generic = train_models(generate_corpus(seeds=(90020,),
                                           function_count=30))

    for name, models in (("generic", generic),
                         ("specialized", specialized)):
        disassembler = Disassembler(models=models)
        evaluation = evaluate(disassembler.disassemble(target),
                              target.truth)
        print(f"{name:12s} F1={evaluation.instructions.f1:.4f} "
              f"errors={evaluation.bytes.total_errors}")

    # 3. Serialize and reload the trained models.
    code_json = specialized.code.to_json()
    data_json = specialized.data.to_json()
    restored = Models(code=NgramModel.from_json(code_json),
                      data=DataByteModel.from_json(data_json))
    disassembler = Disassembler(models=restored)
    evaluation = evaluate(disassembler.disassemble(target), target.truth)
    print(f"{'restored':12s} F1={evaluation.instructions.f1:.4f} "
          f"(round-tripped through JSON, "
          f"{len(code_json) + len(data_json)} bytes)")


if __name__ == "__main__":
    main()
