"""Dynamic validation: execute the binary and cross-check disassembly.

Run with::

    python examples/dynamic_validation.py

Static disassemblers can only be compared against static ground truth --
unless you *run* the binary.  This example emulates a generated binary
from every recovered function entry and checks that each executed
instruction offset was (a) a ground-truth instruction (generator
correctness) and (b) predicted by each disassembly tool (dynamic
recall).  Tools that miss statically-hidden code get caught by actual
execution.
"""

from repro import BinarySpec, Disassembler, generate_binary
from repro.baselines import linear_sweep, recursive_descent
from repro.emulator import Emulator, validate_dynamically
from repro.eval import Table
from repro.synth import MSVC_LIKE


def main() -> None:
    case = generate_binary(BinarySpec(name="dynamic", style=MSVC_LIKE,
                                      function_count=30, seed=9))
    disassembler = Disassembler()
    ours = disassembler.disassemble(case)

    # Emulate from every ground-truth entry to maximize coverage.
    entries = tuple(sorted(case.truth.function_entries))
    executed: set[int] = set()
    for entry in entries:
        result = Emulator(case).run(entry, max_steps=100_000)
        executed |= result.executed_set
    truth = case.truth.instruction_starts
    print(f"emulated {len(entries)} entries, executed "
          f"{len(executed)} distinct instructions "
          f"({100 * len(executed) / len(truth):.0f}% of all code)")
    outside = executed - truth
    print(f"executed offsets outside ground truth: {len(outside)} "
          f"(generator/emulator consistency check)")

    table = Table(title="Dynamic recall: executed instructions predicted",
                  columns=["tool", "executed_covered", "missed"])
    tools = {
        "repro (this paper)": ours.instruction_starts,
        "linear-sweep": linear_sweep(case.text).instruction_starts,
        "recursive-descent":
            recursive_descent(case.text, 0).instruction_starts,
    }
    for name, predicted in tools.items():
        covered = len(executed & predicted)
        table.add(tool=name, executed_covered=covered,
                  missed=len(executed) - covered)
    print()
    print(table.render())

    report = validate_dynamically(case, ours.instruction_starts,
                                  entries=entries[:8])
    print(f"\nvalidate_dynamically: {report['executed_predicted']}"
          f"/{len(report['executed'])} executed offsets predicted, "
          f"stop reasons {sorted(set(report['stop_reasons']))}")


if __name__ == "__main__":
    main()
