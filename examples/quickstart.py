"""Quickstart: generate a complex binary and disassemble it.

Run with::

    python examples/quickstart.py

This generates a stripped MSVC-like binary (jump tables and literal
pools embedded in the text section), disassembles it without any
metadata, and scores the output against the generator's exact ground
truth.
"""

from repro import BinarySpec, Disassembler, generate_binary
from repro.eval import evaluate
from repro.isa import decode
from repro.synth import MSVC_LIKE


def main() -> None:
    # 1. Build a synthetic stripped binary with embedded data.
    case = generate_binary(BinarySpec(name="quickstart", style=MSVC_LIKE,
                                      function_count=30, seed=42))
    truth = case.truth
    print(f"generated {case.name}: {truth.size} text bytes, "
          f"{len(truth.functions)} functions, "
          f"{truth.data_bytes} bytes of embedded data, "
          f"{len(truth.jump_tables)} in-text jump tables")

    # 2. Disassemble.  The first call trains the statistical models on a
    #    dedicated training corpus (cached for the process).
    disassembler = Disassembler()
    result = disassembler.disassemble(case)
    print(result.summary())

    # 3. Score against ground truth.
    evaluation = evaluate(result, truth)
    print(f"instruction F1:  {evaluation.instructions.f1:.4f} "
          f"(precision {evaluation.instructions.precision:.4f}, "
          f"recall {evaluation.instructions.recall:.4f})")
    print(f"byte errors:     {evaluation.bytes.total_errors} "
          f"({evaluation.bytes.false_code} false-code, "
          f"{evaluation.bytes.missed_code} missed-code)")
    print(f"function F1:     {evaluation.functions.f1:.4f}")

    # 4. Show the first few decoded instructions of the entry function.
    print("\nentry function:")
    offset = 0
    for _ in range(8):
        instruction = decode(case.text, offset)
        print(f"  {instruction}")
        if not instruction.falls_through:
            break
        offset = instruction.end


if __name__ == "__main__":
    main()
