"""Downstream analysis: build a call graph from a stripped binary.

Run with::

    python examples/callgraph_analysis.py

Accurate disassembly is the *first step* of binary analysis; this
example shows the second step a security-analysis client would take:
recover function boundaries, build the inter-procedural call graph
(including edges through resolved pointer tables), and report the
functions that are reachable only indirectly -- the ones conventional
recursive-descent tools never see.
"""

import networkx as nx

from repro import BinarySpec, Disassembler, generate_binary
from repro.analysis import build_cfg
from repro.isa.opcodes import FlowKind
from repro.superset import Superset
from repro.synth import MSVC_LIKE


def main() -> None:
    case = generate_binary(BinarySpec(name="callgraph", style=MSVC_LIKE,
                                      function_count=30, seed=11))
    disassembler = Disassembler()
    rich = disassembler.disassemble_rich(case)
    result = rich.result
    superset = rich.superset

    entries = sorted(result.function_entries)
    print(f"recovered {len(entries)} functions "
          f"(ground truth: {len(case.truth.functions)})")

    # Assign each instruction to its containing function (contiguous
    # layout: a function runs from its entry to the next entry).
    def function_of(offset: int) -> int:
        best = entries[0]
        for entry in entries:
            if entry <= offset:
                best = entry
            else:
                break
        return best

    # Build the call graph: direct call edges plus pointer-table edges.
    callgraph = nx.DiGraph()
    callgraph.add_nodes_from(entries)
    indirect_callsites = 0
    for offset in result.instruction_starts:
        instruction = superset.at(offset)
        if instruction.flow is FlowKind.CALL:
            target = instruction.branch_target
            if target in result.function_entries:
                callgraph.add_edge(function_of(offset), target)
        elif instruction.flow is FlowKind.ICALL:
            indirect_callsites += 1

    print(f"direct call edges: {callgraph.number_of_edges()}, "
          f"indirect call sites: {indirect_callsites}")

    # Which functions are NOT reachable through direct calls from the
    # entry point?  Those are exactly what naive tools miss.
    direct_reachable = nx.descendants(callgraph, 0) | {0}
    indirect_only = [e for e in entries if e not in direct_reachable]
    print(f"functions reachable only indirectly: {len(indirect_only)}")
    for entry in indirect_only[:5]:
        cfg = build_cfg(superset, {
            o for o in result.instruction_starts
            if entry <= o < (entries[entries.index(entry) + 1]
                             if entries.index(entry) + 1 < len(entries)
                             else len(case.text))})
        print(f"  function @{entry:#x}: {len(cfg.blocks)} basic blocks")

    # Cross-check against ground truth dispatch tables.
    true_indirect = case.truth.function_entries - {
        t for t in case.truth.function_entries
        if t in direct_reachable}
    found = len(set(indirect_only) & true_indirect)
    print(f"of the ground-truth indirect-only functions, "
          f"{found}/{len(true_indirect)} were recovered")


if __name__ == "__main__":
    main()
