"""Static binary instrumentation: function-call profiling.

Run with::

    python examples/instrument_profile.py

This is the application the paper's disassembler exists for: take a
stripped binary, recover its structure, then *rewrite* it -- relocating
every instruction, re-encoding branches, retargeting jump/pointer
tables -- while inserting a call counter at every recovered function
entry.  Executing the instrumented copy in the emulator shows the same
behavior as the original, plus a per-function call profile collected at
runtime.
"""

from repro import (BinarySpec, Disassembler, Emulator, generate_binary,
                   rewrite_binary)
from repro.synth import MSVC_LIKE


def main() -> None:
    case = generate_binary(BinarySpec(name="profiled", style=MSVC_LIKE,
                                      function_count=25, seed=72))
    disassembler = Disassembler()
    rich = disassembler.disassemble_rich(case)
    rewritten = rewrite_binary(rich, case.binary)

    print(f"original text:  {len(case.text)} bytes")
    print(f"rewritten text: {len(rewritten.text)} bytes "
          f"({len(rewritten.counters)} instrumented entries)")

    # Run both and compare behavior.
    original = Emulator(case).run(0, max_steps=300_000)
    emulator = Emulator(rewritten.binary)
    copy = emulator.run(rewritten.binary.entry, max_steps=400_000)
    print(f"\noriginal run:  stop={original.stop_reason} "
          f"steps={original.steps} rax={original.return_value}")
    print(f"rewritten run: stop={copy.stop_reason} "
          f"steps={copy.steps} rax={copy.return_value}")
    assert copy.return_value == original.return_value
    assert copy.stop_reason == original.stop_reason

    # Read the call profile out of the counters section.
    print("\ncall profile (entry -> calls):")
    profile = []
    for entry, counter_addr in sorted(rewritten.counters.items()):
        count = emulator.memory.read(counter_addr, 8)
        if count:
            profile.append((count, entry))
    for count, entry in sorted(profile, reverse=True):
        bar = "#" * min(count, 40)
        print(f"  func_{entry:04x}  {count:6d}  {bar}")
    print(f"\n{len(profile)} functions executed, "
          f"{sum(c for c, _ in profile)} calls total")


if __name__ == "__main__":
    main()
