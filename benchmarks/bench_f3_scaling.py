"""Benchmark F3: disassembly runtime versus binary size.

This is the one experiment where pytest-benchmark's timing *is* the
reported quantity: per-size wall times come from the experiment runner,
and the benchmark fixture additionally measures our disassembler's
steady-state throughput on a mid-sized binary.
"""

from conftest import run_once

from repro.core import Disassembler
from repro.eval.experiments import run_f3
from repro.synth import BinarySpec, MSVC_LIKE, generate_binary


def test_f3_scaling_table(benchmark, save_table):
    table = run_once(benchmark, run_f3, function_counts=(10, 20, 40),
                     seed=0)
    save_table("f3", table)

    sizes = [row["text_bytes"] for row in table.rows]
    ours = [row["repro"] for row in table.rows]
    assert sizes == sorted(sizes)
    # Near-linear scaling: time per byte must not blow up with size.
    per_byte = [t / s for t, s in zip(ours, sizes)]
    assert per_byte[-1] < per_byte[0] * 4


def test_f3_disassembler_throughput(benchmark):
    case = generate_binary(BinarySpec(name="bench", style=MSVC_LIKE,
                                      function_count=30, seed=0))
    disassembler = Disassembler()     # trains/caches models up front
    result = benchmark.pedantic(disassembler.disassemble, args=(case,),
                                iterations=1, rounds=3)
    assert result.instructions
