"""Closed-loop load generator for the serving layer (`repro serve`).

Launches a real server subprocess through the CLI, generates a mixed
workload of synthetic binaries (styles x seeds), and drives it with a
fixed number of closed-loop client threads: each thread issues the next
request as soon as the previous response arrives, so offered load
tracks service capacity instead of overrunning it.

Two passes are measured:

* **cold** -- every container is unique, so every request reaches a
  worker; reported as requests/second (the scaling headline: RPS with
  ``--workers 4`` should be well over 2x the ``--workers 1`` figure).
* **hot** -- the same containers again, so every request is a result
  cache hit; cache-hit latency should be an order of magnitude below
  cold latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --workers 4
    PYTHONPATH=src python benchmarks/bench_serve.py --workers 1 \
        --binaries 16 --concurrency 4 --json BENCH_serve.json
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.perf import bench_envelope, write_bench_json  # noqa: E402
from repro.serve.client import ServeClient              # noqa: E402
from repro.synth.corpus import BinarySpec, generate_binary  # noqa: E402
from repro.synth.styles import STYLES, style_by_name    # noqa: E402


def build_workload(count: int, functions: int) -> list[bytes]:
    """``count`` distinct containers cycling through all styles."""
    styles = sorted(STYLES)
    blobs = []
    for index in range(count):
        spec = BinarySpec(name=f"serve-bench-{index}",
                          style=style_by_name(styles[index % len(styles)]),
                          function_count=functions, seed=1000 + index)
        blobs.append(generate_binary(spec).binary.to_bytes())
    return blobs


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(port: int, workers: int, cache_size: int
                 ) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", str(workers), "--cache-size", str(cache_size)],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def closed_loop(client: ServeClient, blobs: list[bytes],
                concurrency: int) -> tuple[float, list[float]]:
    """Drive all blobs through ``concurrency`` closed-loop threads."""
    cursor = iter(range(len(blobs)))
    lock = threading.Lock()
    latencies: list[float] = []
    failures: list[Exception] = []

    def worker() -> None:
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            started = time.perf_counter()
            try:
                client.disassemble(blobs[index])
            except Exception as error:  # noqa: BLE001 -- reported below
                failures.append(error)
                return
            with lock:
                latencies.append(time.perf_counter() - started)

    threads = [threading.Thread(target=worker)
               for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise SystemExit(f"load generation failed: {failures[0]}")
    return elapsed, latencies


def summarize(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "mean_ms": round(statistics.mean(ordered) * 1000, 3),
        "p50_ms": round(ordered[len(ordered) // 2] * 1000, 3),
        "max_ms": round(ordered[-1] * 1000, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads")
    parser.add_argument("--binaries", type=int, default=32,
                        help="distinct containers in the workload")
    parser.add_argument("--functions", type=int, default=12,
                        help="functions per generated binary")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the numbers as a BENCH_*.json dump")
    args = parser.parse_args(argv)

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    if args.workers > cores:
        print(f"note: {args.workers} workers but only {cores} usable "
              f"CPU(s) -- disassembly is CPU-bound, so throughput "
              f"cannot scale past the core count on this machine")

    print(f"generating {args.binaries} binaries "
          f"({args.functions} functions each)...")
    blobs = build_workload(args.binaries, args.functions)

    port = free_port()
    server = start_server(port, args.workers, cache_size=args.binaries * 2)
    client = ServeClient(port=port, timeout=300.0)
    try:
        client.wait_ready(timeout=120.0)

        cold_elapsed, cold = closed_loop(client, blobs, args.concurrency)
        hot_elapsed, hot = closed_loop(client, blobs, args.concurrency)

        cache = client.metrics()["cache"]
        assert cache["hits"] >= len(blobs), cache
    finally:
        server.send_signal(signal.SIGTERM)
        exit_code = server.wait(timeout=60)

    cold_summary = summarize(cold)
    hot_summary = summarize(hot)
    rps = len(blobs) / cold_elapsed
    speedup = cold_summary["mean_ms"] / max(hot_summary["mean_ms"], 1e-6)
    print(f"workers={args.workers} concurrency={args.concurrency} "
          f"binaries={args.binaries}")
    print(f"cold: {rps:6.1f} req/s   "
          f"mean {cold_summary['mean_ms']:8.1f}ms   "
          f"p50 {cold_summary['p50_ms']:8.1f}ms")
    print(f"hot:  {len(blobs) / hot_elapsed:6.1f} req/s   "
          f"mean {hot_summary['mean_ms']:8.1f}ms   "
          f"p50 {hot_summary['p50_ms']:8.1f}ms")
    print(f"cache-hit latency is {speedup:.1f}x below cold latency")
    print(f"server drained cleanly (exit {exit_code})")

    if args.json:
        write_bench_json(args.json, bench_envelope(
            "serve",
            config={"usable_cores": cores, "workers": args.workers,
                    "concurrency": args.concurrency,
                    "binaries": args.binaries},
            metrics={
                "cold_rps": round(rps, 2),
                "cold": cold_summary,
                "hot": hot_summary,
                "hit_speedup": round(speedup, 2),
            },
        ))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
