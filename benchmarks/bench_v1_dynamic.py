"""Benchmark V1: dynamic validation via emulation."""

from conftest import run_once

from repro.eval.experiments import run_v1


def test_v1_dynamic_validation(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_v1, bench_corpus,
                     entries_per_case=8, max_steps=40_000)
    save_table("v1", table)

    by_tool = {row["tool"]: row for row in table.rows}
    ours = by_tool["repro (this paper)"]
    assert ours["executed"] > 0
    # Perfect dynamic recall for our tool; baselines miss executed code.
    assert ours["missed"] == 0
    assert by_tool["recursive-descent"]["missed"] > ours["missed"]
