"""Benchmark fixtures: shared corpora and a result sink.

Every benchmark regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index).  Rendered tables are written to
``benchmarks/results/<id>.txt`` and echoed to stdout, so a benchmark run
leaves the full reproduced evaluation behind as an artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.dataset import evaluation_corpus
from repro.eval.report import Table

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark corpus: one seed per style, mid-sized binaries.  Chosen so
#: the full benchmark suite completes in a few minutes while preserving
#: the accuracy shapes of the full evaluation.
BENCH_SEEDS = (0,)
BENCH_FUNCTIONS = 40


@pytest.fixture(scope="session")
def bench_corpus():
    return evaluation_corpus(seeds=BENCH_SEEDS,
                             function_count=BENCH_FUNCTIONS)


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(experiment_id: str, table: Table) -> None:
        rendered = table.render()
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
