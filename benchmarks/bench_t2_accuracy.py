"""Benchmark T2: instruction-level accuracy of every tool."""

from conftest import run_once

from repro.eval.experiments import run_t2


def test_t2_accuracy(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_t2, bench_corpus)
    save_table("t2", table)

    by_tool = {row["tool"]: row for row in table.rows}
    ours = by_tool["repro (this paper)"]
    # Shape checks mirroring the paper: we win on F1; linear sweep keeps
    # recall but loses precision; recursive descent the reverse.
    assert ours["f1"] == max(row["f1"] for row in table.rows)
    assert ours["f1"] > 0.99
    assert by_tool["linear-sweep"]["recall"] > 0.95
    assert by_tool["linear-sweep"]["precision"] < ours["precision"]
    # RD's precision dips slightly below perfect because it blindly
    # decodes the data placed after noreturn calls.
    assert by_tool["recursive-descent"]["precision"] > 0.95
    assert by_tool["recursive-descent"]["recall"] < 0.7
