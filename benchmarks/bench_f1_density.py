"""Benchmark F1: accuracy versus embedded-data density."""

from conftest import run_once

from repro.eval.experiments import run_f1


def test_f1_density(benchmark, save_table):
    table = run_once(benchmark, run_f1,
                     densities=(0.0, 0.2, 0.4), seeds=(0,),
                     function_count=30)
    save_table("f1", table)

    rows = table.rows
    # Density increases monotonically along the sweep.
    data_pcts = [row["data_pct"] for row in rows]
    assert data_pcts == sorted(data_pcts)
    # Shape: linear sweep degrades with density while we stay flat.
    ours_drop = rows[0]["repro"] - rows[-1]["repro"]
    linear_drop = rows[0]["linear-sweep"] - rows[-1]["linear-sweep"]
    assert linear_drop > ours_drop
    assert all(row["repro"] > 0.97 for row in rows)
