"""Decode hot-path benchmark: compiled engine vs. interpretive oracle.

Superset construction (the ``superset`` phase of the disassembly
pipeline, and the dominant cost of ``bench_t2_accuracy``'s corpus
evaluation) decodes a candidate at every byte offset.  This benchmark
times exactly that phase -- ``Superset.build`` over the t2 benchmark
corpus -- under both decoder backends and gates two promises:

* **Equivalence**: the compiled engine's superset output is identical
  to the interpretive oracle's, candidate by candidate, corpus-wide.
* **Speedup**: the compiled backend beats the oracle by at least
  ``--threshold`` (default 5x) on the superset-decode phase.

Per-backend times are best-of ``--repeats`` with backends interleaved,
so machine drift hits both equally.  Results (including bytes/sec
throughput for the perf trajectory of future PRs) are written to
``benchmarks/results/BENCH_decode.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py
    PYTHONPATH=src python benchmarks/bench_decode.py --repeats 7 \\
        --json benchmarks/results/BENCH_decode.json
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.eval.dataset import evaluation_corpus         # noqa: E402
from repro.isa.decoder import (decoder_backend,          # noqa: E402
                               try_decode, try_decode_interp)
from repro.perf import bench_envelope, write_bench_json   # noqa: E402
from repro.superset import superset as superset_mod      # noqa: E402
from repro.superset.superset import Superset             # noqa: E402

DEFAULT_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_decode.json"

BACKENDS = {"compiled": try_decode, "interp": try_decode_interp}


def build_all(texts: list[bytes], decode) -> list[Superset]:
    superset_mod.try_decode = decode
    try:
        return [Superset.build(text) for text in texts]
    finally:
        superset_mod.try_decode = try_decode


def time_build(texts: list[bytes], decode) -> float:
    gc.collect()
    superset_mod.try_decode = decode
    try:
        started = time.process_time()
        for text in texts:
            Superset.build(text)
        return time.process_time() - started
    finally:
        superset_mod.try_decode = try_decode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--functions", type=int, default=40,
                        help="functions per generated binary")
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved rounds per backend (best-of)")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="minimum compiled-over-interp speedup, x")
    parser.add_argument("--json", metavar="PATH", default=str(DEFAULT_JSON),
                        help="write results as a BENCH_*.json artifact")
    args = parser.parse_args(argv)

    if decoder_backend() != "compiled":
        print("error: run without REPRO_DECODER=interp -- the benchmark "
              "switches backends itself", file=sys.stderr)
        return 2

    corpus = evaluation_corpus(seeds=(0,), function_count=args.functions)
    texts = [bytes(case.text) for case in corpus]
    total_bytes = sum(len(text) for text in texts)
    print(f"corpus: {len(texts)} sections, {total_bytes} bytes "
          f"({args.functions} functions each)")

    # Timing first, on a clean heap: the corpus-wide equivalence check
    # allocates millions of candidate objects, and the resulting
    # allocator fragmentation measurably slows every later decode.
    for decode in BACKENDS.values():                     # warm caches
        build_all(texts[:1], decode)
    best = {name: float("inf") for name in BACKENDS}
    for _ in range(args.repeats):
        for name, decode in BACKENDS.items():
            best[name] = min(best[name], time_build(texts, decode))

    # Equivalence gate: the speedup is worthless if the outputs ever
    # diverge.  Compare candidate lists, not summaries.
    compiled_out = build_all(texts, BACKENDS["compiled"])
    interp_out = build_all(texts, BACKENDS["interp"])
    for index, (a, b) in enumerate(zip(compiled_out, interp_out)):
        assert a.instructions == b.instructions, (
            f"superset mismatch in section {index}")
    print(f"equivalence: {total_bytes} candidates identical "
          "across backends")

    speedup = best["interp"] / best["compiled"]
    throughput = {name: total_bytes / seconds
                  for name, seconds in best.items()}
    for name in BACKENDS:
        print(f"{name:>8}: {best[name]:.3f}s  "
              f"{best[name] / total_bytes * 1e6:.2f}us/offset  "
              f"{throughput[name] / 1e6:.2f} MB/s")
    print(f"speedup: {speedup:.2f}x (gate: >= {args.threshold:.1f}x)")

    if args.json:
        write_bench_json(args.json, bench_envelope(
            "decode",
            config={"sections": len(texts), "bytes": total_bytes,
                    "functions": args.functions, "seeds": [0],
                    "repeats": args.repeats,
                    "threshold": args.threshold},
            metrics={
                "seconds": best,
                "bytes_per_second": {
                    name: round(value)
                    for name, value in throughput.items()},
                "microseconds_per_offset": {
                    name: round(seconds / total_bytes * 1e6, 3)
                    for name, seconds in best.items()},
                "speedup": round(speedup, 2),
                "superset_identical": 1,
            },
        ))
        print(f"wrote {args.json}")

    if speedup < args.threshold:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{args.threshold:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
