"""Fleet throughput benchmark: serial vs worker pool vs via-serve.

Runs one small synthetic corpus through ``repro.fleet`` three ways --
serially in one process, fanned over ``--jobs N`` worker processes, and
through a live ``repro serve`` subprocess -- and reports binaries/second
for each.  Every pass uses a fresh run directory (checkpoints off the
table), and all three trends are asserted byte-identical before any
number is reported: a throughput figure for a schedule that changes the
answer would be meaningless.

The emitted BENCH JSON embeds the trend document itself, so the same
artifact doubles as the committed taxonomy baseline that
``repro evalfleet diff`` / the CI fleet-smoke job gate against.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --jobs 2
    PYTHONPATH=src python benchmarks/bench_fleet.py --binaries 24 \
        --json benchmarks/results/BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.fleet import (FleetConfig, check_separation, plan_grid,  # noqa: E402
                         run_fleet, trend_json)
from repro.perf import bench_envelope, write_bench_json  # noqa: E402
from repro.serve.client import ServeClient              # noqa: E402
from repro.synth.styles import STYLES                   # noqa: E402


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(port: int, workers: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", str(workers)],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def timed_pass(manifest, workdir: Path, label: str,
               config: FleetConfig) -> tuple[dict, float]:
    rundir = workdir / label
    shutil.rmtree(rundir, ignore_errors=True)
    started = time.perf_counter()
    trend = run_fleet(manifest, rundir, config)
    return trend, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binaries", type=int, default=18,
                        help="corpus size (split across all styles)")
    parser.add_argument("--functions", type=int, default=6,
                        help="functions per generated binary")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the pooled pass")
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="server workers for the via-serve pass")
    parser.add_argument("--shard-size", type=int, default=6)
    parser.add_argument("--skip-serve", action="store_true",
                        help="omit the via-serve pass (e.g. sandboxes "
                             "without subprocess servers)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the numbers as a BENCH_*.json dump")
    args = parser.parse_args(argv)

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    if args.jobs > cores:
        print(f"note: {args.jobs} jobs but only {cores} usable CPU(s) "
              f"-- per-binary analysis is CPU-bound, so the pooled "
              f"pass cannot scale past the core count on this machine")

    seeds_per_cell = max(1, args.binaries // (len(STYLES) * 2))
    manifest = plan_grid(sorted(STYLES),
                         [args.functions, args.functions + 2],
                         range(seeds_per_cell)).limit(args.binaries)
    print(f"corpus: {len(manifest)} binaries "
          f"({args.functions}/{args.functions + 2} functions, "
          f"{len(STYLES)} styles)")

    workdir = Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    passes: dict[str, float] = {}
    trends: dict[str, dict] = {}
    try:
        trends["serial"], passes["serial"] = timed_pass(
            manifest, workdir, "serial",
            FleetConfig(shard_size=args.shard_size))

        trends["pooled"], passes["pooled"] = timed_pass(
            manifest, workdir, "pooled",
            FleetConfig(jobs=args.jobs, shard_size=args.shard_size))

        if not args.skip_serve:
            port = free_port()
            server = start_server(port, args.serve_workers)
            try:
                ServeClient(port=port, timeout=300.0).wait_ready(
                    timeout=120.0)
                trends["serve"], passes["serve"] = timed_pass(
                    manifest, workdir, "serve",
                    FleetConfig(jobs=args.jobs, via="serve",
                                server=f"127.0.0.1:{port}",
                                shard_size=args.shard_size))
            finally:
                server.send_signal(signal.SIGTERM)
                server.wait(timeout=60)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    canonical = trend_json(trends["serial"])
    for label, trend in trends.items():
        if trend_json(trend) != canonical:
            raise SystemExit(f"trend mismatch: {label} pass disagrees "
                             f"with serial -- determinism bug")
    problems = check_separation(trends["serial"])
    if problems:
        raise SystemExit("separation violated: " + "; ".join(problems))

    for label, elapsed in passes.items():
        print(f"{label:>7s}: {len(manifest) / elapsed:6.2f} binaries/s "
              f"({elapsed:6.1f}s)")
    print(f"all {len(passes)} schedules produced byte-identical trends; "
          f"paper-predicted separation holds")

    if args.json:
        write_bench_json(args.json, bench_envelope(
            "fleet",
            config={"usable_cores": cores, "binaries": len(manifest),
                    "functions": args.functions, "jobs": args.jobs},
            metrics={
                "throughput": {
                    label: round(len(manifest) / elapsed, 3)
                    for label, elapsed in passes.items()},
                "seconds": {label: round(elapsed, 2)
                            for label, elapsed in passes.items()},
            },
            # Top-level on purpose: load_trend() reads BENCH_fleet.json
            # as a baseline by looking for an embedded "trend" key.
            trend=trends["serial"],
        ))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
