"""Benchmark F2: accuracy per compiler style."""

from conftest import run_once

from repro.eval.experiments import run_f2


def test_f2_styles(benchmark, save_table):
    table = run_once(benchmark, run_f2, seeds=(0,), function_count=30)
    save_table("f2", table)

    by_style = {row["style"]: row for row in table.rows}
    assert set(by_style) == {"gcc-like", "clang-like", "msvc-like"}
    # We dominate every baseline in every style.
    for style, row in by_style.items():
        baselines = [row[name] for name in
                     ("linear-sweep", "recursive-descent",
                      "rd-heuristic", "probabilistic")]
        assert row["repro"] >= max(baselines), style
    # Linear sweep is near-perfect on clean gcc-like binaries but
    # clearly worse on msvc-like ones.
    assert by_style["gcc-like"]["linear-sweep"] > 0.99
    assert (by_style["msvc-like"]["linear-sweep"]
            < by_style["gcc-like"]["linear-sweep"])
