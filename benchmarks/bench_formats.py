"""Ingestion throughput: RPRB container vs real ELF64 vs PE-shaped load.

Measures how much the real-format loaders (`repro.formats`) cost
relative to the native container path, over the same corpus binaries:

* **rprb** -- ``Binary.from_bytes`` on the native container.
* **elf-parse** -- ``parse_elf`` on the ``emit_elf`` serialization of
  the same binaries (header walk, section mapping, normalization,
  hint collection).
* **elf-detect** -- the full ``load_any`` front door (magic sniffing
  included), i.e. exactly what ``repro disasm``/``repro serve`` pay.
* **emit** -- ``emit_elf`` itself (the R1 forward direction).

The parsers are pure header walks over `memoryview`-free `bytes`, so
throughput should sit within a small constant factor of the container
path; an order-of-magnitude regression here means a loader started
copying section data more than once.

Usage::

    PYTHONPATH=src python benchmarks/bench_formats.py
    PYTHONPATH=src python benchmarks/bench_formats.py \
        --binaries 12 --repeat 20 --json BENCH_formats.json
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.binary.container import Binary               # noqa: E402
from repro.formats import emit_elf, load_any, parse_elf  # noqa: E402
from repro.perf import bench_envelope, write_bench_json  # noqa: E402
from repro.synth.corpus import BinarySpec, generate_binary  # noqa: E402
from repro.synth.styles import STYLES, style_by_name    # noqa: E402


def build_corpus(count: int, functions: int) -> list[Binary]:
    styles = sorted(STYLES)
    binaries = []
    for index in range(count):
        spec = BinarySpec(name=f"fmt-bench-{index}",
                          style=style_by_name(styles[index % len(styles)]),
                          function_count=functions, seed=2000 + index)
        binaries.append(generate_binary(spec).binary)
    return binaries


def timed(fn, blobs: list, repeat: int, sizes: list[int] | None = None
          ) -> dict:
    """Run ``fn`` over every blob ``repeat`` times; report throughput."""
    total_bytes = sum(sizes if sizes is not None
                      else [len(blob) for blob in blobs])
    passes = []
    for _ in range(repeat):
        started = time.perf_counter()
        for blob in blobs:
            fn(blob)
        passes.append(time.perf_counter() - started)
    best = min(passes)
    return {
        "passes": repeat,
        "blobs": len(blobs),
        "bytes_per_pass": total_bytes,
        "best_pass_ms": round(best * 1000, 3),
        "mean_pass_ms": round(statistics.mean(passes) * 1000, 3),
        "mib_per_s": round(total_bytes / best / (1 << 20), 1),
        "blobs_per_s": round(len(blobs) / best, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binaries", type=int, default=9,
                        help="corpus size (cycles through all styles)")
    parser.add_argument("--functions", type=int, default=30,
                        help="functions per generated binary")
    parser.add_argument("--repeat", type=int, default=10,
                        help="timed passes over the corpus (best wins)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the numbers as a BENCH_*.json dump")
    args = parser.parse_args(argv)

    print(f"generating {args.binaries} binaries "
          f"({args.functions} functions each)...")
    corpus = build_corpus(args.binaries, args.functions)
    rprb_blobs = [binary.to_bytes() for binary in corpus]
    elf_blobs = [emit_elf(binary) for binary in corpus]

    results = {
        "rprb": timed(Binary.from_bytes, rprb_blobs, args.repeat),
        "elf-parse": timed(parse_elf, elf_blobs, args.repeat),
        "elf-detect": timed(load_any, elf_blobs, args.repeat),
        "emit": timed(emit_elf, corpus, args.repeat,
                      sizes=[len(blob) for blob in elf_blobs]),
    }

    # Sanity: both ingestion paths must see the same binaries.
    for binary, elf_blob in zip(corpus, elf_blobs):
        assert parse_elf(elf_blob).binary.to_bytes() == binary.to_bytes()

    width = max(len(name) for name in results)
    print(f"{'path':<{width}}  {'best-pass':>10}  {'MiB/s':>8}  "
          f"{'blobs/s':>8}")
    for name, row in results.items():
        print(f"{name:<{width}}  {row['best_pass_ms']:>8.1f}ms  "
              f"{row['mib_per_s']:>8.1f}  {row['blobs_per_s']:>8.1f}")

    ratio = (results['elf-detect']['best_pass_ms']
             / max(results['rprb']['best_pass_ms'], 1e-9))
    print(f"elf ingestion costs {ratio:.1f}x the native container path")

    if args.json:
        payload = bench_envelope(
            "formats",
            config={"binaries": args.binaries,
                    "functions": args.functions,
                    "repeat": args.repeat},
            metrics={
                "results": results,
                "elf_over_rprb_ratio": round(ratio, 2),
            },
        )
        written = write_bench_json(args.json, payload)
        print(f"wrote {written}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
