"""Correction-path benchmark: incremental re-disassembly vs cold runs.

Times the near-hit workflow the fact engine enables: disassemble a
binary once, snapshot its :class:`~repro.core.FactBase`, patch a
handful of bytes, and re-disassemble.  The incremental path re-decodes
and re-scores only the offsets whose support windows touch the patch
(a few hundred of tens of thousands) and re-enters the correction
fixpoint; the cold path repeats every phase.  Two gates:

* **Equivalence**: the incremental result is byte-identical to the
  cold result over the patched bytes -- corpus-wide, per patch.
* **Speedup**: the incremental re-disassembly beats the cold one by at
  least ``--threshold`` (default 3x) end to end.

Per-path times are best-of ``--repeats`` with paths interleaved, so
machine drift hits both equally.  Results are written to
``benchmarks/results/BENCH_correct.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_correct.py
    PYTHONPATH=src python benchmarks/bench_correct.py --repeats 5 \\
        --json benchmarks/results/BENCH_correct.json
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import (Disassembler, FactBase,              # noqa: E402
                        disassemble_incremental)
from repro.core.engine import engine_backend                 # noqa: E402
from repro.eval.dataset import evaluation_corpus             # noqa: E402
from repro.perf import bench_envelope, write_bench_json       # noqa: E402

DEFAULT_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_correct.json"


def patch_binary(binary, offset: int):
    """The binary with one text byte flipped at ``offset``."""
    text = bytearray(binary.text.data)
    text[offset] ^= 0x55
    new_text = dataclasses.replace(binary.text, data=bytes(text))
    sections = tuple(new_text if s is binary.text else s
                     for s in binary.sections)
    return dataclasses.replace(binary, sections=sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--functions", type=int, default=40,
                        help="functions per generated binary")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved rounds per path (best-of)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="minimum incremental-over-cold speedup, x")
    parser.add_argument("--json", metavar="PATH", default=str(DEFAULT_JSON),
                        help="write results as a BENCH_*.json artifact")
    args = parser.parse_args(argv)

    corpus = evaluation_corpus(seeds=(0,), function_count=args.functions)
    disassembler = Disassembler()

    # One cold run per case builds the snapshots (and warms every
    # model/decoder cache so the timed rounds measure steady state).
    snapshots = []
    for case in corpus:
        rich = disassembler.disassemble_rich(case)
        base = FactBase.from_run(rich, disassembler.config)
        # Patch near the end of the text: the dirty window stays small
        # but the fall-through context above it is maximal.
        target = patch_binary(case.binary, len(case.text) - 40)
        snapshots.append((case, base, target))
    total_bytes = sum(len(case.text) for case, _, _ in snapshots)
    print(f"corpus: {len(snapshots)} binaries, {total_bytes} bytes "
          f"({args.functions} functions each), 1-byte patch each")

    # Equivalence gate first: the speedup is worthless if the outputs
    # ever diverge.
    reused = []
    for case, base, target in snapshots:
        incremental, stats = disassemble_incremental(disassembler, base,
                                                     target)
        cold = disassembler.disassemble_rich(target)
        assert not stats.cold, f"{case.name}: unexpected cold fallback"
        assert incremental.result.to_json() == cold.result.to_json(), (
            f"incremental/cold divergence on {case.name}")
        reused.append(stats.reused_fraction)
    print(f"equivalence: {len(snapshots)} patched binaries identical "
          f"(mean superset reuse {sum(reused) / len(reused):.1%})")

    def time_cold() -> float:
        gc.collect()
        started = time.process_time()
        for _, _, target in snapshots:
            disassembler.disassemble_rich(target)
        return time.process_time() - started

    def time_incremental() -> float:
        gc.collect()
        started = time.process_time()
        for _, base, target in snapshots:
            disassemble_incremental(disassembler, base, target)
        return time.process_time() - started

    best = {"cold": float("inf"), "incremental": float("inf")}
    for _ in range(args.repeats):
        best["cold"] = min(best["cold"], time_cold())
        best["incremental"] = min(best["incremental"], time_incremental())

    speedup = best["cold"] / best["incremental"]
    for name, seconds in best.items():
        print(f"{name:>12}: {seconds:.3f}s  "
              f"{seconds / len(snapshots) * 1000:.1f}ms/binary")
    print(f"speedup: {speedup:.2f}x (gate: >= {args.threshold:.1f}x)")

    if args.json:
        write_bench_json(args.json, bench_envelope(
            "correct",
            config={"binaries": len(snapshots), "bytes": total_bytes,
                    "functions": args.functions, "seeds": [0],
                    "repeats": args.repeats,
                    "engine_backend": engine_backend()},
            metrics={
                "seconds": best,
                "ms_per_binary": {
                    name: round(v / len(snapshots) * 1000, 2)
                    for name, v in best.items()},
                "mean_reused_fraction": round(
                    sum(reused) / len(reused), 4),
                "speedup": round(speedup, 2),
                "results_identical": 1,
            },
        ))
        print(f"wrote {args.json}")

    if speedup < args.threshold:
        print(f"error: speedup {speedup:.2f}x below the "
              f"{args.threshold:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
