"""Benchmark F4: sensitivity to the gap-acceptance threshold."""

from conftest import run_once

from repro.eval.experiments import run_f4


def test_f4_threshold(benchmark, save_table):
    table = run_once(benchmark, run_f4,
                     thresholds=(-2.0, 0.0, 2.0), seeds=(0,),
                     function_count=30)
    save_table("f4", table)

    rows = table.rows
    recalls = [row["recall"] for row in rows]
    # Raising the threshold can only lower recall.
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # The default threshold (0.0) stays near the F1 optimum.
    default_f1 = next(r["f1"] for r in rows if r["threshold"] == 0.0)
    assert default_f1 >= max(r["f1"] for r in rows) - 0.01
