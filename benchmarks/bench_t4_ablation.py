"""Benchmark T4: ablation of the system's components."""

from conftest import run_once

from repro.eval.experiments import run_t4


def test_t4_ablation(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_t4, bench_corpus)
    save_table("t4", table)

    errors = {row["variant"]: row["total_errors"] for row in table.rows}
    full = errors["full"]
    # Removing the structural table resolution must hurt badly.
    assert errors["no-table-resolution"] > 2 * full
    # Statistics alone (no behavioral veto) admits more data as code.
    assert errors["stat-only"] >= full
    # Prioritized correction matters most when anchors are scarce:
    # dropping it on top of table resolution multiplies the damage.
    assert (errors["no-priority+no-tables"]
            > 2 * errors["no-table-resolution"])
    # No ablation may beat the full system by a wide margin.
    for variant, count in errors.items():
        assert full <= count + 60, (variant, errors)
