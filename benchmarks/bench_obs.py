"""Observability overhead benchmark: what does the instrumentation cost?

Measures the t2 corpus (one seed per style) under five modes:

* **control** -- the pipeline with the tracing hook swapped for the
  plain PR-1 phase timer (the pre-observability baseline).
* **off** -- the shipped default: hooks present, tracing, profiling
  and provenance disabled.  The headline assertion is that this costs
  less than ``--threshold`` percent (default 2%) over control, that a
  disabled run opens exactly zero spans, and that it takes exactly
  zero profiler samples.
* **trace** -- spans on (in-memory tracer), measuring the tracing tax.
* **sampled** -- the sampling profiler on (default 5 ms interval),
  asserted under the same ``--threshold`` overhead ceiling: continuous
  profiling must stay cheap enough to leave on for whole fleet runs.
* **provenance** -- the per-byte audit trail on, measuring why it is
  opt-in (see DESIGN.md).

Per-mode times are best-of ``--repeats`` with modes interleaved, so
machine drift hits every mode equally.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --repeats 5 \
        --json BENCH_obs.json
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import disassembler as disassembler_mod  # noqa: E402
from repro.core.config import DEFAULT_CONFIG             # noqa: E402
from repro.core.disassembler import Disassembler         # noqa: E402
from repro.eval.dataset import evaluation_corpus         # noqa: E402
from repro.obs.profile import (samples_taken,            # noqa: E402
                               start_profiler, stop_profiler)
from repro.obs.trace import activate, spans_started      # noqa: E402
from repro.perf import bench_envelope, write_bench_json  # noqa: E402


@contextmanager
def _plain_phase(name, timings=None, *, tracer=None, **attrs):
    """The PR-1 phase timer: perf_counter + bucket add, no tracing hook."""
    started = time.perf_counter()
    try:
        yield None
    finally:
        if timings is not None:
            timings.add(name, time.perf_counter() - started)


def _time_one(disassembler, case) -> float:
    # CPU time, not wall clock: the pipeline is single-threaded, and
    # process_time is immune to the scheduling noise of shared CI
    # runners, which dwarfs a sub-2% effect.  Collections are forced
    # between measurements (and the collector kept off inside them) so
    # GC pauses from earlier allocations never land in a timed region.
    gc.collect()
    started = time.process_time()
    disassembler.disassemble(case)
    return time.process_time() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--functions", type=int, default=40,
                        help="functions per generated binary")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved rounds per mode (best-of)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max tracing-off overhead over control, %%")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as a BENCH_*.json artifact")
    args = parser.parse_args(argv)

    corpus = evaluation_corpus(seeds=(0,),
                               function_count=args.functions)
    plain = Disassembler()
    audited = Disassembler(config=replace(DEFAULT_CONFIG,
                                          record_provenance=True))

    print(f"warming up ({len(corpus)} binaries, "
          f"{args.functions} functions each)...")
    for case in corpus:                      # superset cache + models
        plain.disassemble(case)

    def run_control(case) -> float:
        original = disassembler_mod.phase_span
        disassembler_mod.phase_span = _plain_phase
        try:
            return _time_one(plain, case)
        finally:
            disassembler_mod.phase_span = original

    def run_off(case) -> float:
        return _time_one(plain, case)

    def run_trace(case) -> float:
        with activate():                     # in-memory, discarded
            return _time_one(plain, case)

    def run_provenance(case) -> float:
        return _time_one(audited, case)

    def run_sampled(case) -> float:
        start_profiler()
        try:
            return _time_one(plain, case)
        finally:
            stop_profiler()

    modes = {"control": run_control, "off": run_off,
             "trace": run_trace, "sampled": run_sampled,
             "provenance": run_provenance}
    order = list(modes)
    minima: dict[str, list[float]] = {
        name: [float("inf")] * len(corpus) for name in modes}

    # Modes run back-to-back per binary, their order rotating every
    # measurement, so machine drift (frequency scaling, contention)
    # biases no mode; summed per-case minima then filter what remains.
    spans_before = spans_started()
    spans_disabled = 0
    samples_disabled = 0
    gc.disable()
    for round_index in range(max(1, args.repeats)):
        for case_index, case in enumerate(corpus):
            rotation = round_index * len(corpus) + case_index
            shift = rotation % len(order)
            for name in order[shift:] + order[:shift]:
                if name != "trace":
                    counted = spans_started()
                if name != "sampled":
                    sampled = samples_taken()
                elapsed = modes[name](case)
                if name != "trace":
                    spans_disabled += spans_started() - counted
                if name != "sampled":
                    samples_disabled += samples_taken() - sampled
                minima[name][case_index] = min(
                    minima[name][case_index], elapsed)
    gc.enable()
    spans_in_disabled_modes = spans_disabled
    spans_traced = spans_started() - spans_before
    samples_total = samples_taken()
    best = {name: sum(times) for name, times in minima.items()}

    overhead = 100.0 * (best["off"] - best["control"]) / best["control"]
    sampled_overhead = 100.0 * (best["sampled"] - best["control"]) \
        / best["control"]
    print(f"control     {best['control']:8.3f}s  (plain PR-1 timer)")
    print(f"off         {best['off']:8.3f}s  ({overhead:+.2f}% vs control)")
    print(f"trace       {best['trace']:8.3f}s  "
          f"({100.0 * (best['trace'] / best['control'] - 1):+.2f}%)")
    print(f"sampled     {best['sampled']:8.3f}s  "
          f"({sampled_overhead:+.2f}%)")
    print(f"provenance  {best['provenance']:8.3f}s  "
          f"({100.0 * (best['provenance'] / best['control'] - 1):+.2f}%)")
    print(f"spans opened with observability off: "
          f"{spans_in_disabled_modes} (traced runs opened "
          f"{spans_traced - spans_in_disabled_modes})")
    print(f"profiler samples while disabled: {samples_disabled} "
          f"(sampled runs took {samples_total - samples_disabled})")

    if args.json:
        write_bench_json(args.json, bench_envelope(
            "obs",
            config={"functions": args.functions,
                    "repeats": args.repeats,
                    "threshold_pct": args.threshold},
            metrics={
                "seconds": dict(sorted(best.items())),
                "off_overhead_pct": round(overhead, 3),
                "sampled_overhead_pct": round(sampled_overhead, 3),
                "spans_disabled": spans_in_disabled_modes,
                "samples_disabled": samples_disabled,
            },
        ))

    failures = []
    if spans_in_disabled_modes != 0:
        failures.append(f"disabled modes opened "
                        f"{spans_in_disabled_modes} spans (expected 0)")
    if samples_disabled != 0:
        failures.append(f"disabled modes took {samples_disabled} "
                        f"profiler samples (expected 0)")
    if overhead >= args.threshold:
        failures.append(f"tracing-off overhead {overhead:.2f}% >= "
                        f"{args.threshold}% threshold")
    if sampled_overhead >= args.threshold:
        failures.append(f"sampling overhead {sampled_overhead:.2f}% >= "
                        f"{args.threshold}% threshold")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: tracing-off overhead {overhead:.2f}% < "
              f"{args.threshold}%, sampling overhead "
              f"{sampled_overhead:.2f}% < {args.threshold}%, zero "
              f"spans and zero samples while disabled")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
