"""Benchmark T3: byte-level error counts -- the headline 3x-4x claim."""

from conftest import run_once

from repro.eval.experiments import run_t3


def test_t3_errors(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_t3, bench_corpus)
    save_table("t3", table)

    by_tool = {row["tool"]: row["total_errors"] for row in table.rows}
    ours = by_tool.pop("repro (this paper)")
    best_baseline = min(by_tool.values())
    # The paper reports 3x-4x fewer errors than the best prior work; our
    # synthetic substrate must preserve at least that factor.
    assert best_baseline / max(ours, 1) >= 3.0
