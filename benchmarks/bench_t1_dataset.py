"""Benchmark T1: dataset characteristics (and corpus generation cost)."""

from conftest import run_once

from repro.eval.experiments import run_t1


def test_t1_dataset(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_t1, bench_corpus)
    save_table("t1", table)

    assert len(table.rows) == len(bench_corpus)
    msvc_rows = [r for r in table.rows if r["binary"].startswith("msvc")]
    gcc_rows = [r for r in table.rows if r["binary"].startswith("gcc")]
    # The defining dataset property: msvc-like binaries embed data in
    # text, gcc-like binaries do not.
    assert all(row["data_pct"] > 3.0 for row in msvc_rows)
    assert all(row["data_pct"] == 0.0 for row in gcc_rows)
