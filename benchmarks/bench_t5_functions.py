"""Benchmark T5: function-entry identification accuracy."""

from conftest import run_once

from repro.eval.experiments import run_t5


def test_t5_functions(benchmark, bench_corpus, save_table):
    table = run_once(benchmark, run_t5, bench_corpus)
    save_table("t5", table)

    by_tool = {row["tool"]: row for row in table.rows}
    ours = by_tool["repro (this paper)"]
    assert ours["f1"] >= by_tool["rd-heuristic"]["f1"]
    assert ours["f1"] > by_tool["recursive-descent"]["f1"]
    assert ours["precision"] > 0.95
