"""Parallel evaluation driver: many (tool, binary) runs across processes.

Corpus evaluation is embarrassingly parallel -- every (tool, binary)
pair is independent -- so the experiment runners fan the pairs out over
a :class:`~concurrent.futures.ProcessPoolExecutor`.  Three properties
the driver guarantees:

* **Determinism**: results come back in submission order regardless of
  worker scheduling, so every table is byte-identical to a serial run.
* **Worker reuse**: each worker process keeps one
  :class:`~repro.core.disassembler.Disassembler` per distinct
  :class:`ToolSpec` and loads its models from the on-disk cache
  (:mod:`repro.stats.cache`) instead of retraining.
* **Picklability**: tools cross the process boundary as declarative
  :class:`ToolSpec` values (name + config), never as closures.

``jobs=None`` or ``jobs=1`` runs serially in-process (no pool, no
pickling); ``jobs=0`` means "one per CPU".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..baselines import (heuristic_descent, linear_sweep,
                         probabilistic_disassembly, recursive_descent)
from ..binary.loader import TestCase
from ..core.config import DisassemblerConfig
from ..core.disassembler import Disassembler
from ..obs.trace import SpanContext, Tracer, current_tracer, set_tracer
from ..result import DisassemblyResult
from ..superset.superset import cached_superset
from .metrics import Evaluation, aggregate, evaluate


@dataclass(frozen=True)
class ToolSpec:
    """A declarative, picklable description of one tool under test."""

    kind: str                               # "baseline" | "repro"
    name: str                               # display / registry name
    config: DisassemblerConfig | None = None   # repro-only override

    def __post_init__(self) -> None:
        if self.kind not in ("baseline", "repro"):
            raise ValueError(f"unknown tool kind: {self.kind!r}")
        if self.kind == "baseline" and self.name not in BASELINE_RUNNERS:
            raise ValueError(f"unknown baseline: {self.name!r}")


def baseline_spec(name: str) -> ToolSpec:
    return ToolSpec(kind="baseline", name=name)


def repro_spec(name: str = "repro (this paper)",
               config: DisassemblerConfig | None = None) -> ToolSpec:
    return ToolSpec(kind="repro", name=name, config=config)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _run_linear_sweep(case: TestCase) -> DisassemblyResult:
    return linear_sweep(case.text, superset=cached_superset(case.text))


def _run_recursive_descent(case: TestCase) -> DisassemblyResult:
    return recursive_descent(case.text, 0,
                             superset=cached_superset(case.text))


def _run_heuristic_descent(case: TestCase) -> DisassemblyResult:
    return heuristic_descent(case.text, 0)


def _run_probabilistic(case: TestCase) -> DisassemblyResult:
    return probabilistic_disassembly(case.text, 0)


#: Baseline registry; keys are the names used throughout the tables.
BASELINE_RUNNERS = {
    "linear-sweep": _run_linear_sweep,
    "recursive-descent": _run_recursive_descent,
    "rd-heuristic": _run_heuristic_descent,
    "probabilistic": _run_probabilistic,
}

#: Per-worker disassembler instances, one per distinct spec, so a worker
#: evaluating many binaries with the same tool builds models/scorers once.
_WORKER_DISASSEMBLERS: dict[ToolSpec, Disassembler] = {}


def disassembler_for(spec: ToolSpec) -> Disassembler:
    """The per-process cached :class:`Disassembler` for a repro spec.

    Every caller that wants warm-model reuse across many runs in one
    process -- the evaluation workers below and the serving layer's
    job workers (:mod:`repro.serve.scheduler`) -- goes through here.
    """
    if spec.kind != "repro":
        raise ValueError(f"no disassembler for tool kind {spec.kind!r}")
    disassembler = _WORKER_DISASSEMBLERS.get(spec)
    if disassembler is None:
        disassembler = (Disassembler(config=spec.config)
                        if spec.config is not None else Disassembler())
        _WORKER_DISASSEMBLERS[spec] = disassembler
    return disassembler


def run_tool(spec: ToolSpec, case: TestCase) -> DisassemblyResult:
    """Run one tool on one binary (reusing per-process disassemblers)."""
    if spec.kind == "baseline":
        return BASELINE_RUNNERS[spec.name](case)
    return disassembler_for(spec).disassemble(case)


def _evaluate_pair(pair: tuple[ToolSpec, TestCase]) -> Evaluation:
    spec, case = pair
    return evaluate(run_tool(spec, case), case.truth)


def _predict_pair(pair: tuple[ToolSpec, TestCase]) -> DisassemblyResult:
    return run_tool(*pair)


def _traced_call(fn, item):
    """Run one pair in a worker under a tracer seeded from the caller.

    ``item`` is ``(pair, span_context_dict)``.  The worker records into
    its own :class:`Tracer` (the coordinator's, if inherited through
    fork, is ignored by :func:`current_tracer` -- wrong pid) and ships
    its spans home as dicts for :meth:`Tracer.adopt`.
    """
    pair, ctx = item
    spec, case = pair
    tracer = Tracer(parent=SpanContext.from_dict(ctx))
    previous = set_tracer(tracer)
    try:
        with tracer.span("eval-pair", tool=spec.name, case=case.name):
            value = fn(pair)
    finally:
        set_tracer(previous)
    return value, [span.to_dict() for span in tracer.drain()]


def _traced_evaluate_pair(item):
    return _traced_call(_evaluate_pair, item)


def _traced_predict_pair(item):
    return _traced_call(_predict_pair, item)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: None/1 serial, 0 one-per-CPU."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _warm_models(specs) -> None:
    """Train/load models once in the parent before any worker needs them.

    Forked workers inherit the in-process cache outright; spawned
    workers find the trained models in the disk cache.  Either way no
    worker ever regenerates the training corpus.
    """
    from ..stats.training import default_models

    if any(spec.kind == "repro" and spec.config is None for spec in specs):
        default_models()


def _serial(fn, pairs):
    """In-process fan-out; one ``eval-pair`` span per pair when tracing."""
    tracer = current_tracer()
    if tracer is None:
        return [fn(pair) for pair in pairs]
    results = []
    for spec, case in pairs:
        with tracer.span("eval-pair", tool=spec.name, case=case.name):
            results.append(fn((spec, case)))
    return results


def _pooled(fn, traced_fn, pairs, workers, chunk):
    """Process-pool fan-out, preserving submission order exactly.

    ``map()`` yields results in submission order: determinism for free.
    With tracing active, each pair travels with the coordinator's
    :class:`SpanContext`; the worker's spans come back alongside the
    result and re-parent into the coordinator's trace, so a parallel
    run produces *one* trace spanning every process.
    """
    tracer = current_tracer()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if tracer is None:
            return list(pool.map(fn, pairs, chunksize=max(1, chunk)))
        ctx = tracer.context().as_dict()
        results = []
        for value, spans in pool.map(traced_fn,
                                     [(pair, ctx) for pair in pairs],
                                     chunksize=max(1, chunk)):
            tracer.adopt(spans)
            results.append(value)
        return results


def evaluate_pairs(pairs: list[tuple[ToolSpec, TestCase]],
                   jobs: int | None = None, *,
                   chunk: int = 1) -> list[Evaluation]:
    """Evaluate (tool, case) pairs, preserving submission order exactly.

    ``chunk`` batches consecutive pairs into one worker task; callers
    that order pairs case-major pass the tool count so all runs over a
    given binary share one worker's superset cache.
    """
    workers = effective_jobs(jobs)
    if workers <= 1 or len(pairs) <= 1:
        return _serial(_evaluate_pair, pairs)
    _warm_models({spec for spec, _ in pairs})
    workers = min(workers, len(pairs))
    return _pooled(_evaluate_pair, _traced_evaluate_pair, pairs,
                   workers, chunk)


def predict_pairs(pairs: list[tuple[ToolSpec, TestCase]],
                  jobs: int | None = None, *,
                  chunk: int = 1) -> list[DisassemblyResult]:
    """Raw tool outputs for (tool, case) pairs, in submission order.

    For experiments that need the predictions themselves (e.g. dynamic
    validation) rather than scored metrics.
    """
    workers = effective_jobs(jobs)
    if workers <= 1 or len(pairs) <= 1:
        return _serial(_predict_pair, pairs)
    _warm_models({spec for spec, _ in pairs})
    workers = min(workers, len(pairs))
    return _pooled(_predict_pair, _traced_predict_pair, pairs,
                   workers, chunk)


def evaluate_tool(spec: ToolSpec, cases, jobs: int | None = None,
                  name: str | None = None) -> Evaluation:
    """Pooled evaluation of one tool over a corpus."""
    evaluations = evaluate_pairs([(spec, case) for case in cases], jobs)
    return aggregate(evaluations, name or spec.name)


def evaluate_tools(specs: list[ToolSpec], cases,
                   jobs: int | None = None) -> dict[str, Evaluation]:
    """Pooled evaluation of many tools over a corpus in one fan-out.

    Submitting the full (tool x case) cross product to a single pool
    load-balances better than per-tool batches: slow repro runs overlap
    with fast baseline runs.  Pairs go out case-major so consecutive
    runs share the per-process superset cache (every tool decodes the
    same section); results keep tool insertion order regardless.
    """
    cases = tuple(cases)
    pairs = [(spec, case) for case in cases for spec in specs]
    evaluations = evaluate_pairs(pairs, jobs, chunk=len(specs))
    width = len(specs)
    return {
        spec.name: aggregate([evaluations[case_index * width + spec_index]
                              for case_index in range(len(cases))],
                             spec.name)
        for spec_index, spec in enumerate(specs)
    }
