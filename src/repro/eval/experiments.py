"""Experiment runners: one function per table/figure of the evaluation.

Each ``run_*`` function regenerates the corresponding table or figure of
the paper's evaluation (as indexed in DESIGN.md) and returns a
:class:`~repro.eval.report.Table`; the module is runnable::

    python -m repro.eval.experiments t2        # one experiment
    python -m repro.eval.experiments all       # everything

The benchmark suite under ``benchmarks/`` wraps these same runners.
"""

from __future__ import annotations

import sys
import time
from ..baselines import (heuristic_descent, linear_sweep,
                         probabilistic_disassembly, recursive_descent)
from ..binary.loader import TestCase
from ..core.config import ABLATION_CONFIGS, DisassemblerConfig
from ..core.disassembler import Disassembler
from ..synth.corpus import BinarySpec, density_style, generate_binary
from ..synth.styles import MSVC_LIKE, STYLES
from .dataset import EVAL_SEEDS, characteristics, evaluation_corpus
from .metrics import Evaluation, aggregate, evaluate
from .report import Table

#: Baseline tools compared in every accuracy experiment.
BASELINES = {
    "linear-sweep": lambda case: linear_sweep(case.text),
    "recursive-descent": lambda case: recursive_descent(case.text, 0),
    "rd-heuristic": lambda case: heuristic_descent(case.text, 0),
    "probabilistic": lambda case: probabilistic_disassembly(case.text, 0),
}


def _our_tool(config: DisassemblerConfig | None = None):
    disassembler = Disassembler(config=config) if config else Disassembler()
    return lambda case: disassembler.disassemble(case)


def _evaluate_tool(tool_name: str, runner, cases) -> Evaluation:
    evaluations = [evaluate(runner(case), case.truth) for case in cases]
    return aggregate(evaluations, tool_name)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def run_t1(cases: tuple[TestCase, ...] | None = None) -> Table:
    """T1: dataset characteristics."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T1: Evaluation dataset characteristics",
        columns=["binary", "text_bytes", "code_bytes", "data_bytes",
                 "data_pct", "functions", "jump_tables", "instructions"],
    )
    for case in cases:
        stats = characteristics(case)
        table.add(binary=stats.name, text_bytes=stats.text_bytes,
                  code_bytes=stats.code_bytes, data_bytes=stats.data_bytes,
                  data_pct=stats.embedded_data_percent,
                  functions=stats.functions,
                  jump_tables=stats.jump_tables,
                  instructions=stats.instructions)
    return table


def run_t2(cases: tuple[TestCase, ...] | None = None) -> Table:
    """T2: instruction-level accuracy of every tool."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T2: Instruction-level accuracy (pooled over corpus)",
        columns=["tool", "precision", "recall", "f1"],
    )
    tools = dict(BASELINES)
    tools["repro (this paper)"] = _our_tool()
    for name, runner in tools.items():
        ev = _evaluate_tool(name, runner, cases)
        table.add(tool=name, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1)
    return table


def run_t3(cases: tuple[TestCase, ...] | None = None) -> Table:
    """T3: byte-level error counts and the headline improvement factor."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T3: Byte-level errors (false-code + missed-code)",
        columns=["tool", "false_code", "missed_code", "total_errors",
                 "error_rate"],
    )
    tools = dict(BASELINES)
    tools["repro (this paper)"] = _our_tool()
    totals = {}
    for name, runner in tools.items():
        ev = _evaluate_tool(name, runner, cases)
        totals[name] = ev.bytes.total_errors
        table.add(tool=name, false_code=ev.bytes.false_code,
                  missed_code=ev.bytes.missed_code,
                  total_errors=ev.bytes.total_errors,
                  error_rate=ev.bytes.error_rate)
    ours = totals["repro (this paper)"]
    best_baseline = min(v for k, v in totals.items()
                        if k != "repro (this paper)")
    factor = best_baseline / ours if ours else float("inf")
    table.notes.append(
        f"improvement over best baseline: {factor:.1f}x "
        f"(paper reports 3x-4x vs best prior work)")
    return table


def run_t4(cases: tuple[TestCase, ...] | None = None) -> Table:
    """T4: ablation of the three main components."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T4: Ablation study",
        columns=["variant", "precision", "recall", "f1", "total_errors"],
    )
    for variant, config in ABLATION_CONFIGS.items():
        ev = _evaluate_tool(variant, _our_tool(config), cases)
        table.add(variant=variant, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1,
                  total_errors=ev.bytes.total_errors)
    return table


def run_t5(cases: tuple[TestCase, ...] | None = None) -> Table:
    """T5: function-boundary identification."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T5: Function-entry identification",
        columns=["tool", "precision", "recall", "f1"],
    )
    tools = {
        "recursive-descent": BASELINES["recursive-descent"],
        "rd-heuristic": BASELINES["rd-heuristic"],
        "repro (this paper)": _our_tool(),
    }
    for name, runner in tools.items():
        ev = _evaluate_tool(name, runner, cases)
        table.add(tool=name, precision=ev.functions.precision,
                  recall=ev.functions.recall, f1=ev.functions.f1)
    return table


# ----------------------------------------------------------------------
# Figures (series data printed as tables)
# ----------------------------------------------------------------------

def run_f1(densities: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
           seeds: tuple[int, ...] = (0, 1),
           function_count: int = 40) -> Table:
    """F1: accuracy vs embedded-data density."""
    table = Table(
        title="F1: F1-score vs embedded-data density (msvc-like base)",
        columns=["density", "data_pct", "repro", "linear-sweep",
                 "rd-heuristic", "probabilistic"],
    )
    our = _our_tool()
    for density in densities:
        style = density_style(MSVC_LIKE, density)
        cases = tuple(
            generate_binary(BinarySpec(name=f"d{density}-s{seed}",
                                       style=style,
                                       function_count=function_count,
                                       seed=seed))
            for seed in seeds)
        data_pct = sum(c.truth.data_bytes for c in cases) / max(
            sum(c.truth.code_bytes + c.truth.data_bytes for c in cases), 1)
        row = {"density": density, "data_pct": 100.0 * data_pct}
        row["repro"] = _evaluate_tool("repro", our, cases).instructions.f1
        for name in ("linear-sweep", "rd-heuristic", "probabilistic"):
            ev = _evaluate_tool(name, BASELINES[name], cases)
            row[name] = ev.instructions.f1
        table.add(**row)
    return table


def run_f2(seeds: tuple[int, ...] = EVAL_SEEDS,
           function_count: int = 50) -> Table:
    """F2: accuracy per compiler style."""
    table = Table(
        title="F2: F1-score per compiler style",
        columns=["style", "repro", "linear-sweep", "recursive-descent",
                 "rd-heuristic", "probabilistic"],
    )
    our = _our_tool()
    for style_name in sorted(STYLES):
        cases = tuple(
            generate_binary(BinarySpec(name=f"{style_name}-s{seed}",
                                       style=STYLES[style_name],
                                       function_count=function_count,
                                       seed=seed))
            for seed in seeds)
        row = {"style": style_name,
               "repro": _evaluate_tool("repro", our, cases).instructions.f1}
        for name, runner in BASELINES.items():
            row[name] = _evaluate_tool(name, runner, cases).instructions.f1
        table.add(**row)
    return table


def run_f3(function_counts: tuple[int, ...] = (10, 20, 40, 80),
           seed: int = 0) -> Table:
    """F3: disassembly runtime vs binary size."""
    table = Table(
        title="F3: Runtime vs binary size (seconds; msvc-like)",
        columns=["functions", "text_bytes", "repro", "linear-sweep",
                 "rd-heuristic", "probabilistic"],
    )
    disassembler = Disassembler()
    for count in function_counts:
        case = generate_binary(BinarySpec(name=f"scale-{count}",
                                          style=MSVC_LIKE,
                                          function_count=count, seed=seed))
        row = {"functions": count, "text_bytes": len(case.text)}
        timers = {
            "repro": lambda: disassembler.disassemble(case),
            "linear-sweep": lambda: linear_sweep(case.text),
            "rd-heuristic": lambda: heuristic_descent(case.text, 0),
            "probabilistic": lambda: probabilistic_disassembly(case.text, 0),
        }
        for name, thunk in timers.items():
            start = time.perf_counter()
            thunk()
            row[name] = time.perf_counter() - start
        table.add(**row)
    return table


def run_f4(thresholds: tuple[float, ...] = (-2.0, -1.0, -0.5, 0.0,
                                            0.5, 1.0, 2.0),
           seeds: tuple[int, ...] = (0, 1),
           function_count: int = 40) -> Table:
    """F4: sensitivity to the gap-acceptance threshold."""
    cases = tuple(
        generate_binary(BinarySpec(name=f"thr-s{seed}", style=MSVC_LIKE,
                                   function_count=function_count, seed=seed))
        for seed in seeds)
    table = Table(
        title="F4: Sensitivity to code_threshold",
        columns=["threshold", "precision", "recall", "f1", "total_errors"],
    )
    for threshold in thresholds:
        config = DisassemblerConfig(code_threshold=threshold)
        ev = _evaluate_tool(f"thr={threshold}", _our_tool(config), cases)
        table.add(threshold=threshold, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1,
                  total_errors=ev.bytes.total_errors)
    return table


def run_v1(cases: tuple[TestCase, ...] | None = None, *,
           entries_per_case: int = 12,
           max_steps: int = 60_000) -> Table:
    """V1: dynamic validation -- emulate binaries, check predictions.

    Every instruction the emulator actually executes must appear in a
    perfect disassembly; "missed" counts executed-but-unpredicted
    instructions per tool (dynamic recall gaps no static metric can
    hide).
    """
    from ..emulator import Emulator

    cases = cases or evaluation_corpus()
    our = _our_tool()
    table = Table(
        title="V1: Dynamic validation (executed instructions predicted)",
        columns=["tool", "executed", "covered", "missed"],
    )
    executed_per_case: list[set[int]] = []
    for case in cases:
        executed: set[int] = set()
        for entry in sorted(case.truth.function_entries)[:entries_per_case]:
            run = Emulator(case).run(entry, max_steps=max_steps)
            executed |= run.executed_set
        assert not executed - case.truth.instruction_starts, (
            f"{case.name}: emulator escaped ground truth")
        executed_per_case.append(executed)

    tools = dict(BASELINES)
    tools["repro (this paper)"] = our
    total_executed = sum(len(e) for e in executed_per_case)
    for name, runner in tools.items():
        covered = 0
        for case, executed in zip(cases, executed_per_case):
            predicted = runner(case).instruction_starts
            covered += len(executed & predicted)
        table.add(tool=name, executed=total_executed, covered=covered,
                  missed=total_executed - covered)
    table.notes.append(
        "every executed offset verified against ground truth first")
    return table


EXPERIMENTS = {
    "t1": run_t1, "t2": run_t2, "t3": run_t3, "t4": run_t4, "t5": run_t5,
    "f1": run_f1, "f2": run_f2, "f3": run_f3, "f4": run_f4, "v1": run_v1,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(EXPERIMENTS)
        print(f"usage: python -m repro.eval.experiments <{names}|all>")
        return 0
    requested = list(EXPERIMENTS) if argv[0] == "all" else argv
    for name in requested:
        if name not in EXPERIMENTS:
            print(f"unknown experiment: {name}", file=sys.stderr)
            return 1
        started = time.perf_counter()
        table = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - started
        print(table.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
