"""Experiment runners: one function per table/figure of the evaluation.

Each ``run_*`` function regenerates the corresponding table or figure of
the paper's evaluation (as indexed in DESIGN.md) and returns a
:class:`~repro.eval.report.Table`; the module is runnable::

    python -m repro.eval.experiments t2             # one experiment
    python -m repro.eval.experiments all            # everything
    python -m repro.eval.experiments t2 --jobs 4    # parallel workers
    python -m repro.eval.experiments all --jobs 0 --bench-json out.json

Every runner takes a ``jobs`` keyword and fans (tool, binary) work out
through :mod:`repro.eval.parallel`; results are deterministic, so a
parallel table is byte-identical to a serial one.  T1 (pure metadata),
F3 (measures serial wall-clock by design) and V1's emulation loop stay
single-process.

The benchmark suite under ``benchmarks/`` wraps these same runners.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..baselines import (heuristic_descent, linear_sweep,
                         probabilistic_disassembly, recursive_descent)
from ..binary.loader import TestCase
from ..core.config import ABLATION_CONFIGS, DisassemblerConfig
from ..core.disassembler import Disassembler
from ..perf import bench_envelope, write_bench_json
from ..synth.corpus import BinarySpec, density_style, generate_binary
from ..synth.styles import MSVC_LIKE, STYLES
from .dataset import EVAL_SEEDS, characteristics, evaluation_corpus
from .metrics import Evaluation, aggregate, evaluate
from .parallel import (ToolSpec, baseline_spec,
                       evaluate_tools, predict_pairs, repro_spec)
from .report import Table

#: Baseline tools compared in every accuracy experiment (legacy
#: callable form; the runners themselves use declarative ToolSpecs).
BASELINES = {
    "linear-sweep": lambda case: linear_sweep(case.text),
    "recursive-descent": lambda case: recursive_descent(case.text, 0),
    "rd-heuristic": lambda case: heuristic_descent(case.text, 0),
    "probabilistic": lambda case: probabilistic_disassembly(case.text, 0),
}

#: Spec forms of the same tools, in canonical table order.
BASELINE_SPECS = tuple(baseline_spec(name) for name in BASELINES)


def _our_tool(config: DisassemblerConfig | None = None):
    disassembler = Disassembler(config=config) if config else Disassembler()
    return lambda case: disassembler.disassemble(case)


def _evaluate_tool(tool_name: str, runner, cases) -> Evaluation:
    evaluations = [evaluate(runner(case), case.truth) for case in cases]
    return aggregate(evaluations, tool_name)


def _all_tool_specs() -> list[ToolSpec]:
    return [*BASELINE_SPECS, repro_spec()]


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def run_t1(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """T1: dataset characteristics (metadata only; ``jobs`` unused)."""
    del jobs
    cases = cases or evaluation_corpus()
    table = Table(
        title="T1: Evaluation dataset characteristics",
        columns=["binary", "text_bytes", "code_bytes", "data_bytes",
                 "data_pct", "functions", "jump_tables", "instructions"],
    )
    for case in cases:
        stats = characteristics(case)
        table.add(binary=stats.name, text_bytes=stats.text_bytes,
                  code_bytes=stats.code_bytes, data_bytes=stats.data_bytes,
                  data_pct=stats.embedded_data_percent,
                  functions=stats.functions,
                  jump_tables=stats.jump_tables,
                  instructions=stats.instructions)
    return table


def run_t2(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """T2: instruction-level accuracy of every tool."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T2: Instruction-level accuracy (pooled over corpus)",
        columns=["tool", "precision", "recall", "f1"],
    )
    for name, ev in evaluate_tools(_all_tool_specs(), cases,
                                   jobs=jobs).items():
        table.add(tool=name, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1)
    return table


def run_t3(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """T3: byte-level error counts and the headline improvement factor."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T3: Byte-level errors (false-code + missed-code)",
        columns=["tool", "false_code", "missed_code", "total_errors",
                 "error_rate"],
    )
    totals = {}
    for name, ev in evaluate_tools(_all_tool_specs(), cases,
                                   jobs=jobs).items():
        totals[name] = ev.bytes.total_errors
        table.add(tool=name, false_code=ev.bytes.false_code,
                  missed_code=ev.bytes.missed_code,
                  total_errors=ev.bytes.total_errors,
                  error_rate=ev.bytes.error_rate)
    ours = totals["repro (this paper)"]
    best_baseline = min(v for k, v in totals.items()
                        if k != "repro (this paper)")
    factor = best_baseline / ours if ours else float("inf")
    table.notes.append(
        f"improvement over best baseline: {factor:.1f}x "
        f"(paper reports 3x-4x vs best prior work)")
    return table


def run_t4(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """T4: ablation of the three main components."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T4: Ablation study",
        columns=["variant", "precision", "recall", "f1", "total_errors"],
    )
    specs = [repro_spec(variant, config)
             for variant, config in ABLATION_CONFIGS.items()]
    for variant, ev in evaluate_tools(specs, cases, jobs=jobs).items():
        table.add(variant=variant, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1,
                  total_errors=ev.bytes.total_errors)
    return table


def run_t5(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """T5: function-boundary identification."""
    cases = cases or evaluation_corpus()
    table = Table(
        title="T5: Function-entry identification",
        columns=["tool", "precision", "recall", "f1"],
    )
    specs = [baseline_spec("recursive-descent"),
             baseline_spec("rd-heuristic"), repro_spec()]
    for name, ev in evaluate_tools(specs, cases, jobs=jobs).items():
        table.add(tool=name, precision=ev.functions.precision,
                  recall=ev.functions.recall, f1=ev.functions.f1)
    return table


# ----------------------------------------------------------------------
# Figures (series data printed as tables)
# ----------------------------------------------------------------------

def run_f1(densities: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
           seeds: tuple[int, ...] = (0, 1),
           function_count: int = 40, *,
           jobs: int | None = None) -> Table:
    """F1: accuracy vs embedded-data density."""
    table = Table(
        title="F1: F1-score vs embedded-data density (msvc-like base)",
        columns=["density", "data_pct", "repro", "linear-sweep",
                 "rd-heuristic", "probabilistic"],
    )
    specs = [repro_spec("repro"), baseline_spec("linear-sweep"),
             baseline_spec("rd-heuristic"), baseline_spec("probabilistic")]
    for density in densities:
        style = density_style(MSVC_LIKE, density)
        cases = tuple(
            generate_binary(BinarySpec(name=f"d{density}-s{seed}",
                                       style=style,
                                       function_count=function_count,
                                       seed=seed))
            for seed in seeds)
        data_pct = sum(c.truth.data_bytes for c in cases) / max(
            sum(c.truth.code_bytes + c.truth.data_bytes for c in cases), 1)
        row = {"density": density, "data_pct": 100.0 * data_pct}
        for name, ev in evaluate_tools(specs, cases, jobs=jobs).items():
            row[name] = ev.instructions.f1
        table.add(**row)
    return table


def run_f2(seeds: tuple[int, ...] = EVAL_SEEDS,
           function_count: int = 50, *,
           jobs: int | None = None) -> Table:
    """F2: accuracy per compiler style."""
    table = Table(
        title="F2: F1-score per compiler style",
        columns=["style", "repro", "linear-sweep", "recursive-descent",
                 "rd-heuristic", "probabilistic"],
    )
    specs = [repro_spec("repro"), *BASELINE_SPECS]
    for style_name in sorted(STYLES):
        cases = tuple(
            generate_binary(BinarySpec(name=f"{style_name}-s{seed}",
                                       style=STYLES[style_name],
                                       function_count=function_count,
                                       seed=seed))
            for seed in seeds)
        row = {"style": style_name}
        for name, ev in evaluate_tools(specs, cases, jobs=jobs).items():
            row[name] = ev.instructions.f1
        table.add(**row)
    return table


def run_f3(function_counts: tuple[int, ...] = (10, 20, 40, 80),
           seed: int = 0, *, jobs: int | None = None) -> Table:
    """F3: disassembly runtime vs binary size.

    Runtime is the quantity under measurement, so each tool runs
    single-process regardless of ``jobs``.
    """
    del jobs
    table = Table(
        title="F3: Runtime vs binary size (seconds; msvc-like)",
        columns=["functions", "text_bytes", "repro", "linear-sweep",
                 "rd-heuristic", "probabilistic"],
    )
    disassembler = Disassembler()
    for count in function_counts:
        case = generate_binary(BinarySpec(name=f"scale-{count}",
                                          style=MSVC_LIKE,
                                          function_count=count, seed=seed))
        row = {"functions": count, "text_bytes": len(case.text)}
        timers = {
            "repro": lambda c=case: disassembler.disassemble(c),
            "linear-sweep": lambda c=case: linear_sweep(c.text),
            "rd-heuristic": lambda c=case: heuristic_descent(c.text, 0),
            "probabilistic": lambda c=case: probabilistic_disassembly(
                c.text, 0),
        }
        for name, thunk in timers.items():
            start = time.perf_counter()
            thunk()
            row[name] = time.perf_counter() - start
        table.add(**row)
    return table


def run_f4(thresholds: tuple[float, ...] = (-2.0, -1.0, -0.5, 0.0,
                                            0.5, 1.0, 2.0),
           seeds: tuple[int, ...] = (0, 1),
           function_count: int = 40, *,
           jobs: int | None = None) -> Table:
    """F4: sensitivity to the gap-acceptance threshold."""
    cases = tuple(
        generate_binary(BinarySpec(name=f"thr-s{seed}", style=MSVC_LIKE,
                                   function_count=function_count, seed=seed))
        for seed in seeds)
    table = Table(
        title="F4: Sensitivity to code_threshold",
        columns=["threshold", "precision", "recall", "f1", "total_errors"],
    )
    specs = [repro_spec(f"thr={threshold}",
                        DisassemblerConfig(code_threshold=threshold))
             for threshold in thresholds]
    results = evaluate_tools(specs, cases, jobs=jobs)
    for threshold in thresholds:
        ev = results[f"thr={threshold}"]
        table.add(threshold=threshold, precision=ev.instructions.precision,
                  recall=ev.instructions.recall, f1=ev.instructions.f1,
                  total_errors=ev.bytes.total_errors)
    return table


def run_v1(cases: tuple[TestCase, ...] | None = None, *,
           entries_per_case: int = 12,
           max_steps: int = 60_000,
           jobs: int | None = None) -> Table:
    """V1: dynamic validation -- emulate binaries, check predictions.

    Every instruction the emulator actually executes must appear in a
    perfect disassembly; "missed" counts executed-but-unpredicted
    instructions per tool (dynamic recall gaps no static metric can
    hide).  Predictions fan out in parallel; the emulation loop, which
    cross-checks ground truth in-process, stays serial.
    """
    from ..emulator import Emulator

    cases = cases or evaluation_corpus()
    table = Table(
        title="V1: Dynamic validation (executed instructions predicted)",
        columns=["tool", "executed", "covered", "missed"],
    )
    executed_per_case: list[set[int]] = []
    for case in cases:
        executed: set[int] = set()
        for entry in sorted(case.truth.function_entries)[:entries_per_case]:
            run = Emulator(case).run(entry, max_steps=max_steps)
            executed |= run.executed_set
        assert not executed - case.truth.instruction_starts, (
            f"{case.name}: emulator escaped ground truth")
        executed_per_case.append(executed)

    specs = _all_tool_specs()
    pairs = [(spec, case) for spec in specs for case in cases]
    predictions = predict_pairs(pairs, jobs=jobs)
    total_executed = sum(len(e) for e in executed_per_case)
    for index, spec in enumerate(specs):
        chunk = predictions[index * len(cases):(index + 1) * len(cases)]
        covered = sum(len(executed & predicted.instruction_starts)
                      for executed, predicted in zip(executed_per_case,
                                                     chunk))
        table.add(tool=spec.name, executed=total_executed, covered=covered,
                  missed=total_executed - covered)
    table.notes.append(
        "every executed offset verified against ground truth first")
    return table


def run_l1(cases: tuple[TestCase, ...] | None = None, *,
           flips: int = 12, seed: int = 1,
           jobs: int | None = None) -> Table:
    """L1: oracle-free linter accuracy against injected errors.

    For every corpus binary, the ground-truth disassembly is linted
    (it must produce zero error-severity diagnostics), then corrupted
    with ``flips`` injected misclassifications and linted again.
    Recall counts injected flips overlapped by at least one ERROR
    diagnostic; precision counts ERROR diagnostics overlapping some
    flip.  Linting is cheap, so ``jobs`` is unused.
    """
    del jobs
    from ..lint.evaluation import measure_case, pool

    cases = cases or evaluation_corpus()
    table = Table(
        title="L1: Oracle-free linter accuracy (injected errors)",
        columns=["binary", "perfect_errors", "injected", "detected",
                 "recall", "error_diags", "precision"],
    )
    results = []
    for case in cases:
        accuracy = measure_case(case, flips=flips, seed=seed)
        results.append(accuracy)
        table.add(binary=accuracy.name,
                  perfect_errors=accuracy.perfect_errors,
                  injected=accuracy.injected,
                  detected=accuracy.detected,
                  recall=accuracy.recall,
                  error_diags=accuracy.error_diagnostics,
                  precision=accuracy.precision)
    pooled = pool(results)
    table.add(binary=pooled.name, perfect_errors=pooled.perfect_errors,
              injected=pooled.injected, detected=pooled.detected,
              recall=pooled.recall, error_diags=pooled.error_diagnostics,
              precision=pooled.precision)
    table.notes.append(
        f"{flips} flips per binary (seed {seed}); perfect_errors is the "
        f"soundness check: ERROR diagnostics on the ground-truth claim")
    return table


def run_r1(cases: tuple[TestCase, ...] | None = None, *,
           jobs: int | None = None) -> Table:
    """R1: real-binary round-trip fidelity (ELF64 emit + re-ingest).

    Every corpus binary is serialized as a real ELF64 executable
    (:func:`repro.formats.emit_elf`), re-ingested through the
    format-detecting loader, and disassembled.  The result must be
    *byte-identical* (as canonical JSON) to the native container
    path -- proving the ELF loader preserves text bytes, section
    addresses, and the entry point exactly.  A mismatch is a loader
    bug, so it raises rather than merely scoring low.  Disassembly is
    deterministic and the corpus is small; runs serially.
    """
    del jobs
    from ..formats import emit_elf, load_any

    cases = cases or evaluation_corpus()
    table = Table(
        title="R1: ELF64 round-trip fidelity (emit, re-ingest, compare)",
        columns=["binary", "container_bytes", "elf_bytes",
                 "text_bytes", "identical"],
    )
    disassembler = Disassembler()
    for case in cases:
        native = disassembler.disassemble(case.binary).to_json()
        elf_blob = emit_elf(case.binary)
        image = load_any(elf_blob)
        assert image.format == "elf64", image.format
        reingested = disassembler.disassemble(image.binary).to_json()
        identical = native == reingested
        assert identical, (
            f"{case.name}: ELF round-trip changed the disassembly")
        table.add(binary=case.name,
                  container_bytes=len(case.binary.to_bytes()),
                  elf_bytes=len(elf_blob),
                  text_bytes=len(image.binary.text.data),
                  identical=identical)
    table.notes.append(
        "identical = DisassemblyResult JSON byte-equal, container vs ELF")
    return table


EXPERIMENTS = {
    "t1": run_t1, "t2": run_t2, "t3": run_t3, "t4": run_t4, "t5": run_t5,
    "f1": run_f1, "f2": run_f2, "f3": run_f3, "f4": run_f4, "v1": run_v1,
    "l1": run_l1, "r1": run_r1,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.experiments",
        description="Regenerate evaluation tables/figures.")
    parser.add_argument("ids", nargs="+",
                        help=f"experiment ids ({', '.join(EXPERIMENTS)}) "
                             f"or 'all'")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (0 = one per CPU; "
                             "default serial)")
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="write per-experiment wall-clock timings as "
                             "a machine-readable BENCH json")
    try:
        args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    except SystemExit as exc:       # --help / usage errors: plain return
        return int(exc.code or 0)

    requested = list(EXPERIMENTS) if "all" in args.ids else args.ids
    for name in requested:
        if name not in EXPERIMENTS:
            print(f"unknown experiment: {name}", file=sys.stderr)
            return 1

    elapsed_by_experiment: dict[str, float] = {}
    for name in requested:
        started = time.perf_counter()
        table = EXPERIMENTS[name](jobs=args.jobs)
        elapsed = time.perf_counter() - started
        elapsed_by_experiment[name] = elapsed
        print(table.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")

    if args.bench_json:
        payload = bench_envelope(
            "experiments",
            config={"jobs": args.jobs if args.jobs is not None else 1},
            metrics={
                "experiments": {
                    name: round(seconds, 3)
                    for name, seconds in elapsed_by_experiment.items()},
                "total_s": round(
                    sum(elapsed_by_experiment.values()), 3),
            },
        )
        path = write_bench_json(args.bench_json, payload)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
