"""Evaluation harness: metrics, dataset, experiment runners."""

from .dataset import (EVAL_FUNCTIONS, EVAL_SEEDS, CaseCharacteristics,
                      characteristics, evaluation_corpus)
from .metrics import (ByteErrors, Evaluation, PrecisionRecall, aggregate,
                      evaluate)
from .report import Table

__all__ = [
    "EVAL_FUNCTIONS", "EVAL_SEEDS", "CaseCharacteristics",
    "characteristics", "evaluation_corpus", "ByteErrors", "Evaluation",
    "PrecisionRecall", "aggregate", "evaluate", "Table",
]
