"""Accuracy metrics: instruction-level, byte-level, function-level.

Conventions (matching common practice in the disassembly literature):

* Padding bytes are excluded from all metrics -- tools are penalized
  neither for decoding padding nor for calling it data.
* Instruction-level: a true positive is a predicted instruction start
  that is a ground-truth instruction start.
* Byte-level: a text byte is "predicted code" when covered by any
  accepted instruction; *false-code* errors are ground-truth data bytes
  predicted as code, *missed-code* errors are ground-truth code bytes
  not predicted as code.  Their sum is the headline total-error count
  the paper's 3x-4x claim is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..binary.groundtruth import ByteKind, GroundTruth
from ..result import DisassemblyResult


@dataclass(frozen=True)
class PrecisionRecall:
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


@dataclass(frozen=True)
class ByteErrors:
    """Byte-level confusion between code and data."""

    false_code: int     # data bytes claimed as code
    missed_code: int    # code bytes not claimed as code
    code_bytes: int     # ground-truth code bytes considered
    data_bytes: int     # ground-truth data bytes considered

    @property
    def total_errors(self) -> int:
        return self.false_code + self.missed_code

    @property
    def error_rate(self) -> float:
        denominator = self.code_bytes + self.data_bytes
        return self.total_errors / denominator if denominator else 0.0


@dataclass(frozen=True)
class Evaluation:
    """Full scoring of one tool result against ground truth."""

    tool: str
    instructions: PrecisionRecall
    bytes: ByteErrors
    functions: PrecisionRecall


def evaluate(result: DisassemblyResult, truth: GroundTruth) -> Evaluation:
    """Score a disassembly result against exact ground truth."""
    true_starts = truth.instruction_starts
    predicted_starts = result.instruction_starts
    labels = np.frombuffer(bytes(truth.labels), dtype=np.uint8)
    padding = int(ByteKind.PADDING)

    tp = sum(1 for o in predicted_starts if o in true_starts)
    fp = sum(1 for o in predicted_starts
             if o not in true_starts and labels[o] != padding)
    fn = sum(1 for o in true_starts if o not in predicted_starts)
    instruction_metrics = PrecisionRecall(tp, fp, fn)

    # Byte-level confusion, vectorized over the label array: a text byte
    # is scored unless it is padding, and counts as ground-truth code
    # when it starts or continues a true instruction.
    predicted = np.zeros(truth.size, dtype=bool)
    covered = result.code_byte_offsets()
    if covered:
        indices = np.fromiter(covered, dtype=np.intp, count=len(covered))
        predicted[indices[(indices >= 0) & (indices < truth.size)]] = True
    code = ((labels == int(ByteKind.INSN_START))
            | (labels == int(ByteKind.INSN_INTERIOR)))
    data = (labels != padding) & ~code
    byte_errors = ByteErrors(
        false_code=int(np.count_nonzero(data & predicted)),
        missed_code=int(np.count_nonzero(code & ~predicted)),
        code_bytes=int(np.count_nonzero(code)),
        data_bytes=int(np.count_nonzero(data)),
    )

    true_entries = truth.function_entries
    predicted_entries = result.function_entries
    ftp = len(predicted_entries & true_entries)
    ffp = len(predicted_entries - true_entries)
    ffn = len(true_entries - predicted_entries)
    function_metrics = PrecisionRecall(ftp, ffp, ffn)

    return Evaluation(tool=result.tool, instructions=instruction_metrics,
                      bytes=byte_errors, functions=function_metrics)


def aggregate(evaluations: list[Evaluation], tool: str) -> Evaluation:
    """Pool counts across binaries (micro-average)."""
    def pool_pr(parts: list[PrecisionRecall]) -> PrecisionRecall:
        return PrecisionRecall(
            sum(p.true_positives for p in parts),
            sum(p.false_positives for p in parts),
            sum(p.false_negatives for p in parts),
        )

    return Evaluation(
        tool=tool,
        instructions=pool_pr([e.instructions for e in evaluations]),
        bytes=ByteErrors(
            false_code=sum(e.bytes.false_code for e in evaluations),
            missed_code=sum(e.bytes.missed_code for e in evaluations),
            code_bytes=sum(e.bytes.code_bytes for e in evaluations),
            data_bytes=sum(e.bytes.data_bytes for e in evaluations),
        ),
        functions=pool_pr([e.functions for e in evaluations]),
    )
