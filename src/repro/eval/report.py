"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled table of experiment rows."""

    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
            return str(value)

        cells = [[fmt(row.get(col, "")) for col in self.columns]
                 for row in self.rows]
        widths = [max(len(col), *(len(r[i]) for r in cells)) if cells
                  else len(col)
                  for i, col in enumerate(self.columns)]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(w)
                           for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(cell.ljust(w)
                                   for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]
