"""The standard evaluation corpus and its characteristics (Table T1).

Evaluation binaries use seeds 0..N-1; training binaries use the
dedicated :data:`~repro.stats.training.TRAINING_SEEDS`, so models are
never fit on the binaries they are scored against.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..binary.loader import TestCase
from ..synth.corpus import BinarySpec, generate_binary
from ..synth.styles import STYLES

#: Seeds for the default evaluation corpus.
EVAL_SEEDS = (0, 1, 2)

#: Default function count per evaluation binary.
EVAL_FUNCTIONS = 50


@functools.lru_cache(maxsize=8)
def evaluation_corpus(seeds: tuple[int, ...] = EVAL_SEEDS,
                      function_count: int = EVAL_FUNCTIONS
                      ) -> tuple[TestCase, ...]:
    """The default corpus: every compiler style at every seed (cached)."""
    cases = []
    for style_name in sorted(STYLES):
        for seed in seeds:
            spec = BinarySpec(name=f"{style_name}-s{seed}",
                              style=STYLES[style_name],
                              function_count=function_count, seed=seed)
            cases.append(generate_binary(spec))
    return tuple(cases)


@dataclass(frozen=True)
class CaseCharacteristics:
    """Dataset statistics for one binary (one row of Table T1)."""

    name: str
    text_bytes: int
    code_bytes: int
    data_bytes: int
    padding_bytes: int
    functions: int
    jump_tables: int
    instructions: int

    @property
    def embedded_data_percent(self) -> float:
        scored = self.code_bytes + self.data_bytes
        return 100.0 * self.data_bytes / scored if scored else 0.0


def characteristics(case: TestCase) -> CaseCharacteristics:
    truth = case.truth
    return CaseCharacteristics(
        name=case.name,
        text_bytes=truth.size,
        code_bytes=truth.code_bytes,
        data_bytes=truth.data_bytes,
        padding_bytes=truth.padding_bytes,
        functions=len(truth.functions),
        jump_tables=len(truth.jump_tables),
        instructions=len(truth.instruction_starts),
    )
