"""repro: accurate disassembly of complex binaries without compiler metadata.

A from-scratch reproduction of Priyadarshan, Nguyen & Sekar (ASPLOS
2023).  The package contains everything the system needs, all in pure
Python:

* :mod:`repro.isa` -- an x86-64 decoder/encoder (replaces capstone);
* :mod:`repro.binary` -- a stripped-binary container with ground truth;
* :mod:`repro.synth` -- a synthetic compiler producing complex binaries
  (embedded jump tables, literal pools, indirect-only functions);
* :mod:`repro.superset`, :mod:`repro.stats`, :mod:`repro.analysis` --
  superset disassembly, statistical models, behavioral analyses;
* :mod:`repro.core` -- the prioritized error-correcting disassembler;
* :mod:`repro.baselines` -- linear sweep, recursive descent (plain and
  heuristic), probabilistic disassembly;
* :mod:`repro.eval` -- metrics and the experiment harness.

Quickstart::

    from repro import Disassembler, generate_binary, BinarySpec
    case = generate_binary(BinarySpec(name="demo"))
    result = Disassembler().disassemble(case)
    print(result.summary())
"""

from .binary import Binary, GroundTruth, Section, TestCase
from .core import DEFAULT_CONFIG, Disassembler, DisassemblerConfig
from .emulator import Emulator, validate_dynamically
from .listing import classify_data_regions, render_listing
from .result import DisassemblyResult
from .rewrite import RewrittenBinary, rewrite_binary
from .synth import (BinarySpec, CompilerStyle, generate_binary,
                    generate_corpus)

__version__ = "1.0.0"

__all__ = [
    "Binary", "GroundTruth", "Section", "TestCase", "DEFAULT_CONFIG",
    "Disassembler", "DisassemblerConfig", "DisassemblyResult",
    "Emulator", "validate_dynamically", "classify_data_regions",
    "render_listing", "RewrittenBinary", "rewrite_binary",
    "BinarySpec", "CompilerStyle", "generate_binary", "generate_corpus",
    "__version__",
]
