"""The lint driver: run a configured rule selection over one claim."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..obs.metrics import REGISTRY
from ..obs.provenance import ProvenanceLog
from ..obs.trace import current_tracer
from ..result import DisassemblyResult
from ..superset.superset import Superset, cached_superset
from .context import LintContext
from .diagnostics import LintReport, Severity
from .registry import DEFAULT_REGISTRY, RuleRegistry

# Importing the rule module attaches the built-in battery to
# DEFAULT_REGISTRY exactly once.
from . import rules as _builtin_rules  # noqa: F401  (import for effect)


@dataclass(frozen=True)
class LintConfig:
    """One lint run's rule selection.

    Attributes:
        enabled: rule ids to run (None = every registered rule).
        disabled: rule ids removed from the selection.
        severity_overrides: per-rule severity rebindings.
    """

    enabled: tuple[str, ...] | None = None
    disabled: tuple[str, ...] = ()
    severity_overrides: dict[str, Severity] = field(default_factory=dict)


DEFAULT_LINT_CONFIG = LintConfig()

_DIAGNOSTICS = REGISTRY.counter(
    "repro_lint_diagnostics_total",
    "Lint diagnostics produced, by severity")

#: Most provenance events attached to one diagnostic (the last N of the
#: chain; earlier context is reachable through ``repro explain``).
_PROVENANCE_CHAIN_LIMIT = 5


class Linter:
    """Runs a rule selection from a registry over disassembly claims."""

    def __init__(self, registry: RuleRegistry | None = None,
                 config: LintConfig = DEFAULT_LINT_CONFIG) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.config = config

    def run(self, context: LintContext,
            provenance: ProvenanceLog | None = None) -> LintReport:
        tracer = current_tracer()
        report = LintReport(tool=context.result.tool)
        for rule in self.registry.select(
                enabled=self.config.enabled,
                disabled=self.config.disabled,
                severity_overrides=self.config.severity_overrides):
            report.rules_run.append(rule.id)
            if tracer is not None:
                with tracer.span(f"lint:{rule.id}") as span:
                    found = list(rule.check(context, rule.severity))
                    span.attrs["diagnostics"] = len(found)
            else:
                found = rule.check(context, rule.severity)
            report.extend(found)
        if provenance is not None:
            report.diagnostics = [_attach_provenance(d, provenance)
                                  for d in report.diagnostics]
        for severity, count in report.counts().items():
            if count:
                _DIAGNOSTICS.inc(count, severity=severity)
        return report

    def lint(self, result: DisassemblyResult, superset: Superset, *,
             hints=None, text_addr: int = 0, facts=None,
             provenance: ProvenanceLog | None = None) -> LintReport:
        return self.run(LintContext.build(result, superset, hints=hints,
                                          text_addr=text_addr, facts=facts),
                        provenance=provenance)


def _attach_provenance(diagnostic, provenance: ProvenanceLog):
    """Enrich one diagnostic with the decisions behind its byte range."""
    events = provenance.events_overlapping(diagnostic.start,
                                           diagnostic.end)
    if not events:
        return diagnostic
    chain = tuple(event.render()
                  for event in events[-_PROVENANCE_CHAIN_LIMIT:])
    return replace(diagnostic, provenance=chain)


def lint_disassembly(result: DisassemblyResult,
                     text: bytes | Superset, *,
                     config: LintConfig = DEFAULT_LINT_CONFIG,
                     registry: RuleRegistry | None = None,
                     hints=None, text_addr: int = 0, facts=None,
                     provenance: ProvenanceLog | None = None
                     ) -> LintReport:
    """Lint one disassembly claim against the oracle-free invariants.

    ``text`` may be the raw section bytes (the superset is built or
    fetched from the process-wide cache) or an already-built
    :class:`Superset`.  ``hints`` (a
    :class:`~repro.formats.hints.FormatHints`, with ``text_addr``
    locating the text section in the hint address space) lets the
    ``hint-disagreement`` rule cross-check the claim against residual
    ELF/PE metadata; the claim itself is still produced metadata-free.
    ``facts`` (the producing run's exported
    :class:`~repro.core.engine.facts.FactExport`, i.e.
    ``Disassembly.facts``) enables the ``rule-disagreement`` rule.
    ``provenance`` (the audit trail of the run that produced
    ``result``) enriches each diagnostic with the decision chain
    behind its byte range.
    """
    superset = (text if isinstance(text, Superset)
                else cached_superset(bytes(text)))
    return Linter(registry=registry, config=config).lint(
        result, superset, hints=hints, text_addr=text_addr, facts=facts,
        provenance=provenance)
