"""The lint driver: run a configured rule selection over one claim."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..result import DisassemblyResult
from ..superset.superset import Superset, cached_superset
from .context import LintContext
from .diagnostics import LintReport, Severity
from .registry import DEFAULT_REGISTRY, RuleRegistry

# Importing the rule module attaches the built-in battery to
# DEFAULT_REGISTRY exactly once.
from . import rules as _builtin_rules  # noqa: F401  (import for effect)


@dataclass(frozen=True)
class LintConfig:
    """One lint run's rule selection.

    Attributes:
        enabled: rule ids to run (None = every registered rule).
        disabled: rule ids removed from the selection.
        severity_overrides: per-rule severity rebindings.
    """

    enabled: tuple[str, ...] | None = None
    disabled: tuple[str, ...] = ()
    severity_overrides: dict[str, Severity] = field(default_factory=dict)


DEFAULT_LINT_CONFIG = LintConfig()


class Linter:
    """Runs a rule selection from a registry over disassembly claims."""

    def __init__(self, registry: RuleRegistry | None = None,
                 config: LintConfig = DEFAULT_LINT_CONFIG) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.config = config

    def run(self, context: LintContext) -> LintReport:
        report = LintReport(tool=context.result.tool)
        for rule in self.registry.select(
                enabled=self.config.enabled,
                disabled=self.config.disabled,
                severity_overrides=self.config.severity_overrides):
            report.rules_run.append(rule.id)
            report.extend(rule.check(context, rule.severity))
        return report

    def lint(self, result: DisassemblyResult, superset: Superset, *,
             hints=None, text_addr: int = 0) -> LintReport:
        return self.run(LintContext.build(result, superset, hints=hints,
                                          text_addr=text_addr))


def lint_disassembly(result: DisassemblyResult,
                     text: bytes | Superset, *,
                     config: LintConfig = DEFAULT_LINT_CONFIG,
                     registry: RuleRegistry | None = None,
                     hints=None, text_addr: int = 0) -> LintReport:
    """Lint one disassembly claim against the oracle-free invariants.

    ``text`` may be the raw section bytes (the superset is built or
    fetched from the process-wide cache) or an already-built
    :class:`Superset`.  ``hints`` (a
    :class:`~repro.formats.hints.FormatHints`, with ``text_addr``
    locating the text section in the hint address space) lets the
    ``hint-disagreement`` rule cross-check the claim against residual
    ELF/PE metadata; the claim itself is still produced metadata-free.
    """
    superset = (text if isinstance(text, Superset)
                else cached_superset(bytes(text)))
    return Linter(registry=registry, config=config).lint(
        result, superset, hints=hints, text_addr=text_addr)
