"""Shared, precomputed state every lint rule reads.

Rules need the same handful of views over a disassembly claim: a
per-byte classification, the accepted instruction at or covering an
offset, branch cross-references among accepted instructions, and the
structural shapes (ASCII runs, padding runs, pointer-table candidates)
of the raw bytes.  Computing them once here keeps each rule a short
declarative check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from ..analysis.cfg import ControlFlowGraph, build_cfg
from ..formats.hints import FormatHints
from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind
from ..result import DisassemblyResult
from ..stats.datamodel import (AsciiRun, TableCandidate, find_ascii_runs,
                               find_jump_tables, find_padding_runs)
from ..superset.superset import Superset


class ByteClaim(enum.IntEnum):
    """What the disassembly result claims one byte is."""

    UNCLAIMED = 0       # neither code nor data (typically padding)
    CODE_START = 1
    CODE_INTERIOR = 2
    DATA = 3


@dataclass
class LintContext:
    """One disassembly claim plus the derived views the rules consume."""

    result: DisassemblyResult
    superset: Superset
    text: bytes
    #: Optional container-metadata hints (ELF/PE residual structure);
    #: None when linting a native container or raw bytes.  Hints are
    #: advisory -- rules consuming them must stay at INFO severity,
    #: since real metadata is occasionally wrong.
    hints: FormatHints | None = None
    #: Virtual address of the text section, for converting hint
    #: addresses (absolute) to text offsets.
    text_addr: int = 0
    #: Optional region facts exported by the correction engine
    #: (:class:`~repro.core.engine.facts.FactExport`): why each byte
    #: range holds its classification.  None when linting a bare claim
    #: (raw JSON, foreign tool); the ``rule-disagreement`` rule then
    #: stays silent.
    facts: object | None = None

    @classmethod
    def build(cls, result: DisassemblyResult, superset: Superset, *,
              hints: FormatHints | None = None,
              text_addr: int = 0, facts: object | None = None
              ) -> LintContext:
        return cls(result=result, superset=superset, text=superset.text,
                   hints=hints, text_addr=text_addr, facts=facts)

    @cached_property
    def hint_function_starts(self) -> list[int]:
        """Hinted function-start offsets that land inside the text."""
        if self.hints is None:
            return []
        starts = [start for start, _ in
                  self.hints.text_ranges(self.text_addr, len(self.text))]
        for address in self.hints.entry_candidates:
            offset = address - self.text_addr
            if 0 <= offset < len(self.text):
                starts.append(offset)
        return sorted(set(starts))

    # ------------------------------------------------------------------
    # Per-byte claims
    # ------------------------------------------------------------------

    @cached_property
    def claims(self) -> bytearray:
        """Per-byte :class:`ByteClaim` values.

        Data claims are written first so that a (bogus) overlap between
        an accepted instruction and a data region surfaces as code bytes
        for the cross-reference rules; the dedicated overlap rule
        reports the conflict itself from the raw result.
        """
        claims = bytearray(len(self.text))
        for start, end in self.result.data_regions:
            for i in range(max(start, 0), min(end, len(claims))):
                claims[i] = ByteClaim.DATA
        for start, length in self.result.instructions.items():
            if not 0 <= start < len(claims):
                continue
            claims[start] = ByteClaim.CODE_START
            for i in range(start + 1, min(start + length, len(claims))):
                claims[i] = ByteClaim.CODE_INTERIOR
        return claims

    def claim_at(self, offset: int) -> ByteClaim:
        if 0 <= offset < len(self.claims):
            return ByteClaim(self.claims[offset])
        return ByteClaim.UNCLAIMED

    def is_accepted_start(self, offset: int) -> bool:
        return self.claim_at(offset) == ByteClaim.CODE_START

    def is_data(self, offset: int) -> bool:
        return self.claim_at(offset) == ByteClaim.DATA

    # ------------------------------------------------------------------
    # Accepted instructions
    # ------------------------------------------------------------------

    @cached_property
    def sorted_starts(self) -> list[int]:
        return sorted(self.result.instructions)

    @cached_property
    def accepted(self) -> dict[int, Instruction]:
        """Accepted starts that decode, mapped to their instructions."""
        accepted = {}
        for start in self.sorted_starts:
            instruction = self.superset.at(start)
            if instruction is not None:
                accepted[start] = instruction
        return accepted

    @cached_property
    def covering_start(self) -> dict[int, int]:
        """Every claimed code byte -> the accepted start covering it."""
        covering = {}
        for start, length in self.result.instructions.items():
            for i in range(start, min(start + length, len(self.text))):
                covering[i] = start
        return covering

    @cached_property
    def data_region_at(self) -> dict[int, tuple[int, int]]:
        """Every claimed data byte -> its maximal [start, end) region."""
        regions = {}
        for start, end in self.result.data_regions:
            for i in range(max(start, 0), min(end, len(self.text))):
                regions[i] = (start, end)
        return regions

    # ------------------------------------------------------------------
    # Cross-references among accepted instructions
    # ------------------------------------------------------------------

    @cached_property
    def branch_sites(self) -> list[tuple[int, Instruction, int]]:
        """(site, instruction, target) for accepted direct jumps/calls."""
        sites = []
        for start, ins in self.accepted.items():
            if not ins.is_direct_branch:
                continue
            target = ins.branch_target
            if target is not None:
                sites.append((start, ins, target))
        return sites

    @cached_property
    def referenced_targets(self) -> set[int]:
        """Offsets referenced by accepted code or claimed structure.

        Union of direct branch/call targets, RIP-relative references,
        claimed function entries, and the targets of pointer-table
        candidates found in claimed data bytes.  Used by the orphan rule
        as "has any incoming reference".
        """
        referenced: set[int] = set()
        for _, _, target in self.branch_sites:
            referenced.add(target)
        for start, ins in self.accepted.items():
            rip_target = ins.rip_target
            if rip_target is not None:
                referenced.add(rip_target)
        referenced |= self.result.function_entries
        for table in self.data_table_candidates:
            referenced.update(table.targets)
        return referenced

    # ------------------------------------------------------------------
    # Structural shapes of the raw bytes
    # ------------------------------------------------------------------

    @cached_property
    def ascii_runs(self) -> list[AsciiRun]:
        return find_ascii_runs(self.text)

    @cached_property
    def padding_runs(self) -> list[tuple[int, int]]:
        return find_padding_runs(self.text, min_length=4,
                                 padding_bytes=(0xCC, 0x00, 0x90))

    @cached_property
    def table_candidates(self) -> list[TableCandidate]:
        """Aligned pointer-run candidates anywhere in the section."""
        return find_jump_tables(self.text,
                                is_plausible_target=self.superset.is_valid)

    @cached_property
    def data_table_candidates(self) -> list[TableCandidate]:
        """Table candidates lying (mostly) in claimed data bytes."""
        chosen = []
        for table in self.table_candidates:
            span = range(table.start, table.end)
            data = sum(1 for i in span if self.is_data(i))
            if 2 * data >= len(span):
                chosen.append(table)
        return chosen

    # ------------------------------------------------------------------
    # Control-flow graph over the accepted set
    # ------------------------------------------------------------------

    @cached_property
    def cfg(self) -> ControlFlowGraph:
        return build_cfg(self.superset, set(self.accepted))

    # ------------------------------------------------------------------
    # Flow helpers
    # ------------------------------------------------------------------

    @staticmethod
    def stops_execution(ins: Instruction) -> bool:
        """Fall-through past ``ins`` is impossible or conventional.

        CALL/ICALL fall-throughs are exempted because a noreturn callee
        legitimately leaves data after the call site; TRAP (int3) never
        proceeds; the NO_FALLTHROUGH kinds have no fall-through at all.
        """
        return (not ins.falls_through
                or ins.flow in (FlowKind.CALL, FlowKind.ICALL,
                                FlowKind.TRAP))
