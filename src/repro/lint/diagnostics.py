"""Structured diagnostics emitted by the oracle-free verifier.

A :class:`Diagnostic` pins one invariant violation to a byte range of
the text section; a :class:`LintReport` aggregates them with severity
accounting and renders both the human text format and the stable JSON
schema the CLI exposes (see README, "Linting a disassembly").
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How strongly a diagnostic indicates a real disassembly error.

    ERROR diagnostics are sound on well-formed output: a correct
    disassembly of a conventional binary never produces one.  WARNING
    diagnostics are strong heuristics with known benign causes (e.g.
    functions reachable only through out-of-section pointer tables look
    like orphan code).  INFO records conventions worth surfacing but not
    acting on.
    """

    INFO = 1
    WARNING = 2
    ERROR = 3

    @classmethod
    def parse(cls, name: str) -> Severity:
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity: {name!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation over [start, end) of the text section.

    Attributes:
        rule: identifier of the producing rule (stable, kebab-case).
        severity: see :class:`Severity`.
        start / end: byte range the violation is anchored to.
        message: human explanation with concrete offsets.
        suggestion: proposed reclassification of [start, end) --
            ``"data"`` (accepted code that looks like data), ``"code"``
            (classified data that must be code), or None when the
            violation does not imply a unique fix.
        provenance: the causal decision chain behind the flagged
            region, rendered one event per line, when the producing
            run recorded an audit trail (see :mod:`repro.obs`).  Empty
            otherwise, and omitted from the JSON schema when empty so
            provenance-off reports are byte-identical to before.
    """

    rule: str
    severity: Severity
    start: int
    end: int
    message: str
    suggestion: str | None = None
    provenance: tuple[str, ...] = ()

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "start": self.start,
            "end": self.end,
            "message": self.message,
            "suggestion": self.suggestion,
        }
        if self.provenance:
            out["provenance"] = list(self.provenance)
        return out


@dataclass
class LintReport:
    """Every diagnostic one lint run produced, plus rendering helpers."""

    tool: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Rules that actually ran (after enable/disable filtering).
    rules_run: list[str] = field(default_factory=list)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        by_name = {s.name.lower(): 0 for s in Severity}
        for diagnostic in self.diagnostics:
            by_name[diagnostic.severity.name.lower()] += 1
        return by_name

    def sorted(self) -> list[Diagnostic]:
        """Severity-descending, then address-ascending."""
        return sorted(self.diagnostics,
                      key=lambda d: (-int(d.severity), d.start, d.rule))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        lines = []
        for d in self.sorted():
            suffix = f"  [suggest: {d.suggestion}]" if d.suggestion else ""
            lines.append(f"{d.severity.name.lower():<7s} "
                         f"{d.rule:<24s} {d.start:#08x}-{d.end:#08x}  "
                         f"{d.message}{suffix}")
        counts = self.counts()
        lines.append(f"{len(self.diagnostics)} diagnostics "
                     f"({counts['error']} errors, {counts['warning']} "
                     f"warnings, {counts['info']} info)")
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps({
            "tool": self.tool,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> LintReport:
        raw = json.loads(text)
        report = cls(tool=raw["tool"], rules_run=list(raw["rules_run"]))
        for item in raw["diagnostics"]:
            report.diagnostics.append(Diagnostic(
                rule=item["rule"],
                severity=Severity.parse(item["severity"]),
                start=item["start"], end=item["end"],
                message=item["message"],
                suggestion=item.get("suggestion"),
                provenance=tuple(item.get("provenance", ()))))
        return report
