"""Does the oracle-free signal find real errors?  (Experiment L1.)

The linter is useful only if its diagnostics correlate with actual
disassembly errors.  With synthetic ground truth we can measure that
directly:

1. Build the *perfect* disassembly of a corpus binary from its ground
   truth.  The linter must stay silent at ERROR severity (soundness).
2. Inject known misclassifications -- flip runs of ground-truth code
   bytes to data and runs of data bytes to (decodable) code, the two
   error classes every disassembler exhibits.
3. Lint the corrupted claim.  Recall is the fraction of injected flips
   overlapped by at least one ERROR diagnostic; precision is the
   fraction of ERROR diagnostics overlapping some injected flip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..binary.groundtruth import ByteKind, GroundTruth
from ..binary.loader import TestCase
from ..result import DisassemblyResult
from ..superset.superset import cached_superset
from .diagnostics import LintReport, Severity
from .engine import lint_disassembly

#: Minimum bytes one injected flip must change to count as an error.
MIN_FLIP_BYTES = 6


def perfect_result(truth: GroundTruth) -> DisassemblyResult:
    """The ground-truth disassembly in result form.

    Padding stays unclaimed (matching the metric convention that tools
    are not judged on padding either way).
    """
    labels = truth.labels
    instructions: dict[int, int] = {}
    for start in sorted(truth.instruction_starts):
        length = 1
        while start + length < truth.size \
                and labels[start + length] == ByteKind.INSN_INTERIOR:
            length += 1
        instructions[start] = length
    return DisassemblyResult(
        tool="ground-truth",
        instructions=instructions,
        data_regions=truth.data_regions(),
        function_entries=set(truth.function_entries),
    )


@dataclass(frozen=True)
class InjectedError:
    """One deliberate misclassification written into a perfect claim."""

    kind: str    # "code-to-data" | "data-to-code"
    start: int
    end: int

    def overlapped_by(self, report_errors) -> bool:
        return any(d.overlaps(self.start, self.end) for d in report_errors)


def inject_errors(case: TestCase, result: DisassemblyResult, *,
                  flips: int = 12, seed: int = 0
                  ) -> tuple[DisassemblyResult, list[InjectedError]]:
    """Corrupt a perfect claim with ``flips`` known misclassifications.

    Alternates the two error directions.  Flips never overlap each
    other; a data-to-code flip only happens where the data actually
    decodes (a real disassembler cannot claim undecodable bytes).
    """
    rng = random.Random(seed)
    instructions = dict(result.instructions)
    data_regions = sorted(result.data_regions)
    injected: list[InjectedError] = []
    touched: set[int] = set()

    def free(start: int, end: int) -> bool:
        return not any(i in touched for i in range(start, end))

    starts = sorted(instructions)
    superset = cached_superset(case.text)

    code_budget = (flips + 1) // 2
    attempts = 0
    while code_budget and attempts < 40 * flips:
        attempts += 1
        flip = _flip_code_to_data(rng, starts, instructions)
        if flip is None or not free(*flip):
            continue
        start, end = flip
        for offset in list(instructions):
            if start <= offset < end:
                del instructions[offset]
        data_regions.append((start, end))
        touched.update(range(start, end))
        injected.append(InjectedError("code-to-data", start, end))
        code_budget -= 1

    data_budget = flips - len(injected)
    attempts = 0
    while data_budget and attempts < 40 * flips:
        attempts += 1
        flip = _flip_data_to_code(rng, data_regions, superset)
        if flip is None:
            continue
        region_index, start, end, tiling = flip
        if not free(start, end):
            continue
        region_start, region_end = data_regions[region_index]
        replacement = []
        if region_start < start:
            replacement.append((region_start, start))
        if end < region_end:
            replacement.append((end, region_end))
        data_regions[region_index:region_index + 1] = replacement
        instructions.update(tiling)
        touched.update(range(start, end))
        injected.append(InjectedError("data-to-code", start, end))
        data_budget -= 1

    corrupted = DisassemblyResult(
        tool=f"{result.tool}+injected",
        instructions=instructions,
        data_regions=sorted(data_regions),
        function_entries=set(result.function_entries),
    )
    return corrupted, injected


def _flip_code_to_data(rng: random.Random, starts: list[int],
                       instructions: dict[int, int]
                       ) -> tuple[int, int] | None:
    """A run of 1-3 surviving instructions totaling >= MIN_FLIP_BYTES."""
    anchor = rng.choice(starts)
    if anchor not in instructions:
        return None
    start = anchor
    end = anchor
    count = 0
    while count < 3 and end in instructions:
        end = end + instructions[end]
        count += 1
        if end - start >= MIN_FLIP_BYTES:
            break
    if end - start < MIN_FLIP_BYTES:
        return None
    return start, end


def _flip_data_to_code(rng: random.Random,
                       data_regions: list[tuple[int, int]], superset
                       ) -> tuple[int, int, int, dict[int, int]] | None:
    """Tile a decodable prefix of a data region as instructions."""
    candidates = [i for i, (s, e) in enumerate(data_regions)
                  if e - s >= MIN_FLIP_BYTES]
    if not candidates:
        return None
    region_index = rng.choice(candidates)
    region_start, region_end = data_regions[region_index]
    tiling: dict[int, int] = {}
    cursor = region_start
    while cursor < region_end:
        candidate = superset.at(cursor)
        if candidate is None or candidate.end > region_end:
            break
        tiling[cursor] = candidate.length
        cursor = candidate.end
    if cursor - region_start < MIN_FLIP_BYTES or len(tiling) < 2:
        return None
    return region_index, region_start, cursor, tiling


# ----------------------------------------------------------------------
# Per-case measurement
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LintAccuracy:
    """Diagnostic accuracy of one linted case."""

    name: str
    perfect_errors: int      # ERROR diagnostics on the perfect claim
    injected: int
    detected: int            # injected flips overlapped by an ERROR
    error_diagnostics: int   # ERROR diagnostics on the corrupted claim
    true_hits: int           # ERROR diagnostics overlapping some flip

    @property
    def recall(self) -> float:
        return self.detected / self.injected if self.injected else 1.0

    @property
    def precision(self) -> float:
        return (self.true_hits / self.error_diagnostics
                if self.error_diagnostics else 1.0)


def measure_case(case: TestCase, *, flips: int = 12,
                 seed: int = 0) -> LintAccuracy:
    """Soundness + injection detection for one corpus binary."""
    superset = cached_superset(case.text)
    perfect = perfect_result(case.truth)
    perfect_report = lint_disassembly(perfect, superset)

    corrupted, injected = inject_errors(case, perfect, flips=flips,
                                        seed=seed)
    report = lint_disassembly(corrupted, superset)
    errors = report.errors
    detected = sum(1 for flip in injected if flip.overlapped_by(errors))
    true_hits = sum(1 for d in errors
                    if any(d.overlaps(f.start, f.end) for f in injected))
    return LintAccuracy(
        name=case.name,
        perfect_errors=len(perfect_report.errors),
        injected=len(injected),
        detected=detected,
        error_diagnostics=len(errors),
        true_hits=true_hits,
    )


def pool(results: list[LintAccuracy], name: str = "pooled") -> LintAccuracy:
    return LintAccuracy(
        name=name,
        perfect_errors=sum(r.perfect_errors for r in results),
        injected=sum(r.injected for r in results),
        detected=sum(r.detected for r in results),
        error_diagnostics=sum(r.error_diagnostics for r in results),
        true_hits=sum(r.true_hits for r in results),
    )


def perfect_report(case: TestCase) -> LintReport:
    """Lint the ground-truth claim of one case (soundness check)."""
    return lint_disassembly(perfect_result(case.truth),
                            cached_superset(case.text))


def error_count(report: LintReport) -> int:
    return len(report.at_least(Severity.ERROR))
