"""Diagnostics as correction evidence (the lint feedback hook).

Error diagnostics that carry an unambiguous reclassification suggestion
translate directly into :class:`~repro.core.evidence.Evidence` items the
correction engine already knows how to arbitrate.  The disassembler
runs this hook behind ``DisassemblerConfig.use_lint_feedback`` (off by
default): lint its own first-pass output, feed the suggestions back,
and re-drain -- turning the verifier into one more evidence source of
the paper's prioritized-correction loop.
"""

from __future__ import annotations

from ..core.evidence import Evidence, Priority
from .diagnostics import Diagnostic, LintReport, Severity

#: Rules whose "data" suggestions are trusted as structural evidence.
#: Each one identifies a byte *shape* (string, pointer array, padding),
#: so the span is data regardless of which instruction claimed it.
_DATA_SHAPE_RULES = frozenset({
    "string-as-code", "pointer-run-as-code", "padding-as-code",
})

#: Rules whose diagnostics name a single offset that must be code.
_CODE_TARGET_RULES = frozenset({
    "branch-into-data", "function-entry-not-code",
})


def diagnostics_to_evidence(report: LintReport,
                            *, min_severity: Severity = Severity.WARNING
                            ) -> list[Evidence]:
    """Evidence items derived from actionable diagnostics.

    Only diagnostics with a suggestion from the conservative rule sets
    above are converted; ambiguous violations (a dangling fall-through
    does not say which side is wrong) produce no evidence.  Evidence is
    STRUCTURAL so that genuinely traced code (ANCHOR) still wins.
    """
    evidence: list[Evidence] = []
    for diagnostic in report.sorted():
        if diagnostic.severity < min_severity:
            continue
        evidence.extend(_convert(diagnostic))
    return evidence


def _convert(diagnostic: Diagnostic) -> list[Evidence]:
    source = f"lint:{diagnostic.rule}"
    if diagnostic.rule in _DATA_SHAPE_RULES \
            and diagnostic.suggestion == "data":
        return [Evidence("data", diagnostic.start, diagnostic.end,
                         Priority.STRUCTURAL, 1.0, source)]
    if diagnostic.rule in _CODE_TARGET_RULES \
            and diagnostic.suggestion == "code":
        return [Evidence("code", diagnostic.start, diagnostic.start,
                         Priority.STRUCTURAL, 1.0, source)]
    return []
