"""Oracle-free disassembly verification (``repro.lint``).

A static-analysis pass over a :class:`~repro.result.DisassemblyResult`
that checks the structural invariants every correct disassembly must
satisfy -- no ground truth required.  See DESIGN.md ("Oracle-free
verification") for the invariant catalog and README for CLI usage.

>>> from repro.lint import lint_disassembly
>>> report = lint_disassembly(result, text)            # doctest: +SKIP
>>> report.errors                                      # doctest: +SKIP
"""

from .context import ByteClaim, LintContext
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import (DEFAULT_LINT_CONFIG, LintConfig, Linter,
                     lint_disassembly)
from .feedback import diagnostics_to_evidence
from .registry import DEFAULT_REGISTRY, LintRule, RuleRegistry

__all__ = [
    "ByteClaim",
    "DEFAULT_LINT_CONFIG",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LintRule",
    "Linter",
    "RuleRegistry",
    "Severity",
    "diagnostics_to_evidence",
    "lint_disassembly",
]
