"""Built-in oracle-free invariant rules.

Each rule checks one structural property that a *correct* disassembly
of a conventionally compiled binary must satisfy -- no ground truth is
consulted.  ERROR-severity rules are sound by design: on a perfect
disassembly they stay silent (the property-test suite enforces this on
the synthetic corpus); WARNING/INFO rules are heuristics with known
benign triggers.

The battery follows the invariant catalog of the binary-only
error-detection literature (Wijayadi et al.; Pang et al.'s SoK): branch
targets must land on instruction starts, code must not overlap data,
fall-through must not run into data, tables must target code, and
data-shaped byte runs (NUL-terminated strings, aligned pointer arrays)
must not be claimed as instructions.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..analysis.idioms import prologue_score
from ..isa.opcodes import FlowKind
from .context import ByteClaim, LintContext
from .diagnostics import Diagnostic, Severity
from .registry import DEFAULT_REGISTRY as R

#: Minimum NUL-terminated printable run treated as a definite string.
MIN_STRING_RUN = 8

#: Minimum int3 run whose acceptance as code is suspicious.
MIN_INT3_RUN = 4

#: Minimum padding run surfaced by the informational padding rule.
MIN_PADDING_RUN = 8

#: Fall-through chain probed past an unaccepted call target.
CALL_PROBE_DEPTH = 4


# ----------------------------------------------------------------------
# Self-consistency of the accepted instruction set
# ----------------------------------------------------------------------

@R.register("undecodable-instruction", Severity.ERROR,
            "accepted instruction does not decode at its claimed length")
def check_undecodable(ctx: LintContext,
                     severity: Severity) -> Iterator[Diagnostic]:
    for start in ctx.sorted_starts:
        length = ctx.result.instructions[start]
        candidate = ctx.superset.at(start)
        if candidate is None:
            yield Diagnostic(
                "undecodable-instruction", severity, start, start + length,
                f"accepted instruction at {start:#x} does not decode",
                suggestion="data")
        elif candidate.length != length:
            yield Diagnostic(
                "undecodable-instruction", severity, start, start + length,
                f"accepted instruction at {start:#x} claims {length} bytes "
                f"but decodes to {candidate.length}")


@R.register("instruction-overlap", Severity.ERROR,
            "two accepted instructions overlap")
def check_overlap(ctx: LintContext,
                  severity: Severity) -> Iterator[Diagnostic]:
    previous_start = previous_end = -1
    for start in ctx.sorted_starts:
        if start < previous_end:
            yield Diagnostic(
                "instruction-overlap", severity, start, previous_end,
                f"accepted instruction at {start:#x} starts inside the "
                f"accepted instruction at {previous_start:#x}")
        end = start + ctx.result.instructions[start]
        if end > previous_end:
            previous_start, previous_end = start, end


@R.register("code-data-overlap", Severity.ERROR,
            "byte range claimed as both code and data")
def check_code_data_overlap(ctx: LintContext,
                            severity: Severity) -> Iterator[Diagnostic]:
    covering = ctx.covering_start
    for region_start, region_end in ctx.result.data_regions:
        overlap = [i for i in range(max(region_start, 0),
                                    min(region_end, len(ctx.text)))
                   if i in covering]
        if overlap:
            yield Diagnostic(
                "code-data-overlap", severity, overlap[0], overlap[-1] + 1,
                f"data region {region_start:#x}-{region_end:#x} overlaps "
                f"{len(overlap)} bytes of accepted instructions")


@R.register("function-entry-not-code", Severity.ERROR,
            "claimed function entry is not an accepted instruction start")
def check_function_entries(ctx: LintContext,
                           severity: Severity) -> Iterator[Diagnostic]:
    for entry in sorted(ctx.result.function_entries):
        if not 0 <= entry < len(ctx.text):
            continue
        if not ctx.is_accepted_start(entry):
            yield Diagnostic(
                "function-entry-not-code", severity, entry, entry + 1,
                f"function entry {entry:#x} is not an accepted "
                f"instruction start", suggestion="code")


# ----------------------------------------------------------------------
# Control-flow cross-references
# ----------------------------------------------------------------------

@R.register("branch-into-instruction", Severity.ERROR,
            "direct branch/call target lands inside an accepted "
            "instruction")
def check_branch_into_instruction(ctx: LintContext,
                                  severity: Severity) -> Iterator[Diagnostic]:
    covering = ctx.covering_start
    for site, ins, target in ctx.branch_sites:
        if not 0 <= target < len(ctx.text):
            continue
        start = covering.get(target)
        if start is not None and start != target:
            yield Diagnostic(
                "branch-into-instruction", severity, target, target + 1,
                f"{ins.display_mnemonic} at {site:#x} targets {target:#x}, "
                f"inside the accepted instruction at {start:#x}")


@R.register("branch-into-data", Severity.ERROR,
            "direct branch/call target lands in a claimed data region")
def check_branch_into_data(ctx: LintContext,
                           severity: Severity) -> Iterator[Diagnostic]:
    for site, ins, target in ctx.branch_sites:
        if not 0 <= target < len(ctx.text):
            continue
        if ctx.is_data(target):
            region = ctx.data_region_at.get(target, (target, target + 1))
            yield Diagnostic(
                "branch-into-data", severity, target, target + 1,
                f"{ins.display_mnemonic} at {site:#x} targets {target:#x}, "
                f"inside the data region {region[0]:#x}-{region[1]:#x}",
                suggestion="code")


@R.register("dangling-fallthrough", Severity.ERROR,
            "accepted instruction falls through into data or into the "
            "middle of another instruction")
def check_dangling_fallthrough(ctx: LintContext,
                               severity: Severity) -> Iterator[Diagnostic]:
    for start, ins in ctx.accepted.items():
        if ctx.stops_execution(ins):
            continue
        landing = ins.end
        if landing >= len(ctx.text):
            yield Diagnostic(
                "dangling-fallthrough", severity, start, len(ctx.text),
                f"instruction at {start:#x} falls through past the end "
                f"of the section")
            continue
        claim = ctx.claim_at(landing)
        if claim == ByteClaim.DATA:
            region = ctx.data_region_at.get(landing,
                                            (landing, landing + 1))
            yield Diagnostic(
                "dangling-fallthrough", severity, start, landing + 1,
                f"instruction at {start:#x} falls through into the data "
                f"region {region[0]:#x}-{region[1]:#x} with no "
                f"intervening terminator")
        elif claim == ByteClaim.CODE_INTERIOR:
            covering = ctx.covering_start.get(landing, landing)
            yield Diagnostic(
                "dangling-fallthrough", severity, start, landing + 1,
                f"instruction at {start:#x} falls through into the "
                f"middle of the accepted instruction at {covering:#x}")


@R.register("fallthrough-unclaimed", Severity.WARNING,
            "accepted instruction falls through into unclaimed bytes")
def check_fallthrough_unclaimed(ctx: LintContext,
                                severity: Severity) -> Iterator[Diagnostic]:
    for start, ins in ctx.accepted.items():
        if ctx.stops_execution(ins):
            continue
        landing = ins.end
        if landing < len(ctx.text) \
                and ctx.claim_at(landing) == ByteClaim.UNCLAIMED:
            yield Diagnostic(
                "fallthrough-unclaimed", severity, start, landing + 1,
                f"instruction at {start:#x} falls through into bytes "
                f"claimed neither code nor data")


# ----------------------------------------------------------------------
# Call-target plausibility
# ----------------------------------------------------------------------

@R.register("call-target-garbage", Severity.ERROR,
            "direct call target does not decode to a plausible opening")
def check_call_target_garbage(ctx: LintContext,
                              severity: Severity) -> Iterator[Diagnostic]:
    for site, ins, target in ctx.branch_sites:
        if ins.flow is not FlowKind.CALL:
            continue
        if not 0 <= target < len(ctx.text):
            continue
        if ctx.claim_at(target) != ByteClaim.UNCLAIMED:
            continue     # accepted / data / interior handled elsewhere
        if ctx.superset.at(target) is None:
            yield Diagnostic(
                "call-target-garbage", severity, target, target + 1,
                f"call at {site:#x} targets {target:#x}, which does not "
                f"decode to any instruction")
            continue
        chain = ctx.superset.fallthrough_chain(target, CALL_PROBE_DEPTH)
        last = chain[-1]
        if len(chain) < CALL_PROBE_DEPTH and last.falls_through \
                and last.flow is not FlowKind.TRAP \
                and last.end < len(ctx.text):
            yield Diagnostic(
                "call-target-garbage", severity, target, last.end,
                f"call at {site:#x} targets {target:#x}, whose "
                f"instruction chain hits undecodable bytes after "
                f"{len(chain)} instructions")


@R.register("call-target-non-prologue", Severity.WARNING,
            "unaccepted direct call target does not look like a "
            "function opening")
def check_call_target_non_prologue(ctx: LintContext,
                                   severity: Severity
                                   ) -> Iterator[Diagnostic]:
    for site, ins, target in ctx.branch_sites:
        if ins.flow is not FlowKind.CALL:
            continue
        if not 0 <= target < len(ctx.text):
            continue
        if ctx.claim_at(target) != ByteClaim.UNCLAIMED:
            continue
        if ctx.superset.at(target) is None:
            continue     # call-target-garbage reports it
        if prologue_score(ctx.superset, target) == 0:
            yield Diagnostic(
                "call-target-non-prologue", severity, target, target + 1,
                f"call at {site:#x} targets unaccepted {target:#x}, "
                f"which does not open like a function",
                suggestion="code")


# ----------------------------------------------------------------------
# Table shape consistency
# ----------------------------------------------------------------------

@R.register("jump-table-target-misaligned", Severity.ERROR,
            "jump-table entry does not target an accepted instruction "
            "start")
def check_table_targets(ctx: LintContext,
                        severity: Severity) -> Iterator[Diagnostic]:
    for table in ctx.data_table_candidates:
        good = [i for i, t in enumerate(table.targets)
                if ctx.is_accepted_start(t)]
        if not good:
            continue     # probably a misdetected literal pool, not a table
        # Entries past the last code-targeting one are detector
        # over-extension into neighboring bytes, not table entries.
        for index, target in enumerate(table.targets[:good[-1]]):
            if ctx.is_accepted_start(target):
                continue
            entry = table.start + index * table.entry_size
            yield Diagnostic(
                "jump-table-target-misaligned", severity, entry,
                entry + table.entry_size,
                f"table {table.start:#x}-{table.end:#x} entry {index} "
                f"targets {target:#x}, not an accepted instruction start")


# ----------------------------------------------------------------------
# Data-shaped byte runs accepted as code
# ----------------------------------------------------------------------

@R.register("string-as-code", Severity.ERROR,
            "NUL-terminated ASCII run fully accepted as instructions")
def check_string_as_code(ctx: LintContext,
                         severity: Severity) -> Iterator[Diagnostic]:
    for run in ctx.ascii_runs:
        if not run.terminated or run.length < MIN_STRING_RUN:
            continue
        span = range(run.start, min(run.end, len(ctx.text)))
        if all(ctx.claim_at(i) in (ByteClaim.CODE_START,
                                   ByteClaim.CODE_INTERIOR)
               for i in span):
            yield Diagnostic(
                "string-as-code", severity, run.start, run.end,
                f"{run.length}-byte NUL-terminated ASCII run at "
                f"{run.start:#x} is fully accepted as instructions",
                suggestion="data")


@R.register("pointer-run-as-code", Severity.ERROR,
            "aligned pointer-array run fully accepted as instructions")
def check_pointer_run_as_code(ctx: LintContext,
                              severity: Severity) -> Iterator[Diagnostic]:
    for table in ctx.table_candidates:
        span = range(table.start, min(table.end, len(ctx.text)))
        if len(span) < 12:
            continue
        if all(ctx.claim_at(i) in (ByteClaim.CODE_START,
                                   ByteClaim.CODE_INTERIOR)
               for i in span):
            yield Diagnostic(
                "pointer-run-as-code", severity, table.start, table.end,
                f"{table.entry_count}-entry pointer run at "
                f"{table.start:#x} ({table.entry_size}-byte entries, all "
                f"targeting this section) is fully accepted as "
                f"instructions", suggestion="data")


# ----------------------------------------------------------------------
# Reachability
# ----------------------------------------------------------------------

@R.register("orphan-code", Severity.WARNING,
            "accepted code with no incoming reference")
def check_orphan_code(ctx: LintContext,
                      severity: Severity) -> Iterator[Diagnostic]:
    cfg = ctx.cfg
    referenced = ctx.referenced_targets
    for block_start in sorted(cfg.blocks):
        if block_start == 0:
            continue     # conventional entry point
        if cfg.predecessors(block_start):
            continue
        if block_start in referenced:
            continue
        block = cfg.blocks[block_start]
        yield Diagnostic(
            "orphan-code", severity, block_start, block.end,
            f"accepted block {block_start:#x}-{block.end:#x} has no "
            f"incoming branch, fall-through, table entry, or claimed "
            f"function entry", suggestion="data")


# ----------------------------------------------------------------------
# Padding conventions
# ----------------------------------------------------------------------

@R.register("padding-as-code", Severity.WARNING,
            "int3 padding run accepted as instructions")
def check_padding_as_code(ctx: LintContext,
                         severity: Severity) -> Iterator[Diagnostic]:
    for start, end in ctx.padding_runs:
        if end - start < MIN_INT3_RUN or ctx.text[start] != 0xCC:
            continue
        span = range(start, min(end, len(ctx.text)))
        accepted = sum(1 for i in span
                       if ctx.claim_at(i) in (ByteClaim.CODE_START,
                                              ByteClaim.CODE_INTERIOR))
        if accepted == len(span):
            yield Diagnostic(
                "padding-as-code", severity, start, end,
                f"{end - start}-byte int3 padding run at {start:#x} is "
                f"accepted as instructions", suggestion="data")


@R.register("padding-as-data", Severity.INFO,
            "inter-function padding run claimed as data")
def check_padding_as_data(ctx: LintContext,
                         severity: Severity) -> Iterator[Diagnostic]:
    for start, end in ctx.padding_runs:
        if end - start < MIN_PADDING_RUN:
            continue
        span = range(start, min(end, len(ctx.text)))
        if all(ctx.is_data(i) for i in span):
            yield Diagnostic(
                "padding-as-data", severity, start, end,
                f"{end - start}-byte padding run at {start:#x} is "
                f"claimed as data (conventionally neutral)")


# ----------------------------------------------------------------------
# Container-metadata cross-checks (only when the loader supplied hints)
# ----------------------------------------------------------------------

@R.register("hint-disagreement", Severity.INFO,
            "container metadata contradicts the claimed classification")
def check_hint_disagreement(ctx: LintContext,
                            severity: Severity) -> Iterator[Diagnostic]:
    """Residual ELF/PE metadata vs the metadata-free claim.

    When a real container was ingested, its unwind/exception metadata
    (PE ``RUNTIME_FUNCTION`` ranges, ELF ``DT_INIT``/``DT_FINI``)
    names offsets that *should* be function code.  A claim marking
    such an offset as data -- or not starting an instruction there --
    disagrees with the compiler's own records.  Metadata is advisory
    (and occasionally wrong in the wild), so this stays INFO: it
    annotates, it never fails a build.
    """
    if ctx.hints is None or ctx.hints.empty:
        return
    for offset in ctx.hint_function_starts:
        claim = ctx.claim_at(offset)
        if claim == ByteClaim.CODE_START:
            continue
        what = {ByteClaim.DATA: "claimed as data",
                ByteClaim.CODE_INTERIOR: "inside another instruction",
                ByteClaim.UNCLAIMED: "left unclaimed"}[claim]
        yield Diagnostic(
            "hint-disagreement", severity, offset, offset + 1,
            f"{ctx.hints.format} metadata marks {offset:#x} as a "
            f"function start but it is {what}", suggestion="code")


# ----------------------------------------------------------------------
# Correction-engine cross-checks (only when the fact store is supplied)
# ----------------------------------------------------------------------

@R.register("rule-disagreement", Severity.INFO,
            "correction rules of comparable strength disagreed over a "
            "byte range")
def check_rule_disagreement(ctx: LintContext,
                            severity: Severity) -> Iterator[Diagnostic]:
    """Contested classifications inside the correction fixpoint.

    The fact engine exports one :class:`RegionFact` per mark-code /
    mark-data projection.  A lower-priority fact overwritten by a
    higher-priority one is the priority lattice working as designed and
    stays silent; a fact overwritten by an *equal-or-weaker* one with
    the opposite label means two rules of comparable strength genuinely
    disagreed about the bytes -- exactly the regions worth a second
    look.  Requires the producing run's fact store
    (``lint_disassembly(..., facts=...)``); silent without it.
    """
    if ctx.facts is None:
        return
    seen: set[tuple] = set()
    for fact in ctx.facts:
        winner = ctx.facts.classifier_of(fact.start, fact.end)
        if winner is None or winner is fact:
            continue
        if winner.label == fact.label or fact.priority < winner.priority:
            continue
        lo = max(fact.start, winner.start)
        hi = min(fact.end, winner.end)
        key = (lo, hi, fact.rule, winner.rule)
        if key in seen:
            continue
        seen.add(key)
        yield Diagnostic(
            "rule-disagreement", severity, lo, hi,
            f"rule {fact.rule} marked [{lo:#x}, {hi:#x}) as "
            f"{fact.label} ({fact.priority.name}) but {winner.rule} "
            f"finally marked it {winner.label} "
            f"({winner.priority.name})", suggestion=winner.label)
