"""The lint rule registry: registration, per-rule toggles, severities.

Rules are plain generator functions over a
:class:`~repro.lint.context.LintContext`; the registry owns their
metadata (stable id, default severity, description) so the CLI can list
them, enable/disable them individually, and override severities without
the rule bodies knowing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from .diagnostics import Diagnostic, Severity

#: Signature of a rule body: yields diagnostics (severity field is
#: filled in by the engine from registry configuration).
RuleCheck = Callable[..., Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """Metadata plus the check body of one registered rule."""

    id: str
    severity: Severity
    description: str
    check: RuleCheck


class RuleRegistry:
    """Ordered collection of lint rules with per-rule configuration."""

    def __init__(self) -> None:
        self._rules: dict[str, LintRule] = {}

    def register(self, rule_id: str, severity: Severity,
                 description: str) -> Callable[[RuleCheck], RuleCheck]:
        """Decorator: ``@registry.register("my-rule", Severity.ERROR, ...)``."""
        def wrap(check: RuleCheck) -> RuleCheck:
            if rule_id in self._rules:
                raise ValueError(f"duplicate lint rule id: {rule_id}")
            self._rules[rule_id] = LintRule(rule_id, severity,
                                            description, check)
            return check
        return wrap

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[LintRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def get(self, rule_id: str) -> LintRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown lint rule: {rule_id}") from None

    def ids(self) -> list[str]:
        return list(self._rules)

    def select(self, *, enabled: Iterable[str] | None = None,
               disabled: Iterable[str] = (),
               severity_overrides: dict[str, Severity] | None = None
               ) -> list[LintRule]:
        """The rules one lint run should execute, in registration order.

        ``enabled=None`` means "all registered rules"; otherwise only the
        listed ids run.  ``disabled`` removes ids from that selection.
        ``severity_overrides`` rebinds per-rule severities for the run.
        Unknown ids in any argument raise ``KeyError`` (typo safety).
        """
        for rule_id in (*([] if enabled is None else enabled), *disabled,
                        *(severity_overrides or {})):
            self.get(rule_id)
        chosen = (self._rules if enabled is None else set(enabled))
        overrides = severity_overrides or {}
        selected = []
        for rule in self._rules.values():
            if rule.id not in chosen or rule.id in set(disabled):
                continue
            severity = overrides.get(rule.id, rule.severity)
            if severity is not rule.severity:
                rule = LintRule(rule.id, severity, rule.description,
                                rule.check)
            selected.append(rule)
        return selected


#: The registry all built-in rules attach to (populated by
#: :mod:`repro.lint.rules` at import time).
DEFAULT_REGISTRY = RuleRegistry()
