"""Synthetic compiler: generates stripped binaries with exact ground truth."""

from .codegen import FunctionGenerator, RodataAllocator
from .corpus import (BinarySpec, density_style, generate_binary,
                     generate_corpus)
from .styles import (CLANG_LIKE, GCC_LIKE, MSVC_LIKE, STYLES, CompilerStyle,
                     style_by_name)
from .tracking import TrackedAssembler

__all__ = [
    "FunctionGenerator", "RodataAllocator", "BinarySpec", "density_style",
    "generate_binary", "generate_corpus", "CLANG_LIKE", "GCC_LIKE",
    "MSVC_LIKE", "STYLES", "CompilerStyle", "style_by_name",
    "TrackedAssembler",
]
