"""Generation of realistic function bodies.

The generator emits structured code the way a compiler would: a
prologue, a body built from nested constructs (straight-line arithmetic,
if/else diamonds, counted loops, switches with jump tables, calls), and
a shared epilogue.  Two properties matter for faithfulness:

* **Def-before-use** -- generated code only reads registers that hold a
  value (arguments, or previously written), because the paper's
  behavioral analysis exploits exactly this property of real code.
* **Flag discipline** -- conditional branches follow flag-setting
  instructions, as compiler output does.

Embedded data (inline jump tables, literal pools, strings) is produced
according to the :class:`~repro.synth.styles.CompilerStyle`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa.encoder import Mem, mem, rip
from ..isa.registers import (ARGUMENT_REGISTERS, CALLEE_SAVED, CALLER_SAVED,
                             R8, R9, R10, R11, RAX, RBP, RCX, RDI, RDX, RSI,
                             RSP)
from .styles import CompilerStyle
from .tracking import TrackedAssembler

_SCRATCH = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)
_ALU_OPS = ("add", "sub", "and", "or", "xor")
_CONDITIONS = ("e", "ne", "l", "ge", "le", "g", "b", "ae", "s", "ns")


@dataclass
class RodataRequest:
    """A jump/pointer table the corpus must place outside of text."""

    address: int
    entry_labels: list[str]
    entry_size: int   # 8 for abs64 tables


@dataclass
class GeneratedFunction:
    """What the corpus learns about one emitted function."""

    name: str
    entry: int
    end: int = 0
    jump_tables: list[tuple[int, int]] = field(default_factory=list)


class FunctionGenerator:
    """Emits one function into a shared :class:`TrackedAssembler`."""

    def __init__(self, asm: TrackedAssembler, rng: random.Random,
                 style: CompilerStyle, name: str,
                 callees: list[str],
                 rodata_allocator: RodataAllocator, *,
                 noreturn_callees: list[str] = (),
                 must_call_noreturn: list[str] = (),
                 is_noreturn: bool = False,
                 stack_args: int = 0,
                 callee_stack_args: dict[str, int] | None = None) -> None:
        self.asm = asm
        self.rng = rng
        self.style = style
        self.name = name
        self.callees = callees
        self.noreturn_callees = list(noreturn_callees)
        self.must_call_noreturn = list(must_call_noreturn)
        self.is_noreturn = is_noreturn
        # Callee-cleanup stack arguments: this function's own count (its
        # epilogue becomes ``ret 8*n``) and the per-callee counts its
        # call sites must push.
        self.stack_args = stack_args
        self.callee_stack_args = callee_stack_args or {}
        self.rodata = rodata_allocator
        self._label_counter = 0
        self._initialized: set[int] = set()
        self._frame_pointer = rng.random() < style.frame_pointer_prob
        self._frame_size = 8 * rng.randint(2, 12)
        self._saved: list[int] = []
        self._switch_budget = rng.randint(0, style.max_switches_per_function)
        self._called: set[str] = set()
        # Registers that generated statements must not overwrite (live
        # loop counters) and whether calls are currently forbidden (a
        # caller-saved counter would not survive one).
        self._reserved: set[int] = set()
        self._no_calls = 0
        self._deferred: list[tuple[str, ...]] = []   # end-of-function blobs
        self.result = GeneratedFunction(name=name, entry=0)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.name}.{hint}{self._label_counter}"

    def _pick_initialized(self) -> int:
        """Any live register (memory bases may legitimately be rsp/rbp)."""
        return self.rng.choice(sorted(self._initialized))

    def _pick_value(self) -> int:
        """A live register suitable as an ALU operand (not rsp/rbp).

        Reserved registers (live loop counters) may be *read*, but the
        statement generators use :meth:`_pick_dest`/this pair such that
        destinations come from :meth:`_pick_dest`; reads are harmless.
        Still, to keep read-modify-write statements from mutating a
        counter, reserved registers are excluded here too.
        """
        pool = sorted(self._initialized - {RSP, RBP} - self._reserved)
        if not pool:
            self.asm.mov_ri(RAX, self.rng.randint(0, 100), width=32)
            self._initialized.add(RAX)
            return RAX
        return self.rng.choice(pool)

    def _pick_dest(self) -> int:
        pool = [r for r in _SCRATCH if r not in (RSP, RBP)
                and r not in self._reserved]
        pool += [r for r in self._saved if r not in self._reserved]
        return self.rng.choice(pool)

    def _stack_slot(self) -> Mem:
        slot = 8 * self.rng.randint(1, self._frame_size // 8)
        if self._frame_pointer:
            return mem(base=RBP, disp=-slot)
        return mem(base=RSP, disp=self._frame_size - slot)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self) -> GeneratedFunction:
        asm, rng = self.asm, self.rng
        self.result.entry = asm.here
        asm.bind(self.name)

        if rng.random() < self.style.endbr_prob:
            asm.endbr64()

        # Prologue.
        if self._frame_pointer:
            asm.push_r(RBP)
            asm.mov_rr(RBP, RSP)
        for reg in rng.sample(CALLEE_SAVED[:4],
                              k=rng.choice((0, 0, 1, 2))):
            if reg == RBP:
                continue
            asm.push_r(reg)
            self._saved.append(reg)
        asm.alu_ri("sub", RSP, self._frame_size)

        # Incoming arguments are the initially live registers.
        argc = rng.randint(0, 4)
        self._initialized = set(ARGUMENT_REGISTERS[:argc]) | {RSP}
        if self._frame_pointer:
            self._initialized.add(RBP)
        if not self._initialized - {RSP, RBP}:
            asm.mov_ri(RAX, rng.randint(0, 1000), width=32)
            self._initialized.add(RAX)

        # Functions with stack arguments read some of them (the frame
        # pointer makes the offsets simple: arg i at [rbp+16+8i]).
        if self.stack_args and self._frame_pointer:
            for i in range(self.stack_args):
                if rng.random() < 0.7:
                    dst = self._pick_dest()
                    asm.mov_rm(dst, mem(base=RBP, disp=16 + 8 * i))
                    self._initialized.add(dst)

        self._epilogue_label = self._label("ret")
        # Panic paths: guarded calls to noreturn functions, each one
        # followed (per style) by an inline data blob.
        for target in self.must_call_noreturn:
            self._emit_noreturn_call(target)
        self._emit_body(budget=rng.randint(4, 14), depth=0)

        # Every declared callee gets at least one call site, so the true
        # call graph matches the planned one (linkers do not retain
        # functions nothing references).
        for callee in self.callees:
            if callee not in self._called:
                self._emit_call(callee)

        # Shared epilogue.
        asm.bind(self._epilogue_label)
        if self.is_noreturn:
            # Panic handlers never return: trap instead of ret.
            if rng.random() < 0.5:
                asm.ud2()
            else:
                asm.hlt()
        else:
            if RAX not in self._initialized:
                asm.mov_ri(RAX, rng.randint(0, 255), width=32)
            asm.alu_ri("add", RSP, self._frame_size)
            for reg in reversed(self._saved):
                asm.pop_r(reg)
            if self._frame_pointer:
                asm.pop_r(RBP)
            zero_arg_callees = [c for c in self.callees
                                if not self.callee_stack_args.get(c)]
            if self.stack_args:
                # Callee-cleanup convention: pop our stack arguments.
                asm.ret_imm(8 * self.stack_args)
            elif zero_arg_callees \
                    and rng.random() < self.style.tail_call_prob:
                asm.jmp(rng.choice(zero_arg_callees))
            else:
                asm.ret()

        self._emit_deferred()
        self.result.end = asm.here
        return self.result

    # ------------------------------------------------------------------
    # Body constructs
    # ------------------------------------------------------------------

    def _emit_body(self, budget: int, depth: int) -> None:
        rng = self.rng
        while budget > 0:
            choice = rng.random()
            if choice < 0.45 or depth >= 3:
                self._emit_straight(rng.randint(2, 6))
                budget -= 1
            elif choice < 0.62:
                self._emit_if_else(depth)
                budget -= 2
            elif choice < 0.76:
                self._emit_loop(depth)
                budget -= 2
            elif choice < 0.86 and self.callees and not self._no_calls:
                self._emit_call()
                budget -= 1
            elif choice < 0.93 and self._switch_budget > 0:
                self._switch_budget -= 1
                self._emit_switch(depth)
                budget -= 3
            elif choice < 0.955 and self._panic_candidates():
                self._emit_noreturn_call(
                    rng.choice(self._panic_candidates()))
                budget -= 1
            else:
                self._emit_early_exit()
                budget -= 1

    def _emit_straight(self, count: int) -> None:
        for _ in range(count):
            self._emit_statement()

    def _emit_statement(self) -> None:
        asm, rng = self.asm, self.rng
        kind = rng.random()
        width = rng.choice((32, 32, 64))
        if kind < 0.14:
            dst = self._pick_dest()
            asm.mov_ri(dst, rng.randint(0, 2 ** 16), width=width)
            self._initialized.add(dst)
        elif kind < 0.26:
            dst, src = self._pick_dest(), self._pick_value()
            asm.mov_rr(dst, src, width=64)
            self._initialized.add(dst)
        elif kind < 0.40:
            dst = self._pick_value()
            op = rng.choice(_ALU_OPS)
            if rng.random() < 0.5:
                asm.alu_ri(op, dst, rng.randint(1, 4000), width=width)
            else:
                asm.alu_rr(op, dst, self._pick_value(), width=width)
        elif kind < 0.50:
            dst = self._pick_dest()
            asm.mov_rm(dst, self._stack_slot(), width=64)
            self._initialized.add(dst)
        elif kind < 0.60:
            asm.mov_mr(self._stack_slot(), self._pick_value(),
                       width=64)
        elif kind < 0.68:
            dst = self._pick_dest()
            base = self._pick_initialized()
            index = self._pick_initialized()
            if index == RSP:
                index = None
            asm.lea(dst, mem(base=base, index=index,
                             scale=rng.choice((1, 2, 4, 8)),
                             disp=rng.randint(-64, 256)))
            self._initialized.add(dst)
        elif kind < 0.74:
            dst = self._pick_value()
            asm.shift_ri(rng.choice(("shl", "shr", "sar")), dst,
                         rng.randint(1, 31), width=width)
        elif kind < 0.79:
            dst = self._pick_value()
            asm.imul_rri(dst, self._pick_value(),
                         rng.randint(2, 100), width=64)
        elif kind < 0.84:
            dst = self._pick_value()
            if rng.random() < 0.5:
                asm.inc(dst, width=width)
            else:
                asm.dec(dst, width=width)
        elif kind < 0.88:
            # xor r, r: the canonical zeroing idiom (defines, no read).
            dst = self._pick_dest()
            asm.alu_rr("xor", dst, dst, width=32)
            self._initialized.add(dst)
        elif kind < 0.92:
            dst = self._pick_dest()
            src = self._pick_value()
            asm.movzx(dst, src, rng.choice((8, 16)), width=32)
            self._initialized.add(dst)
        elif kind < 0.96:
            # cmp + setcc + movzx: boolean materialization.
            asm.alu_rr("cmp", self._pick_value(),
                       self._pick_value(), width=64)
            dst = self._pick_dest()
            asm.setcc(self.rng.choice(_CONDITIONS), dst)
            asm.movzx(dst, dst, 8, width=32)
            self._initialized.add(dst)
        else:
            # cmp + cmov.
            a, b = self._pick_value(), self._pick_value()
            asm.alu_rr("cmp", a, b, width=64)
            dst = self._pick_value()
            asm.cmovcc(self.rng.choice(_CONDITIONS), dst,
                       self._pick_value(), width=64)

        if self.rng.random() < 0.05:
            self._emit_literal_reference()

    def _emit_literal_reference(self) -> None:
        """Reference an embedded or out-of-text literal."""
        asm, rng = self.asm, self.rng
        dst = self._pick_dest()
        if rng.random() < self.style.string_in_text_prob:
            label = self._label("str")
            asm.lea(dst, rip(label))
            text = self._random_string().encode() + b"\x00"
            self._deferred.append(("blob", label, text))
        else:
            address = self.rodata.allocate_blob(
                self._random_string().encode() + b"\x00")
            asm.mov_ri(dst, address, width=64)
        self._initialized.add(dst)

    def _random_string(self) -> str:
        words = ("error", "result", "%s:%d", "failed to open %s", "ok",
                 "warning", "value=%ld", "assertion", "usage", "fatal")
        return self.rng.choice(words)

    def _emit_if_else(self, depth: int) -> None:
        asm, rng = self.asm, self.rng
        else_label = self._label("else")
        end_label = self._label("endif")
        condition = rng.choice(_CONDITIONS)
        if rng.random() < 0.5:
            asm.alu_ri("cmp", self._pick_value(),
                       rng.randint(0, 100), width=64)
        else:
            asm.test_rr(self._pick_value(), self._pick_value(),
                        width=64)

        has_else = rng.random() < 0.5
        short = rng.random() < self.style.short_branch_prob
        # Short branches are only safe over tiny bodies.
        then_count = rng.randint(1, 3) if short else rng.randint(2, 5)
        asm.jcc(condition, else_label if has_else else end_label,
                short=short and then_count <= 2)
        saved = set(self._initialized)
        if short and then_count <= 2:
            self._emit_tiny_straight(then_count)
        else:
            self._emit_body(budget=then_count, depth=depth + 1)
        if has_else:
            asm.jmp(end_label)
            asm.bind(else_label)
            self._initialized = set(saved)
            self._emit_body(budget=rng.randint(1, 3), depth=depth + 1)
        asm.bind(end_label)
        # Conservative join: only registers defined on both paths count,
        # approximated by the pre-branch set.
        self._initialized = saved

    def _emit_tiny_straight(self, count: int) -> None:
        """Short fixed-size statements, safe under a rel8 branch."""
        for _ in range(count):
            dst = self._pick_value()
            if self.rng.random() < 0.5:
                self.asm.alu_ri(self.rng.choice(_ALU_OPS), dst,
                                self.rng.randint(1, 127), width=32)
            else:
                self.asm.inc(dst, width=64)

    def _emit_loop(self, depth: int) -> None:
        asm, rng = self.asm, self.rng
        top = self._label("loop")
        # Counters live in callee-saved registers when the function has
        # any (surviving calls in the body); otherwise in a reserved
        # scratch register with calls suppressed inside the body --
        # mirroring what register allocators actually do, and keeping
        # generated programs terminating (the emulator runs them).
        saved_free = [r for r in self._saved if r not in self._reserved]
        if saved_free:
            counter = rng.choice(saved_free)
            suppress_calls = False
        else:
            counter = self._pick_dest()
            suppress_calls = True
        asm.mov_ri(counter, rng.randint(1, 64), width=32)
        self._initialized.add(counter)
        self._reserved.add(counter)
        if suppress_calls:
            self._no_calls += 1
        asm.bind(top)
        self._emit_body(budget=rng.randint(1, 3), depth=depth + 1)
        asm.dec(counter, width=32)
        asm.jcc("ne", top)      # near: body size is unbounded
        if suppress_calls:
            self._no_calls -= 1
        self._reserved.discard(counter)

    def _emit_call(self, callee: str | None = None) -> None:
        asm, rng = self.asm, self.rng
        if callee is None:
            callee = rng.choice(self.callees)
        for arg_reg in ARGUMENT_REGISTERS[:rng.randint(0, 3)]:
            asm.mov_ri(arg_reg, rng.randint(0, 4096), width=32)
            self._initialized.add(arg_reg)
        for _ in range(self.callee_stack_args.get(callee, 0)):
            asm.push_i(rng.randint(0, 2 ** 20))
        asm.call(callee)
        self._called.add(callee)
        self._initialized -= set(CALLER_SAVED)
        self._initialized.add(RAX)

    def _panic_candidates(self) -> list[str]:
        """Noreturn callees higher-ranked than this function.

        Keeps even guarded panic edges pointing rank-upward, preserving
        the call-graph DAG (a panic handler's own unconditional calls
        could otherwise recurse back through the guard).
        """
        own = self.name[2:]
        if not own.isdigit():
            return list(self.noreturn_callees)
        own_rank = int(own)
        return [p for p in self.noreturn_callees
                if p[2:].isdigit() and int(p[2:]) > own_rank]

    def _emit_noreturn_call(self, target: str) -> None:
        """A guarded panic path: ``jcc skip; call panic; [blob]; skip:``.

        The call's fall-through is never executed, so compilers place
        whatever they like there -- per style, an inline data blob.
        """
        asm, rng = self.asm, self.rng
        skip = self._label("nopanic")
        asm.alu_ri("cmp", self._pick_value(), rng.randint(0, 1000),
                   width=64)
        asm.jcc(rng.choice(_CONDITIONS), skip)
        asm.mov_ri(RDI, rng.randint(1, 255), width=32)
        asm.call(target)
        self._called.add(target)
        if rng.random() < self.style.data_after_noreturn_prob:
            blob = bytes(rng.getrandbits(8)
                         for _ in range(rng.randint(6, 24)))
            asm.db(blob)
        asm.bind(skip)

    def _emit_early_exit(self) -> None:
        asm, rng = self.asm, self.rng
        asm.alu_ri("cmp", self._pick_value(), rng.randint(0, 64),
                   width=64)
        if RAX not in self._initialized:
            asm.mov_ri(RAX, rng.randint(0, 100), width=32)
            self._initialized.add(RAX)
        asm.jcc(rng.choice(_CONDITIONS), self._epilogue_label)

    # ------------------------------------------------------------------
    # Switches and jump tables
    # ------------------------------------------------------------------

    def _emit_switch(self, depth: int) -> None:
        asm, rng = self.asm, self.rng
        case_count = rng.randint(3, 10)
        table_label = self._label("jt")
        default_label = self._label("default")
        end_label = self._label("endsw")
        # Sparse switches: some table slots dispatch to the default
        # block (compilers fill holes in the case range this way).
        distinct = [self._label(f"case{i}") for i in range(case_count)]
        case_labels = [
            label if rng.random() > 0.2 else default_label
            for label in distinct
        ]
        case_bodies = sorted(set(case_labels) - {default_label})

        index = self._pick_value()
        if index in (RSP, RBP):
            index = RAX
            asm.mov_ri(RAX, rng.randint(0, case_count - 1), width=32)
            self._initialized.add(RAX)
        asm.alu_ri("cmp", index, case_count - 1, width=64)
        asm.jcc("a", default_label)

        in_text = self.style.tables_in_text
        if self.style.table_entry_kind == "abs64":
            if in_text:
                asm.jmp_m(Mem(index=index, scale=8, disp_label=table_label))
                table_start = self._emit_inline_table_abs64(
                    table_label, case_labels)
            else:
                address = self.rodata.allocate_table(case_labels, 8)
                asm.jmp_m(mem(index=index, scale=8, disp=address))
        else:
            pool = [r for r in (R10, R11, R8, R9, RSI, RDX, RCX)
                    if r not in self._reserved and r != index]
            base_reg, scratch = pool[0], pool[1]
            if in_text:
                asm.lea(base_reg, rip(table_label))
            else:
                address = self.rodata.allocate_table(case_labels, 4)
                asm.mov_ri(base_reg, address, width=64)
            asm.movsxd_rm(scratch, mem(base=base_reg, index=index, scale=4))
            asm.alu_rr("add", scratch, base_reg, width=64)
            asm.jmp_r(scratch)
            self._initialized.update((base_reg, scratch))
            if in_text:
                self._emit_inline_table_rel32(table_label, case_labels)

        saved = set(self._initialized)
        for label in case_bodies:
            asm.bind(label)
            self._initialized = set(saved)
            self._emit_body(budget=rng.randint(1, 2), depth=depth + 1)
            asm.jmp(end_label)
        asm.bind(default_label)
        self._initialized = set(saved)
        self._emit_body(budget=1, depth=depth + 1)
        asm.bind(end_label)
        self._initialized = saved

    def _emit_inline_table_abs64(self, table_label: str,
                                 case_labels: list[str]) -> int:
        asm = self.asm
        asm.align(8, b"\xcc")
        start = asm.here
        asm.bind(table_label)
        for label in case_labels:
            asm.dq_label(label)
        self.result.jump_tables.append((start, asm.here))
        return start

    def _emit_inline_table_rel32(self, table_label: str,
                                 case_labels: list[str]) -> int:
        asm = self.asm
        asm.align(4, b"\xcc")
        start = asm.here
        asm.bind(table_label)
        for label in case_labels:
            asm.dd_label_rel(label, table_label)
        self.result.jump_tables.append((start, asm.here))
        return start

    # ------------------------------------------------------------------
    # End-of-function embedded blobs
    # ------------------------------------------------------------------

    def _emit_deferred(self) -> None:
        asm, rng = self.asm, self.rng
        for item in self._deferred:
            kind, label, payload = item
            asm.bind(label)
            asm.db(payload)
        self._deferred.clear()
        if rng.random() < self.style.literal_pool_prob:
            asm.align(8, b"\xcc")
            pool = b"".join(
                rng.getrandbits(64).to_bytes(8, "little")
                for _ in range(rng.randint(1, 6)))
            asm.db(pool)


class RodataAllocator:
    """Assigns addresses in a read-only data section emitted after text.

    Tables referenced from text by absolute address must have their
    addresses known at code-emission time, so the allocator hands out
    addresses immediately and the corpus fills contents in later.
    """

    def __init__(self, base: int) -> None:
        self.base = base
        self._cursor = base
        self.tables: list[RodataRequest] = []
        self.blobs: list[tuple[int, bytes]] = []

    def allocate_table(self, entry_labels: list[str],
                       entry_size: int) -> int:
        self._cursor = (self._cursor + 7) & ~7
        address = self._cursor
        self._cursor += entry_size * len(entry_labels)
        self.tables.append(RodataRequest(address, list(entry_labels),
                                         entry_size))
        return address

    def allocate_blob(self, payload: bytes) -> int:
        address = self._cursor
        self._cursor += len(payload)
        self.blobs.append((address, payload))
        return address

    @property
    def size(self) -> int:
        return self._cursor - self.base
