"""An assembler wrapper that records ground-truth byte labels.

Every :class:`~repro.isa.encoder.Assembler` method that emits bytes is
classified as emitting exactly one instruction, a data blob, or padding;
:class:`TrackedAssembler` intercepts the calls and keeps a mark list that
the generator later converts into a :class:`~repro.binary.GroundTruth`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..binary.groundtruth import GroundTruth
from ..isa.encoder import Assembler


class MarkKind(enum.Enum):
    INSN = "insn"
    DATA = "data"
    PADDING = "padding"


@dataclass(frozen=True)
class Mark:
    kind: MarkKind
    start: int
    end: int


_DATA_METHODS = frozenset({
    "db", "dd", "dq", "dq_label", "dd_label", "dd_label_rel",
})
_PADDING_METHODS = frozenset({"nop", "align", "align_code"})


class TrackedAssembler:
    """Proxies an :class:`Assembler`, recording what each byte is.

    Single-instruction methods produce one INSN mark covering exactly the
    emitted encoding, which is what ``GroundTruth.mark_instruction``
    needs.  ``nop``/``align`` runs are marked PADDING (several encoded
    nop instructions may share one mark; padding bytes are excluded from
    accuracy metrics, so per-instruction granularity is not needed
    there).
    """

    def __init__(self, base: int = 0) -> None:
        self._asm = Assembler(base)
        self.marks: list[Mark] = []

    # Explicit pass-throughs for the non-emitting API.

    @property
    def here(self) -> int:
        return self._asm.here

    @property
    def base(self) -> int:
        return self._asm.base

    def bind(self, label: str) -> int:
        return self._asm.bind(label)

    def has_label(self, label: str) -> bool:
        return label in self._asm._labels

    def label_offset(self, label: str) -> int:
        return self._asm._labels[label]

    def finish(self) -> bytes:
        return self._asm.finish()

    def __getattr__(self, name: str):
        method = getattr(self._asm, name)
        if not callable(method) or name.startswith("_"):
            return method
        if name in _DATA_METHODS:
            kind = MarkKind.DATA
        elif name in _PADDING_METHODS:
            kind = MarkKind.PADDING
        else:
            kind = MarkKind.INSN

        def wrapped(*args, **kwargs):
            start = self._asm.here
            result = method(*args, **kwargs)
            end = self._asm.here
            if end > start:
                self.marks.append(Mark(kind, start, end))
            return result

        return wrapped

    # ------------------------------------------------------------------

    def ground_truth(self) -> GroundTruth:
        """Convert the mark list into per-byte labels.

        Assumes ``base == 0`` (marks are buffer offsets).
        """
        truth = GroundTruth(size=self._asm.here - self._asm.base)
        for mark in self.marks:
            if mark.kind is MarkKind.INSN:
                truth.mark_instruction(mark.start, mark.end - mark.start)
            elif mark.kind is MarkKind.DATA:
                truth.mark_data(mark.start, mark.end)
            else:
                truth.mark_padding(mark.start, mark.end)
        return truth
