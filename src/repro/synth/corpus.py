"""Whole-binary generation: call graphs, layout, sections, ground truth.

:func:`generate_binary` is the main entry point; it produces a
:class:`~repro.binary.TestCase` (stripped binary + exact labels) from a
:class:`BinarySpec`.  :func:`generate_corpus` builds the default
evaluation dataset (all three compiler styles at several sizes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..binary.container import Binary, Section
from ..binary.loader import TestCase
from ..isa.encoder import Mem, mem
from ..isa.registers import RAX, RBP, RDI, RSP
from .codegen import FunctionGenerator, GeneratedFunction, RodataAllocator
from .styles import MSVC_LIKE, STYLES, CompilerStyle
from .tracking import TrackedAssembler

#: Where non-text data (out-of-text tables, strings) is placed.
RODATA_BASE = 0x200000


@dataclass(frozen=True)
class BinarySpec:
    """Parameters for one generated binary."""

    name: str
    style: CompilerStyle = MSVC_LIKE
    function_count: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if self.function_count < 2:
            raise ValueError("need at least an entry and one callee")


def _plan_call_graph(rng: random.Random, count: int,
                     indirect_ratio: float, noreturn_ratio: float
                     ) -> tuple[list[str], list[str], list[str],
                                dict[str, list[str]]]:
    """Split functions into direct/indirect/noreturn; build callee lists.

    Direct functions form a tree rooted at the entry (guaranteeing that
    recursive descent *could* reach all of them), with extra random
    cross edges.  Indirect functions are reachable only through pointer
    tables.  Noreturn functions are kept out of ordinary callee lists:
    they are only invoked through guarded panic paths.

    Every call edge goes strictly "rank-upward" (by position in the
    name list), so the call graph is a DAG and generated programs
    terminate -- a property the dynamic-validation emulator relies on,
    and one real linked programs share in the absence of recursion.
    """
    names = [f"fn{i:04d}" for i in range(count)]
    rank = {name: i for i, name in enumerate(names)}
    noreturn_count = min(int(count * noreturn_ratio), max(count - 3, 0))
    noreturn = sorted(rng.sample(names[1:], k=noreturn_count))
    remaining = [n for n in names if n not in noreturn]
    # Indirect functions come from the upper half of the rank range so
    # that their dispatchers (hosted in lower-ranked functions) keep the
    # graph acyclic.
    upper = [n for n in remaining[1:] if rank[n] >= count // 2]
    indirect_count = min(int(count * indirect_ratio),
                         max(len(upper) - 1, 0))
    indirect = set(rng.sample(upper, k=indirect_count))
    direct = [n for n in remaining if n not in indirect]

    callees: dict[str, list[str]] = {n: [] for n in names}
    for i, name in enumerate(direct):
        for child_index in (2 * i + 1, 2 * i + 2):
            if child_index < len(direct):
                callees[name].append(direct[child_index])
    for name in names:
        candidates = [d for d in direct[1:] if rank[d] > rank[name]]
        extras = rng.sample(candidates, k=min(len(candidates),
                                              rng.randint(0, 2)))
        for extra in extras:
            if extra not in callees[name]:
                callees[name].append(extra)
    return direct, sorted(indirect), noreturn, callees


def _emit_dispatcher(asm: TrackedAssembler, rng: random.Random,
                     style: CompilerStyle, name: str, targets: list[str],
                     rodata: RodataAllocator) -> GeneratedFunction:
    """A hand-rolled function that calls through a pointer table.

    This is the pattern that makes indirect-only functions reachable at
    runtime while remaining invisible to recursive descent.
    """
    result = GeneratedFunction(name=name, entry=asm.here)
    asm.bind(name)
    asm.push_r(RBP)
    asm.mov_rr(RBP, RSP)
    table_label = f"{name}.ptable"
    skip_label = f"{name}.skip"
    asm.alu_ri("cmp", RDI, len(targets) - 1, width=64)
    asm.jcc("a", skip_label)
    in_text = rng.random() < style.pointer_table_in_text_prob
    if in_text:
        asm.mov_rm(RAX, Mem(index=RDI, scale=8, disp_label=table_label))
    else:
        address = rodata.allocate_table(list(targets), 8)
        asm.mov_rm(RAX, mem(index=RDI, scale=8, disp=address))
    asm.call_r(RAX)
    asm.bind(skip_label)
    asm.pop_r(RBP)
    asm.ret()
    if in_text:
        asm.align(8, b"\xcc")
        start = asm.here
        asm.bind(table_label)
        for target in targets:
            asm.dq_label(target)
        result.jump_tables.append((start, asm.here))
    result.end = asm.here
    return result


def generate_binary(spec: BinarySpec) -> TestCase:
    """Generate one stripped binary with exact ground truth."""
    rng = random.Random(spec.seed)
    style = spec.style
    asm = TrackedAssembler(base=0)
    rodata = RodataAllocator(base=RODATA_BASE)

    direct, indirect, noreturn, callees = _plan_call_graph(
        rng, spec.function_count, style.indirect_reachable_ratio,
        style.noreturn_ratio)

    def _rank(name: str) -> int:
        return int(name[2:])

    # Each noreturn function gets a guaranteed guarded call site in some
    # lower-ranked direct function (keeping the call graph acyclic).
    must_call: dict[str, list[str]] = {}
    for target in noreturn:
        hosts = [d for d in direct if _rank(d) < _rank(target)]
        host = rng.choice(hosts) if hosts else direct[0]
        must_call.setdefault(host, []).append(target)

    # Callee-cleanup stack arguments for a fraction of direct functions
    # (never the entry; indirect targets are called through generic
    # dispatchers and must stay zero-argument).
    stack_args: dict[str, int] = {}
    for name in direct[1:]:
        if rng.random() < style.stack_args_ratio:
            stack_args[name] = rng.randint(1, 3)

    # Pointer tables over the indirect functions, each used by a
    # dispatcher that direct code calls.
    dispatchers: list[tuple[str, list[str]]] = []
    pending = list(indirect)
    rng.shuffle(pending)
    index = 0
    while pending:
        group_size = min(len(pending), rng.randint(2, 6))
        group, pending = pending[:group_size], pending[group_size:]
        dispatcher = f"dispatch{index:02d}"
        dispatchers.append((dispatcher, group))
        index += 1
    for dispatcher, group in dispatchers:
        group_floor = min(_rank(target) for target in group)
        hosts = [d for d in direct if _rank(d) < group_floor]
        user = rng.choice(hosts) if hosts else direct[0]
        callees[user].append(dispatcher)

    # Layout: entry first, then a shuffled mix of everything else.
    order: list[tuple[str, str]] = [("fn", direct[0])]
    rest = ([("fn", n) for n in direct[1:]]
            + [("fn", n) for n in indirect]
            + [("fn", n) for n in noreturn]
            + [("dispatch", d) for d, _ in dispatchers])
    rng.shuffle(rest)
    order += rest
    dispatch_targets = dict(dispatchers)
    noreturn_set = set(noreturn)

    generated: list[GeneratedFunction] = []
    for kind, name in order:
        if style.padding_byte is not None:
            asm.align(style.function_alignment,
                      bytes([style.padding_byte]))
        else:
            asm.align_code(style.function_alignment)
        if kind == "fn":
            generator = FunctionGenerator(
                asm, rng, style, name, callees[name], rodata,
                noreturn_callees=noreturn,
                must_call_noreturn=must_call.get(name, []),
                is_noreturn=name in noreturn_set,
                stack_args=stack_args.get(name, 0),
                callee_stack_args=stack_args)
            generated.append(generator.emit())
        else:
            generated.append(_emit_dispatcher(asm, rng, style, name,
                                              dispatch_targets[name],
                                              rodata))

    text = asm.finish()
    truth = asm.ground_truth()
    for function in generated:
        truth.add_function(function.name, function.entry, function.end)
        for start, end in function.jump_tables:
            truth.add_jump_table(start, end)

    rodata_bytes = _build_rodata(asm, rodata)
    sections = [Section(".text", 0, text, executable=True)]
    if rodata_bytes:
        sections.append(Section(".rodata", RODATA_BASE, rodata_bytes))
    binary = Binary(sections=sections, entry=0)
    return TestCase(name=spec.name, binary=binary, truth=truth)


def _build_rodata(asm: TrackedAssembler, rodata: RodataAllocator) -> bytes:
    """Materialize the out-of-text tables and blobs."""
    image = bytearray(rodata.size)

    def write(address: int, payload: bytes) -> None:
        start = address - rodata.base
        image[start:start + len(payload)] = payload

    for request in rodata.tables:
        out = bytearray()
        for label in request.entry_labels:
            target = asm.label_offset(label)
            if request.entry_size == 8:
                out += target.to_bytes(8, "little")
            else:
                delta = target - request.address
                out += (delta & 0xFFFFFFFF).to_bytes(4, "little")
        write(request.address, bytes(out))
    for address, payload in rodata.blobs:
        write(address, payload)
    return bytes(image)


# ----------------------------------------------------------------------
# Standard corpus
# ----------------------------------------------------------------------

def generate_corpus(seeds: tuple[int, ...] = (0, 1, 2),
                    function_count: int = 60) -> list[TestCase]:
    """The default evaluation dataset: every style at every seed."""
    cases = []
    for style_name in sorted(STYLES):
        for seed in seeds:
            spec = BinarySpec(name=f"{style_name}-s{seed}",
                              style=STYLES[style_name],
                              function_count=function_count, seed=seed)
            cases.append(generate_binary(spec))
    return cases


def export_corpus(directory, cases: list[TestCase] | None = None, *,
                  fmt: str = "rprb") -> list[tuple]:
    """Write a corpus to disk in the chosen container format.

    ``fmt="elf"`` writes each case as a real ELF64 executable (used by
    the formats smoke job and :mod:`benchmarks.bench_formats`);
    ``fmt="rprb"`` writes native ``.bin`` containers.  Returns the
    (binary path, ground-truth path) pair per case.
    """
    cases = cases if cases is not None else generate_corpus()
    return [case.save(directory, fmt=fmt) for case in cases]


def density_style(base: CompilerStyle, density: float) -> CompilerStyle:
    """Scale a style's embedded-data knobs by ``density`` in [0, 1].

    ``density=0`` produces a clean binary (no in-text data at all);
    ``density=1`` is an extreme profile used in the F1 sweep.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be within [0, 1]")
    return replace(
        base,
        name=f"{base.name}@d{density:.2f}",
        tables_in_text=density > 0,
        literal_pool_prob=density,
        string_in_text_prob=0.8 * density,
        pointer_table_in_text_prob=density,
        data_after_noreturn_prob=0.7 * density,
        max_switches_per_function=0 if density == 0
        else max(1, round(4 * density)),
    )
