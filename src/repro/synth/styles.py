"""Compiler styles: knobs that control what a generated binary looks like.

The paper's central observation is that different toolchains embed very
different amounts of data in executable sections: GCC on Linux keeps
jump tables in ``.rodata``, while MSVC (and several embedded toolchains)
interleaves jump tables, literal pools and padding directly in ``.text``.
Each :class:`CompilerStyle` bundles the layout decisions that matter for
the disassembly problem; the three presets are calibrated to mimic the
qualitative behavior of those toolchains, not their exact output.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompilerStyle:
    """Layout and code-generation knobs for the synthetic compiler.

    Attributes:
        name: short identifier used in reports.
        tables_in_text: embed switch jump tables in the text section
            (the defining "complex binary" trait).
        table_entry_kind: ``"abs64"`` for absolute 8-byte entries or
            ``"rel32"`` for PIC-style 4-byte self-relative entries.
        literal_pool_prob: probability that a function is followed by an
            embedded literal pool (constants it references).
        string_in_text_prob: probability that a referenced string is
            embedded in text rather than placed in ``.rodata``.
        pointer_table_in_text_prob: probability that an indirect-call
            dispatch table lives in text rather than ``.data``.
        function_alignment: function start alignment in bytes.
        padding_byte: inter-function filler (``0xCC`` int3 for MSVC-like,
            multi-byte nops for GCC/Clang-like when None).
        frame_pointer_prob: probability a function keeps a frame pointer.
        endbr_prob: probability a function starts with endbr64.
        short_branch_prob: probability of rel8 encodings for local jumps.
        tail_call_prob: probability an exit becomes a tail jump.
        indirect_reachable_ratio: fraction of functions reachable only
            through pointer tables (invisible to recursive descent).
        max_switches_per_function: upper bound on jump-table switches a
            single function may contain (density knob for sweeps).
        noreturn_ratio: fraction of functions that never return (panic
            handlers); they end in hlt/ud2 instead of ret.
        data_after_noreturn_prob: probability that a guarded call to a
            noreturn function is followed by an inline data blob (the
            classic "data after a call the compiler knows is noreturn"
            trap for disassemblers).
    """

    name: str
    tables_in_text: bool = True
    table_entry_kind: str = "abs64"
    literal_pool_prob: float = 0.3
    string_in_text_prob: float = 0.3
    pointer_table_in_text_prob: float = 0.5
    function_alignment: int = 16
    padding_byte: int | None = 0xCC
    frame_pointer_prob: float = 0.7
    endbr_prob: float = 0.0
    short_branch_prob: float = 0.6
    tail_call_prob: float = 0.1
    indirect_reachable_ratio: float = 0.1
    max_switches_per_function: int = 2
    noreturn_ratio: float = 0.05
    data_after_noreturn_prob: float = 0.0
    #: Fraction of direct functions using callee-cleanup stack arguments
    #: (``push`` at call sites, ``ret imm16`` in the callee).
    stack_args_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.table_entry_kind not in ("abs64", "rel32"):
            raise ValueError(f"bad table entry kind: {self.table_entry_kind}")
        if self.function_alignment & (self.function_alignment - 1):
            raise ValueError("function alignment must be a power of two")


#: GCC-on-Linux-like: jump tables and strings out of text, nop padding.
GCC_LIKE = CompilerStyle(
    name="gcc-like",
    tables_in_text=False,
    table_entry_kind="rel32",
    literal_pool_prob=0.0,
    string_in_text_prob=0.0,
    pointer_table_in_text_prob=0.0,
    padding_byte=None,            # multi-byte nop padding
    frame_pointer_prob=0.4,
    endbr_prob=0.9,
    indirect_reachable_ratio=0.08,
    data_after_noreturn_prob=0.0,
)

#: Clang-like: mostly clean text but PIC tables occasionally inline.
CLANG_LIKE = CompilerStyle(
    name="clang-like",
    tables_in_text=True,
    table_entry_kind="rel32",
    literal_pool_prob=0.15,
    string_in_text_prob=0.05,
    pointer_table_in_text_prob=0.2,
    padding_byte=None,
    frame_pointer_prob=0.5,
    endbr_prob=0.5,
    indirect_reachable_ratio=0.10,
    data_after_noreturn_prob=0.3,
)

#: MSVC-like: the "complex binary" profile -- absolute jump tables,
#: literal pools and pointer tables embedded in text, int3 padding.
MSVC_LIKE = CompilerStyle(
    name="msvc-like",
    tables_in_text=True,
    table_entry_kind="abs64",
    literal_pool_prob=0.5,
    string_in_text_prob=0.4,
    pointer_table_in_text_prob=0.8,
    padding_byte=0xCC,
    frame_pointer_prob=0.8,
    endbr_prob=0.0,
    short_branch_prob=0.5,
    indirect_reachable_ratio=0.12,
    data_after_noreturn_prob=0.6,
    stack_args_ratio=0.15,
)

STYLES: dict[str, CompilerStyle] = {
    s.name: s for s in (GCC_LIKE, CLANG_LIKE, MSVC_LIKE)
}


def style_by_name(name: str) -> CompilerStyle:
    try:
        return STYLES[name]
    except KeyError:
        raise KeyError(f"unknown compiler style {name!r}; "
                       f"known: {sorted(STYLES)}") from None
