"""Declarative SLO specs and the single CI gate: ``repro obs gate``.

An SLO spec is a TOML (``[[slo]]`` tables) or JSON file of objective
entries, each binding one store metric to a floor or ceiling::

    [[slo]]
    name = "fleet-corrected-f1"
    kind = "fleet-trend"
    metric = "corrected.instr_f1"
    min = 0.99
    window = 3          # evaluate the newest 3 recorded runs
    burn_budget = 0.34  # <= this fraction of the window may violate

Evaluation is *windowed burn-rate*: the engine pulls the newest
``window`` records of the entry's kind from the run-record store (one
per recorded run, across revisions), computes the fraction that
violate the floor/ceiling, and passes while that fraction stays within
``burn_budget``.  ``window = 1`` (the default) degenerates to "the
latest run must pass" -- a plain threshold gate -- while wider windows
tolerate one noisy CI run without letting a real regression burn
quietly.

Verdicts are ``ok`` / ``violated`` / ``no-data``; missing data fails
the gate unless the entry opts out with ``allow_missing = true``,
because a gate that silently passes when artifacts stop arriving is
not a gate.  ``repro obs gate`` renders the verdict table and exits
non-zero on any failure, which is what lets one invocation replace the
per-benchmark threshold comparisons that previously lived in separate
CI steps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .store import RunStore, StoreError

#: Schema tag of the gate verdict document.
VERDICT_SCHEMA = "repro-obs-verdict-v1"


class SpecError(StoreError):
    """An SLO spec entry is malformed."""


@dataclass(frozen=True)
class SloEntry:
    """One objective: a floor/ceiling on one metric of one kind."""

    name: str
    kind: str
    metric: str
    min: float | None = None
    max: float | None = None
    window: int = 1
    burn_budget: float = 0.0
    allow_missing: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.min is None and self.max is None:
            raise SpecError(f"slo {self.name!r}: needs a min or a max")
        if self.window < 1:
            raise SpecError(f"slo {self.name!r}: window must be >= 1")
        if not 0.0 <= self.burn_budget < 1.0:
            raise SpecError(f"slo {self.name!r}: burn_budget must be "
                            f"in [0, 1)")

    def violates(self, value: float) -> bool:
        if self.min is not None and value < self.min:
            return True
        return self.max is not None and value > self.max

    def bound(self) -> str:
        parts = []
        if self.min is not None:
            parts.append(f">= {self.min:g}")
        if self.max is not None:
            parts.append(f"<= {self.max:g}")
        return " and ".join(parts)


def load_slo_spec(path: str | Path) -> list[SloEntry]:
    """Parse a TOML or JSON SLO spec into entries (order preserved)."""
    path = Path(path)
    if path.suffix == ".toml":
        import tomllib
        try:
            raw = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as error:
            raise SpecError(f"{path}: {error}") from None
        entries = raw.get("slo", [])
    else:
        raw = json.loads(path.read_text())
        entries = raw.get("slo", raw) if isinstance(raw, dict) else raw
    if not entries:
        raise SpecError(f"{path}: spec defines no [[slo]] entries")
    spec = []
    names = set()
    for entry in entries:
        unknown = set(entry) - {"name", "kind", "metric", "min", "max",
                                "window", "burn_budget", "allow_missing",
                                "description"}
        if unknown:
            raise SpecError(f"{path}: slo {entry.get('name', '?')!r}: "
                            f"unknown field(s) {sorted(unknown)}")
        try:
            slo = SloEntry(
                name=entry["name"], kind=entry["kind"],
                metric=entry["metric"],
                min=entry.get("min"), max=entry.get("max"),
                window=int(entry.get("window", 1)),
                burn_budget=float(entry.get("burn_budget", 0.0)),
                allow_missing=bool(entry.get("allow_missing", False)),
                description=entry.get("description", ""))
        except KeyError as error:
            raise SpecError(f"{path}: slo entry missing required field "
                            f"{error.args[0]!r}") from None
        if slo.name in names:
            raise SpecError(f"{path}: duplicate slo name {slo.name!r}")
        names.add(slo.name)
        spec.append(slo)
    return spec


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def evaluate_entry(store: RunStore, slo: SloEntry) -> dict:
    """One verdict cell: pull the window, compute the burn fraction."""
    window = store.window(slo.kind, slo.window)
    samples = [(record.git_rev, record.run_id,
                record.metrics.get(slo.metric))
               for record in window]
    observed = [(rev, run, value) for rev, run, value in samples
                if value is not None]
    cell = {
        "name": slo.name,
        "kind": slo.kind,
        "metric": slo.metric,
        "bound": slo.bound(),
        "window": slo.window,
        "burn_budget": slo.burn_budget,
        "observed": len(observed),
    }
    if not observed:
        cell["verdict"] = "ok" if slo.allow_missing else "no-data"
        return cell
    violations = [(rev, run, value) for rev, run, value in observed
                  if slo.violates(value)]
    burn = len(violations) / len(observed)
    cell["latest"] = observed[-1][2]
    cell["burn"] = round(burn, 6)
    cell["verdict"] = "ok" if burn <= slo.burn_budget else "violated"
    if violations:
        cell["violations"] = [
            {"git_rev": rev, "run_id": run, "value": value}
            for rev, run, value in violations]
    return cell


def evaluate(store: RunStore, spec: list[SloEntry]) -> dict:
    """Every entry's verdict plus the overall gate decision."""
    cells = [evaluate_entry(store, slo) for slo in spec]
    failing = [cell for cell in cells
               if cell["verdict"] in ("violated", "no-data")]
    return {
        "schema": VERDICT_SCHEMA,
        "slos": cells,
        "passed": not failing,
        "failing": [cell["name"] for cell in failing],
    }


def render_verdicts(verdict: dict) -> str:
    """The human-readable gate table."""
    lines = []
    width = max((len(cell["name"]) for cell in verdict["slos"]),
                default=4)
    for cell in verdict["slos"]:
        mark = {"ok": "ok", "violated": "VIOLATED",
                "no-data": "NO DATA"}[cell["verdict"]]
        latest = (f"latest {cell['latest']:g}" if "latest" in cell
                  else "no samples")
        burn = (f", burn {cell['burn']:.0%}/{cell['burn_budget']:.0%}"
                if cell.get("burn") else "")
        lines.append(f"{cell['name']:<{width}}  "
                     f"{cell['kind']}:{cell['metric']} "
                     f"{cell['bound']}  [{latest}{burn}]  {mark}")
    status = "PASS" if verdict["passed"] else "FAIL"
    lines.append(f"gate: {status} "
                 f"({len(verdict['slos']) - len(verdict['failing'])}"
                 f"/{len(verdict['slos'])} objectives ok)")
    return "\n".join(lines)
