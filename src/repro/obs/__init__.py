"""Unified observability: tracing, metrics, and decision provenance.

One coherent telemetry story for the whole stack, replacing the
previous per-layer ad-hoc instrumentation:

* :mod:`repro.obs.trace` -- hierarchical spans (trace-id / span-id /
  parent-id) threaded through the disassembler phases, correction
  passes, lint rules, the parallel-evaluation workers, and the serving
  request lifecycle; exported as JSONL (``repro-trace-v1``).
  Activated by ``--trace`` or the ``REPRO_TRACE`` environment
  variable; spans survive the process-pool boundary and re-parent
  under the coordinator's trace.
* :mod:`repro.obs.metrics` -- a central registry of counters, gauges
  and histograms with Prometheus text exposition, fed by the core
  pipeline (cache hits, traces attempted/refuted, bytes reclassified,
  decode errors) and the serving layer (queue depth, request
  latency).
* :mod:`repro.obs.provenance` -- an opt-in per-byte decision audit
  trail recorded during prioritized correction: for every
  classification flip, which pass, which evidence, which prior state.
  Surfaced as ``repro explain BINARY ADDR`` and consumed by the
  linter to enrich diagnostics with the causal chain.
* :mod:`repro.obs.profile` -- a low-overhead sampling profiler with
  phase self-time attribution and collapsed-stack (flamegraph) export
  (``repro-profile-v1``); activated by ``--sample-profile`` or the
  ``REPRO_PROFILE`` environment variable.
* :mod:`repro.obs.store` / :mod:`repro.obs.ingest` -- the append-only
  run-record store (sqlite, JSONL-interchangeable) that gives every
  measurement artifact -- fleet trends, benchmark envelopes, metrics
  snapshots, access-log summaries, trace rollups, profiles -- a
  longitudinal home keyed by ``(git_rev, run_id, kind)``.
* :mod:`repro.obs.report` / :mod:`repro.obs.slo` -- cross-revision
  regression trending (``repro obs diff`` / ``obs report``) and the
  declarative SLO gate (``repro obs gate``) that replaces per-benchmark
  threshold comparisons in CI.

Everything is stdlib-only and strictly observational: with tracing,
profiling and provenance disabled (the default), published tables,
serve responses and benchmark output are byte-identical to an
uninstrumented run.
"""

from .metrics import REGISTRY, MetricsRegistry
from .profile import (PROFILE_ENV, SamplingProfiler, profiling,
                      profiler_active, samples_taken)
from .provenance import DecisionEvent, ProvenanceLog
from .store import RunRecord, RunStore, StoreError
from .trace import (TRACE_ENV, Span, SpanContext, Tracer, activate,
                    current_tracer, phase_span, set_tracer,
                    tracing_active)

__all__ = [
    "DecisionEvent",
    "MetricsRegistry",
    "PROFILE_ENV",
    "ProvenanceLog",
    "REGISTRY",
    "RunRecord",
    "RunStore",
    "SamplingProfiler",
    "Span",
    "SpanContext",
    "StoreError",
    "TRACE_ENV",
    "Tracer",
    "activate",
    "current_tracer",
    "phase_span",
    "profiler_active",
    "profiling",
    "samples_taken",
    "set_tracer",
    "tracing_active",
]
