"""Hierarchical spans with JSONL export (schema ``repro-trace-v1``).

A :class:`Tracer` collects :class:`Span` records: named, timed
operations forming a tree through ``parent_id`` links under one
``trace_id``.  The process-wide tracer (installed with
:func:`set_tracer` / :func:`activate`) is what the pipeline's
instrumentation points consult via :func:`current_tracer`; when none
is installed every hook is a no-op, so the disabled cost is one global
read per phase.

Two usage shapes:

* **Synchronous code** (disassembler phases, correction passes, lint
  rules, eval workers) uses the :meth:`Tracer.span` context manager,
  which maintains a thread-local parent stack.
* **Interleaved async code** (the serving layer) must not rely on a
  shared stack; it uses :meth:`Tracer.start` / :meth:`Tracer.finish`
  or :meth:`Tracer.emit` with explicit parents.

Spans cross the process-pool boundary explicitly: the coordinator
ships a :class:`SpanContext` (trace-id + parent span-id) to the
worker, the worker records into its own :class:`Tracer` seeded from
that context, returns ``[span.to_dict() ...]`` with its results, and
the coordinator re-parents them with :meth:`Tracer.adopt`.  A tracer
inherited through ``fork`` is ignored by :func:`current_tracer` (the
pid no longer matches), so workers never record into a buffer that
nobody will export.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from . import profile as _profile

#: Environment variable holding the trace-output path; setting it
#: activates tracing in the CLI and the serving layer.
TRACE_ENV = "REPRO_TRACE"

#: Schema tag stamped on every exported span line.
SPAN_SCHEMA = "repro-trace-v1"


def _new_id(bits: int = 64) -> str:
    return uuid.uuid4().hex[: bits // 4]


@dataclass(frozen=True)
class SpanContext:
    """The picklable address of a span: where children re-parent to."""

    trace_id: str
    span_id: str

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, raw: dict | None) -> SpanContext | None:
        if not raw:
            return None
        return cls(trace_id=raw["trace_id"], span_id=raw["span_id"])


@dataclass
class Span:
    """One named, timed operation in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float                 # epoch seconds
    duration: float = 0.0        # seconds
    attrs: dict = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        return {
            "schema": SPAN_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": int(self.start * 1e6),
            "dur_us": int(self.duration * 1e6),
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> Span:
        return cls(trace_id=raw["trace_id"], span_id=raw["span_id"],
                   parent_id=raw.get("parent_id"), name=raw["name"],
                   start=raw["start_us"] / 1e6,
                   duration=raw["dur_us"] / 1e6,
                   attrs=dict(raw.get("attrs", {})),
                   pid=raw.get("pid", 0))


class Tracer:
    """Collects spans for one trace; exports them as JSONL."""

    def __init__(self, trace_id: str | None = None,
                 parent: SpanContext | None = None) -> None:
        if parent is not None and trace_id is None:
            trace_id = parent.trace_id
        self.trace_id = trace_id if trace_id is not None else _new_id(128)
        #: Default parent for spans opened with an empty stack (set for
        #: worker-side tracers seeded from a coordinator context).
        self.root_parent = parent.span_id if parent is not None else None
        self.finished: list[Span] = []
        self._local = threading.local()
        self._pid = os.getpid()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> SpanContext:
        """The context children (possibly in other processes) attach to."""
        current = self.current_span()
        if current is not None:
            return current.context()
        return SpanContext(self.trace_id,
                           self.root_parent if self.root_parent else "")

    def start(self, name: str, parent: str | None = None,
              **attrs) -> Span:
        """Open a span with an explicit parent (async-safe: no stack)."""
        global _SPANS_STARTED
        _SPANS_STARTED += 1
        if parent is None:
            current = self.current_span()
            parent = (current.span_id if current is not None
                      else self.root_parent)
        span = Span(trace_id=self.trace_id, span_id=_new_id(),
                    parent_id=parent or None, name=name,
                    start=time.time(), attrs=dict(attrs))
        span.attrs["_t0"] = time.perf_counter()
        return span

    def finish(self, span: Span, **attrs) -> Span:
        """Close a span opened with :meth:`start`."""
        t0 = span.attrs.pop("_t0", None)
        span.duration = (time.perf_counter() - t0 if t0 is not None
                         else max(0.0, time.time() - span.start))
        span.attrs.update(attrs)
        with self._lock:
            self.finished.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: str | None = None, **attrs):
        """Record a span around a ``with`` block (sync code only).

        The thread-local stack supplies the parent, so nested blocks
        form the tree automatically.
        """
        span = self.start(name, parent=parent, **attrs)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self.finish(span)

    def emit(self, name: str, duration: float,
             parent: str | None = None, start: float | None = None,
             **attrs) -> Span:
        """Record an externally measured span (e.g. queue-wait time)."""
        span = Span(trace_id=self.trace_id, span_id=_new_id(),
                    parent_id=parent or None, name=name,
                    start=start if start is not None
                    else time.time() - duration,
                    duration=max(0.0, duration), attrs=dict(attrs))
        with self._lock:
            self.finished.append(span)
        return span

    # ------------------------------------------------------------------
    # Cross-process adoption
    # ------------------------------------------------------------------

    def adopt(self, span_dicts, parent: str | None = None) -> int:
        """Re-parent foreign spans (worker-side dumps) into this trace.

        Spans already addressed to this trace (the worker was seeded
        with a :class:`SpanContext`) are taken verbatim; spans from a
        different trace are rewritten onto this one, their roots
        attached under ``parent`` (or the current span).
        """
        if parent is None:
            current = self.current_span()
            parent = current.span_id if current is not None else None
        adopted = 0
        for raw in span_dicts:
            span = Span.from_dict(raw) if isinstance(raw, dict) else raw
            if span.trace_id != self.trace_id:
                span.trace_id = self.trace_id
                if span.parent_id is None:
                    span.parent_id = parent
            with self._lock:
                self.finished.append(span)
            adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def drain(self) -> list[Span]:
        """Remove and return every finished span (for streaming sinks)."""
        with self._lock:
            spans, self.finished = self.finished, []
        return spans

    def export_jsonl(self, path: str | Path, *,
                     append: bool = False) -> Path:
        """Write (or append) every finished span as one-JSON-per-line."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.finished)
        with open(path, "a" if append else "w", encoding="utf-8") as sink:
            for span in spans:
                sink.write(json.dumps(span.to_dict(), sort_keys=True)
                           + "\n")
        return path

    def flush_jsonl(self, path: str | Path) -> int:
        """Append and clear finished spans (long-running processes)."""
        spans = self.drain()
        if not spans:
            return 0
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as sink:
            for span in spans:
                sink.write(json.dumps(span.to_dict(), sort_keys=True)
                           + "\n")
        return len(spans)


# ----------------------------------------------------------------------
# The process-wide tracer
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None

#: Process-wide count of spans ever opened.  The overhead benchmark
#: (``benchmarks/bench_obs.py``) asserts this stays flat across a
#: tracing-off run: the disabled path must do no observability work.
_SPANS_STARTED = 0


def spans_started() -> int:
    return _SPANS_STARTED


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install the process-wide tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off.

    A tracer created in a parent process and inherited through
    ``fork`` is treated as absent: its buffer belongs to the parent,
    and worker spans travel back explicitly via :meth:`Tracer.adopt`.
    """
    tracer = _TRACER
    if tracer is not None and tracer._pid != os.getpid():
        return None
    return tracer


def tracing_active() -> bool:
    return current_tracer() is not None


def trace_path_from_env() -> str | None:
    """The ``REPRO_TRACE`` output path, or None when unset/empty."""
    return os.environ.get(TRACE_ENV) or None


@contextmanager
def activate(path: str | Path | None = None,
             tracer: Tracer | None = None):
    """Install a tracer for the block; export to ``path`` on exit."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if path is not None:
            tracer.export_jsonl(path)


# ----------------------------------------------------------------------
# The PhaseTimings bridge
# ----------------------------------------------------------------------

@contextmanager
def phase_span(name: str, timings=None, *, tracer: Tracer | None = None,
               **attrs):
    """Time a pipeline phase as both a span and a PhaseTimings bucket.

    The single measurement point for phase durations: when tracing is
    active the phase duration *is* the span duration (PhaseTimings
    becomes a view over spans, so ``--profile`` and ``--trace`` can
    never disagree); when tracing is off this degrades to exactly
    :meth:`repro.perf.PhaseTimings.phase`.  ``timings`` is duck-typed
    (anything with ``add(name, seconds)``) so this module needs no
    import of :mod:`repro.perf`.

    This is also where the sampling profiler learns which phase is
    active (:func:`repro.obs.profile.enter_phase`); with no profiler
    installed that hook is a single module-global read.
    """
    tagged = _profile.enter_phase(name)
    try:
        tracer = tracer if tracer is not None else current_tracer()
        if tracer is None:
            started = time.perf_counter()
            try:
                yield None
            finally:
                if timings is not None:
                    timings.add(name, time.perf_counter() - started)
            return
        span = None
        try:
            with tracer.span(name, **attrs) as span:
                yield span
        finally:
            if timings is not None and span is not None:
                timings.add(name, span.duration)
    finally:
        if tagged:
            _profile.exit_phase()
