"""Per-byte decision provenance: why did this byte end up code or data?

The prioritized correction engine is where classification flips
happen; with a :class:`ProvenanceLog` attached (opt-in via
``DisassemblerConfig.record_provenance`` or an explicit argument) it
records one :class:`DecisionEvent` per decision: accepted and refuted
traces, accepted and rejected data evidence, gap-candidate vetoes,
residue realignment and its guard rejections -- each tagged with the
correction pass, the evidence source, the scores involved, and the
prior state it overrode.

Surfaced two ways:

* ``repro explain BINARY ADDR`` prints the causal chain for one byte
  ("0x259: data; refuted soft trace in pass gaps-1: derailed at
  +0x11, gap-score 0.18").
* The linter attaches the chain to diagnostics whose byte range it
  covers, so a ``dangling-fallthrough`` report names the decision
  that produced the bad region instead of just its symptom.

Recording is off by default because the audit trail is proportional
to decision count, not byte count, but gap-candidate vetoes can be
dense in data-heavy binaries; the overhead budget is measured in
``benchmarks/bench_obs.py`` (see DESIGN.md, "Why provenance is
opt-in").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DecisionEvent:
    """One recorded decision over [start, end) of the text section.

    Attributes:
        seq: monotonically increasing sequence number (chain order).
        pass_id: correction pass that made the decision (``tables``,
            ``correction``, ``gaps-N``, ``gaps-final``, ``realign``,
            ``lint-feedback``).
        action: what happened (``accept-trace``, ``refute-trace``,
            ``mark-data``, ``reject-data``, ``reject-candidate``,
            ``gap-data``, ``realign``, ``skip-realign``).
        start / end: byte range the decision covered or touched.
        source: the evidence source string (``gap-score``,
            ``entry-point``, ``table-target``, ...).
        priority: evidence strength class name (``SOFT`` ... ``ANCHOR``).
        detail: human-readable explanation with concrete offsets.
        attrs: machine-readable specifics (scores, depths, counts).
    """

    seq: int
    pass_id: str
    action: str
    start: int
    end: int
    source: str = ""
    priority: str = ""
    detail: str = ""
    attrs: dict = field(default_factory=dict, compare=False)

    def covers(self, offset: int) -> bool:
        return self.start <= offset < self.end

    def render(self) -> str:
        head = f"[{self.pass_id}] {self.action}"
        span = (f"{self.start:#x}" if self.end - self.start <= 1
                else f"{self.start:#x}-{self.end:#x}")
        parts = [head, span]
        if self.priority:
            parts.append(self.priority)
        if self.source:
            parts.append(f"({self.source})")
        line = " ".join(parts)
        return f"{line}: {self.detail}" if self.detail else line

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "pass": self.pass_id,
            "action": self.action,
            "start": self.start,
            "end": self.end,
            "source": self.source,
            "priority": self.priority,
            "detail": self.detail,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> DecisionEvent:
        return cls(seq=raw["seq"], pass_id=raw["pass"],
                   action=raw["action"], start=raw["start"],
                   end=raw["end"], source=raw.get("source", ""),
                   priority=raw.get("priority", ""),
                   detail=raw.get("detail", ""),
                   attrs=dict(raw.get("attrs", {})))


class ProvenanceLog:
    """The ordered audit trail of one disassembly run."""

    SCHEMA = "repro-provenance-v1"

    def __init__(self) -> None:
        self.events: list[DecisionEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def record(self, action: str, start: int, end: int, *,
               pass_id: str, source: str = "", priority: str = "",
               detail: str = "", **attrs) -> DecisionEvent:
        event = DecisionEvent(seq=len(self.events), pass_id=pass_id,
                              action=action, start=start, end=end,
                              source=source, priority=priority,
                              detail=detail, attrs=attrs)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events_at(self, offset: int) -> list[DecisionEvent]:
        """Every event whose range covers ``offset``, in chain order."""
        return [event for event in self.events if event.covers(offset)]

    def events_overlapping(self, start: int,
                           end: int) -> list[DecisionEvent]:
        return [event for event in self.events
                if event.start < end and start < event.end]

    def explain(self, offset: int, *, limit: int | None = None) -> str:
        """The causal chain for one byte, one event per line."""
        events = self.events_at(offset)
        if limit is not None and len(events) > limit:
            skipped = len(events) - limit
            events = events[-limit:]
            lines = [f"... {skipped} earlier event(s) elided"]
        else:
            lines = []
        lines.extend(event.render() for event in events)
        if not lines:
            return f"no recorded decisions cover {offset:#x}"
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps({
            "schema": self.SCHEMA,
            "events": [event.to_dict() for event in self.events],
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ProvenanceLog:
        raw = json.loads(text)
        log = cls()
        log.events = [DecisionEvent.from_dict(item)
                      for item in raw["events"]]
        return log
