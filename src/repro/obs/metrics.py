"""A central metrics registry with Prometheus text exposition.

Counters, gauges and histograms, labeled, stdlib-only.  The pipeline
increments process-global metrics through :data:`REGISTRY` (cache
hits, traces attempted/refuted, bytes reclassified per correction
pass, decode errors); the serving layer keeps a per-server
:class:`MetricsRegistry` so concurrent test servers never share
state.  Exposition formats:

* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  format (``text/plain; version=0.0.4``), served on
  ``GET /metrics?format=prometheus`` and dumped by ``repro metrics``.
* :meth:`MetricsRegistry.snapshot` -- a plain dict for JSON embedding.

Increments are dict updates under the GIL -- cheap enough for the
instrumentation points we use (per trace / per pass / per request,
never per byte).
"""

from __future__ import annotations

import threading

#: Default histogram buckets (seconds), chosen for request latencies
#: from sub-millisecond cache hits to multi-second cold disassemblies.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0)

_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    rendered = ",".join(f'{name}="{value.translate(_LABEL_ESCAPES)}"'
                        for name, value in pairs)
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    # Prometheus text format spells the specials exactly this way;
    # Python's repr ('nan', '-inf') would not parse at scrape time.
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing value, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def samples(self):
        for key in sorted(self._values):
            yield self.name, key, self._values[key]

    def snapshot_values(self) -> dict:
        return {_format_labels(key) or "": value
                for key, value in sorted(self._values.items())}


class Gauge(Counter):
    """A value that can go up and down (queue depth, liveness)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def samples(self):
        for key in sorted(self._counts):
            for bound, count in zip(self.buckets, self._counts[key]):
                yield (f"{self.name}_bucket", key,
                       count, (("le", _format_value(bound)),))
            yield (f"{self.name}_bucket", key, self._totals[key],
                   (("le", "+Inf"),))
            yield f"{self.name}_sum", key, self._sums[key], ()
            yield f"{self.name}_count", key, self._totals[key], ()

    def snapshot_values(self) -> dict:
        return {_format_labels(key) or "": {
                    "count": self._totals[key],
                    "sum": round(self._sums[key], 6),
                }
                for key in sorted(self._counts)}


class MetricsRegistry:
    """Named metrics with get-or-create registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda m: m.name))

    def reset(self) -> None:
        """Drop every metric (tests only)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, trailing newline."""
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample in metric.samples():
                if len(sample) == 3:
                    name, key, value = sample
                    extra: tuple = ()
                else:
                    name, key, value, extra = sample
                lines.append(f"{name}{_format_labels(key, extra)} "
                             f"{_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """Nested plain-dict view for JSON dumps and tests."""
        return {metric.name: {"kind": metric.kind, "help": metric.help,
                              "values": metric.snapshot_values()}
                for metric in self}


#: The process-global registry the core pipeline records into.
REGISTRY = MetricsRegistry()
