"""``repro obs``: record / query / import / export / diff / report /
gate / flame.

The CLI surface of the longitudinal observability subsystem.  Artifacts
flow in through ``record`` (content-detected, see
:mod:`repro.obs.ingest`), live in an append-only sqlite store
(:mod:`repro.obs.store`), and flow out as cross-revision regression
reports (``diff`` / ``report``, :mod:`repro.obs.report`), SLO gate
verdicts (``gate``, :mod:`repro.obs.slo`), and collapsed flamegraph
stacks (``flame``, :mod:`repro.obs.profile`).

Revisions are plain strings; anything not literally present in the
store is resolved through ``git rev-parse`` and prefix matching, so
``repro obs diff HEAD~1 HEAD`` works as expected after CI records
under full commit hashes.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .ingest import IngestError, ingest_file
from .report import (DEFAULT_NOISE, diff_revisions, load_noise_spec,
                     regressions, render_markdown, report_revision)
from .slo import evaluate, load_slo_spec, render_verdicts
from .store import RunStore, StoreError


def _git(*args: str) -> str | None:
    try:
        done = subprocess.run(["git", *args], capture_output=True,
                              text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return done.stdout.strip() if done.returncode == 0 else None


def _resolve_rev(store: RunStore, raw: str) -> str:
    """Map a user-supplied revision onto a recorded one."""
    known = store.revisions()
    if raw in known:
        return raw
    candidates = {rev for rev in known
                  if rev.startswith(raw) or raw.startswith(rev)}
    resolved = _git("rev-parse", raw)
    if resolved:
        candidates |= {rev for rev in known
                       if rev.startswith(resolved)
                       or resolved.startswith(rev)}
    if len(candidates) == 1:
        return candidates.pop()
    if candidates:
        raise StoreError(f"revision {raw!r} is ambiguous in the store: "
                         f"{', '.join(sorted(candidates))}")
    raise StoreError(f"revision {raw!r} has no records "
                     f"(known: {', '.join(known) or 'none'})")


def _default_rev() -> str | None:
    return _git("rev-parse", "HEAD")


def _default_timestamp(rev: str) -> str | None:
    """The commit timestamp of ``rev`` -- external and deterministic."""
    return _git("show", "-s", "--format=%cI", rev)


def _open_store(args: argparse.Namespace) -> RunStore:
    return RunStore(args.store)


def _noise(args: argparse.Namespace):
    if getattr(args, "noise", None):
        return load_noise_spec(args.noise)
    return DEFAULT_NOISE


def cmd_record(args: argparse.Namespace) -> int:
    rev = args.rev or _default_rev()
    if not rev:
        print("obs record: --rev is required outside a git checkout",
              file=sys.stderr)
        return 2
    timestamp = args.timestamp or _default_timestamp(rev)
    if not timestamp:
        print(f"obs record: --timestamp is required ({rev!r} has no "
              f"commit timestamp)", file=sys.stderr)
        return 2
    with _open_store(args) as store:
        for path in args.artifacts:
            try:
                record = ingest_file(path, git_rev=rev,
                                     run_id=args.run_id,
                                     timestamp=timestamp,
                                     kind=args.kind)
                fresh = store.add(record)
            except (OSError, IngestError, StoreError) as error:
                print(f"obs record: {error}", file=sys.stderr)
                return 2
            state = "recorded" if fresh else "already recorded"
            print(f"{state} {record.kind} ({len(record.metrics)} "
                  f"metrics) for {rev} run {args.run_id}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        try:
            rev = _resolve_rev(store, args.rev) if args.rev else None
        except StoreError as error:
            print(f"obs query: {error}", file=sys.stderr)
            return 2
        records = store.query(git_rev=rev, kind=args.kind,
                              run_id=args.run_id)
        if args.format == "jsonl":
            for record in records:
                print(record.to_json_line())
        elif args.format == "json":
            print(json.dumps([record.to_dict() for record in records],
                             indent=2, sort_keys=True))
        else:
            if not records:
                print("no matching records")
            for record in records:
                print(f"{record.timestamp}  {record.git_rev:<12} "
                      f"{record.run_id:<10} {record.kind:<18} "
                      f"{len(record.metrics)} metrics")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        count = store.export_jsonl(args.output)
    print(f"exported {count} record(s) to {args.output}")
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        try:
            added = store.import_jsonl(args.input)
        except (OSError, StoreError) as error:
            print(f"obs import: {error}", file=sys.stderr)
            return 2
        total = len(store)
    print(f"imported {added} new record(s) from {args.input} "
          f"({total} total)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        try:
            base = _resolve_rev(store, args.base)
            current = _resolve_rev(store, args.current)
            diff = diff_revisions(store, base, current,
                                  noise=_noise(args),
                                  kinds=args.kind or None)
        except StoreError as error:
            print(f"obs diff: {error}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    elif args.format == "markdown":
        sys.stdout.write(render_markdown(
            diff, include_unchanged=args.all))
    else:
        summary = diff["summary"]
        print(f"obs diff {base} -> {current}: "
              f"{summary['regressed']} regressed, "
              f"{summary['improved']} improved, "
              f"{summary['unchanged']} within noise")
    problems = regressions(diff)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_report(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        revisions = store.revisions()
        if not revisions:
            print("obs report: the store holds no records",
                  file=sys.stderr)
            return 2
        try:
            rev = (_resolve_rev(store, args.rev) if args.rev
                   else revisions[-1])
            baseline = (_resolve_rev(store, args.baseline)
                        if args.baseline else None)
            diff = report_revision(store, rev, baseline=baseline,
                                   noise=_noise(args))
        except StoreError as error:
            print(f"obs report: {error}", file=sys.stderr)
            return 2
    rendered = (json.dumps(diff, indent=2, sort_keys=True) + "\n"
                if args.format == "json"
                else render_markdown(diff, include_unchanged=args.all))
    if args.output:
        Path(args.output).write_text(rendered)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(rendered)
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    try:
        spec = load_slo_spec(args.spec)
    except (OSError, StoreError, json.JSONDecodeError) as error:
        print(f"obs gate: {args.spec}: {error}", file=sys.stderr)
        return 2
    with _open_store(args) as store:
        verdict = evaluate(store, spec)
    if args.format == "json":
        print(json.dumps(verdict, indent=2, sort_keys=True))
    else:
        print(render_verdicts(verdict))
    return 0 if verdict["passed"] else 1


def cmd_flame(args: argparse.Namespace) -> int:
    from .profile import PROFILE_SCHEMA, collapsed_from_doc
    if args.profile:
        try:
            doc = json.loads(Path(args.profile).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"obs flame: {args.profile}: {error}", file=sys.stderr)
            return 2
        if doc.get("schema") != PROFILE_SCHEMA:
            print(f"obs flame: {args.profile}: not a {PROFILE_SCHEMA} "
                  f"document", file=sys.stderr)
            return 2
        stacks = collapsed_from_doc(doc)
    else:
        with _open_store(args) as store:
            try:
                rev = (_resolve_rev(store, args.rev) if args.rev
                       else None)
            except StoreError as error:
                print(f"obs flame: {error}", file=sys.stderr)
                return 2
            record = store.latest("profile", rev)
        if record is None:
            print("obs flame: no profile records in the store",
                  file=sys.stderr)
            return 2
        stacks = [f"{stack} {count}" for stack, count
                  in sorted(record.meta.get("stacks", {}).items())]
    for line in stacks:
        print(line)
    return 0


def _add_store_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default="obs-store.sqlite",
                        metavar="PATH",
                        help="run-record store database "
                             "(default: obs-store.sqlite)")


def add_obs_parser(sub) -> None:
    """Attach the ``obs`` subcommand tree to the root CLI."""
    obs = sub.add_parser(
        "obs", help="longitudinal run-record store, regression "
                    "trending, and SLO gates")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    record = obs_sub.add_parser(
        "record", help="ingest measurement artifacts into the store")
    _add_store_flag(record)
    record.add_argument("artifacts", nargs="+", metavar="FILE",
                        help="trend / bench / metrics-snapshot / "
                             "access-log / trace / profile artifacts")
    record.add_argument("--rev", default=None,
                        help="git revision the artifacts measure "
                             "(default: git rev-parse HEAD)")
    record.add_argument("--run-id", default="r0",
                        help="distinguishes repeated runs of one "
                             "revision (default: r0)")
    record.add_argument("--timestamp", default=None,
                        help="record timestamp, externally supplied "
                             "(default: the commit timestamp of --rev)")
    record.add_argument("--kind", default=None,
                        help="override artifact-kind detection")
    record.set_defaults(func=cmd_record)

    query = obs_sub.add_parser("query", help="list recorded runs")
    _add_store_flag(query)
    query.add_argument("--rev", default=None)
    query.add_argument("--run-id", default=None)
    query.add_argument("--kind", default=None)
    query.add_argument("--format", choices=("text", "json", "jsonl"),
                       default="text")
    query.set_defaults(func=cmd_query)

    export = obs_sub.add_parser(
        "export", help="dump the store as diffable JSONL")
    _add_store_flag(export)
    export.add_argument("output", help="JSONL path to write")
    export.set_defaults(func=cmd_export)

    import_ = obs_sub.add_parser(
        "import", help="append records from a JSONL export")
    _add_store_flag(import_)
    import_.add_argument("input", help="JSONL export to read")
    import_.set_defaults(func=cmd_import)

    diff = obs_sub.add_parser(
        "diff", help="compare two recorded revisions metric-by-metric")
    _add_store_flag(diff)
    diff.add_argument("base", help="baseline revision")
    diff.add_argument("current", help="revision under test")
    diff.add_argument("--kind", action="append", default=None,
                      help="restrict to an artifact kind (repeatable)")
    diff.add_argument("--noise", metavar="SPEC", default=None,
                      help="noise-band spec (TOML/JSON) overriding the "
                           "built-in tolerances")
    diff.add_argument("--format",
                      choices=("text", "markdown", "json"),
                      default="text")
    diff.add_argument("--all", action="store_true",
                      help="include within-noise metrics in the output")
    diff.set_defaults(func=cmd_diff)

    report = obs_sub.add_parser(
        "report", help="regression report for one revision vs its "
                       "predecessor")
    _add_store_flag(report)
    report.add_argument("--rev", default=None,
                        help="revision to report on (default: newest)")
    report.add_argument("--baseline", default=None,
                        help="compare against this revision instead of "
                             "the predecessor")
    report.add_argument("--noise", metavar="SPEC", default=None)
    report.add_argument("--format", choices=("markdown", "json"),
                        default="markdown")
    report.add_argument("--all", action="store_true",
                        help="include within-noise metrics")
    report.add_argument("--output", metavar="PATH", default=None,
                        help="write the report here instead of stdout")
    report.set_defaults(func=cmd_report)

    gate = obs_sub.add_parser(
        "gate", help="evaluate an SLO spec against the store; exit "
                     "non-zero on violation")
    _add_store_flag(gate)
    gate.add_argument("--spec", required=True,
                      help="SLO spec (TOML or JSON)")
    gate.add_argument("--format", choices=("text", "json"),
                      default="text")
    gate.set_defaults(func=cmd_gate)

    flame = obs_sub.add_parser(
        "flame", help="print collapsed stacks from a sampling profile")
    _add_store_flag(flame)
    flame.add_argument("profile", nargs="?", default=None,
                       help="a repro-profile-v1 JSON file (default: "
                            "the newest profile record in the store)")
    flame.add_argument("--rev", default=None,
                       help="pick the profile of this revision")
    flame.set_defaults(func=cmd_flame)
