"""The longitudinal run-record store (``repro.obs.store``).

One append-only sqlite3 database holding every structured artifact the
system emits -- fleet trend documents, ``bench_*.py --json`` envelopes,
metrics-registry snapshots, serve access-log summaries, trace-span
rollups, and sampling-profiler dumps -- reduced to flat, numeric
*run records* keyed by ``(git_rev, run_id, kind)``:

* **git_rev** ties a record to the code that produced it, which is what
  makes cross-revision trending (``repro obs diff REV1 REV2``) and SLO
  burn-rate windows (:mod:`repro.obs.slo`) possible.
* **run_id** separates repeated measurements of one revision (CI
  reruns, local experiments) without overwriting history.
* **kind** names the artifact family, so a fleet trend and a decode
  benchmark of the same run never collide.

Timestamps are supplied by the caller (CI passes the commit timestamp),
never read from the clock inside this module, so a store rebuilt from
the same artifacts is byte-identical -- records are diffable the same
way trend documents are.  The sqlite file is the queryable form; every
record also round-trips through one-line JSON (schema
``repro-obs-record-v1``) via :meth:`RunStore.export_jsonl` /
:meth:`RunStore.import_jsonl`, so stores can be merged, committed, or
shipped between machines as plain text.

Artifact flattening lives in :mod:`repro.obs.ingest`; the store itself
never inspects payload semantics beyond the record envelope.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

#: Schema tag stamped on every exported record line.
RECORD_SCHEMA = "repro-obs-record-v1"


class StoreError(ValueError):
    """A run-record operation violated the store's invariants."""


def _canonical(value: dict) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunRecord:
    """One flattened measurement artifact of one run of one revision."""

    git_rev: str
    run_id: str
    kind: str
    timestamp: str              # externally supplied (ISO-8601 or epoch)
    metrics: dict = field(default_factory=dict)   # name -> float
    meta: dict = field(default_factory=dict)      # small provenance ctx

    def __post_init__(self) -> None:
        for part, value in (("git_rev", self.git_rev),
                            ("run_id", self.run_id),
                            ("kind", self.kind)):
            if not value or not isinstance(value, str):
                raise StoreError(f"record {part} must be a non-empty "
                                 f"string, got {value!r}")
        for name, value in self.metrics.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise StoreError(f"metric {name!r} must be numeric, "
                                 f"got {type(value).__name__}")

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.git_rev, self.run_id, self.kind)

    def to_dict(self) -> dict:
        return {
            "schema": RECORD_SCHEMA,
            "git_rev": self.git_rev,
            "run_id": self.run_id,
            "kind": self.kind,
            "timestamp": self.timestamp,
            "metrics": dict(sorted(self.metrics.items())),
            "meta": self.meta,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, raw: dict) -> RunRecord:
        if not isinstance(raw, dict):
            raise StoreError(f"record must be an object, "
                             f"got {type(raw).__name__}")
        if raw.get("schema") != RECORD_SCHEMA:
            raise StoreError(f"unknown record schema "
                             f"{raw.get('schema')!r} "
                             f"(expected {RECORD_SCHEMA!r})")
        try:
            return cls(git_rev=raw["git_rev"], run_id=raw["run_id"],
                       kind=raw["kind"],
                       timestamp=str(raw.get("timestamp", "")),
                       metrics=dict(raw.get("metrics", {})),
                       meta=dict(raw.get("meta", {})))
        except KeyError as error:
            raise StoreError(f"record missing required field "
                             f"{error.args[0]!r}") from None


class RunStore:
    """Append-only sqlite3 store of :class:`RunRecord` rows.

    ``path`` may be ``":memory:"`` (tests).  Re-adding a byte-identical
    record is an idempotent no-op -- resumed CI jobs re-record safely --
    but re-keying different content is an error: history is never
    silently rewritten.
    """

    _TABLE = """
        CREATE TABLE IF NOT EXISTS records (
            git_rev   TEXT NOT NULL,
            run_id    TEXT NOT NULL,
            kind      TEXT NOT NULL,
            timestamp TEXT NOT NULL,
            metrics   TEXT NOT NULL,
            meta      TEXT NOT NULL,
            PRIMARY KEY (git_rev, run_id, kind)
        )
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = path
        if path != ":memory:":
            parent = Path(path).parent
            if parent != Path(""):
                parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(path))
        self._db.execute(self._TABLE)
        self._db.commit()

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def add(self, record: RunRecord) -> bool:
        """Append one record; returns False for an idempotent re-add."""
        existing = self.get(*record.key)
        if existing is not None:
            if existing.to_dict() == record.to_dict():
                return False
            raise StoreError(
                f"record {record.key} already exists with different "
                f"content; the store is append-only (pick a new run_id)")
        self._db.execute(
            "INSERT INTO records VALUES (?, ?, ?, ?, ?, ?)",
            (record.git_rev, record.run_id, record.kind,
             record.timestamp, _canonical(record.metrics),
             _canonical(record.meta)))
        self._db.commit()
        return True

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    @staticmethod
    def _row_to_record(row: tuple) -> RunRecord:
        git_rev, run_id, kind, timestamp, metrics, meta = row
        return RunRecord(git_rev=git_rev, run_id=run_id, kind=kind,
                         timestamp=timestamp,
                         metrics=json.loads(metrics),
                         meta=json.loads(meta))

    def get(self, git_rev: str, run_id: str, kind: str) -> RunRecord | None:
        rows = self._db.execute(
            "SELECT * FROM records WHERE git_rev=? AND run_id=? "
            "AND kind=?", (git_rev, run_id, kind)).fetchall()
        return self._row_to_record(rows[0]) if rows else None

    def query(self, *, git_rev: str | None = None,
              run_id: str | None = None,
              kind: str | None = None) -> list[RunRecord]:
        """Matching records in deterministic (timestamp, key) order."""
        clauses, params = [], []
        for column, value in (("git_rev", git_rev), ("run_id", run_id),
                              ("kind", kind)):
            if value is not None:
                clauses.append(f"{column}=?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._db.execute(
            f"SELECT * FROM records{where} "             # noqa: S608
            f"ORDER BY timestamp, git_rev, run_id, kind", params)
        return [self._row_to_record(row) for row in rows]

    def revisions(self) -> list[str]:
        """Distinct revisions, oldest first (by earliest timestamp)."""
        rows = self._db.execute(
            "SELECT git_rev, MIN(timestamp) FROM records "
            "GROUP BY git_rev ORDER BY MIN(timestamp), git_rev")
        return [row[0] for row in rows]

    def kinds(self, git_rev: str | None = None) -> list[str]:
        if git_rev is None:
            rows = self._db.execute(
                "SELECT DISTINCT kind FROM records ORDER BY kind")
        else:
            rows = self._db.execute(
                "SELECT DISTINCT kind FROM records WHERE git_rev=? "
                "ORDER BY kind", (git_rev,))
        return [row[0] for row in rows]

    def latest(self, kind: str,
               git_rev: str | None = None) -> RunRecord | None:
        """The newest record of a kind (optionally of one revision)."""
        records = self.query(git_rev=git_rev, kind=kind)
        return records[-1] if records else None

    def window(self, kind: str, limit: int) -> list[RunRecord]:
        """The ``limit`` newest records of a kind, oldest first.

        This is the SLO engine's burn-rate window: one entry per
        recorded run, across revisions.
        """
        records = self.query(kind=kind)
        return records[-limit:] if limit > 0 else []

    def __len__(self) -> int:
        return self._db.execute(
            "SELECT COUNT(*) FROM records").fetchone()[0]

    # ------------------------------------------------------------------
    # JSONL interchange
    # ------------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> int:
        """Write every record as one-JSON-per-line; returns the count."""
        records = self.query()
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as sink:
            for record in records:
                sink.write(record.to_json_line() + "\n")
        return len(records)

    def import_jsonl(self, path: str | Path) -> int:
        """Append records from a JSONL export; returns how many were new.

        Records already present (byte-identical) are skipped; a keyed
        conflict with different content raises :class:`StoreError`,
        naming the offending line.
        """
        added = 0
        with open(path, encoding="utf-8") as source:
            for number, line in enumerate(source, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError as error:
                    raise StoreError(
                        f"{path}:{number}: not JSON: {error}") from None
                try:
                    added += bool(self.add(RunRecord.from_dict(raw)))
                except StoreError as error:
                    raise StoreError(f"{path}:{number}: {error}") \
                        from None
        return added

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> RunStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
