"""Cross-revision regression trending: ``obs diff`` / ``obs report``.

Given two revisions in a :class:`~repro.obs.store.RunStore`, the differ
aligns the newest record of every shared kind, compares metric by
metric, and classifies each delta:

* **regressed / improved** -- the metric moved outside its *noise
  band* in (respectively against or along) its better-direction;
* **unchanged** -- inside the band;
* **added / removed** -- present on only one side (never a failure:
  new instrumentation must not break the gate);
* **changed** -- moved outside the band for a metric with no known
  direction (reported, never failed).

Direction is inferred from the metric name (``*f1*`` up, ``*_ms``
down, ...) with explicit overrides available in the noise-band spec, a
TOML/JSON list of ``{pattern, rel_tol, abs_tol, direction}`` entries
matched by ``fnmatch`` against ``kind:metric``.  The first matching
entry wins, so specs read top-down like .gitignore.

The output document (schema ``repro-obs-diff-v1``) is deterministic
for a given store content, and renders as markdown for humans or JSON
for machines; ``repro obs report`` is the same diff against the
previous revision in the store, packaged as a regression report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from .store import RunStore, StoreError

#: Schema tag of the diff/report document.
DIFF_SCHEMA = "repro-obs-diff-v1"

#: Name patterns whose growth is good (higher-is-better).
_UP_PATTERNS = ("*f1*", "*precision*", "*recall*", "*speedup*",
                "*throughput*", "*_per_s*", "*reused*", "*.holds",
                "*binaries.ok")

#: Name patterns whose growth is bad (lower-is-better).
_DOWN_PATTERNS = ("*_ms", "*_s", "*seconds*", "*_rate", "*error*",
                  "*fail*", "*.errors", "*overhead*", "*self_fraction")


@dataclass(frozen=True)
class NoiseBand:
    """Tolerance (and optional direction override) for matching metrics.

    ``pattern`` matches ``kind:metric`` (fnmatch).  A delta within
    ``max(abs_tol, |base| * rel_tol)`` of the base value is noise.
    ``direction`` is ``"up"`` (higher better), ``"down"`` or
    ``"none"``; None defers to name inference.
    """

    pattern: str
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    direction: str | None = None


#: Default bands: timings and latencies are noisy on shared hardware,
#: sampling fractions doubly so; exact counts get a zero band.
DEFAULT_NOISE = (
    NoiseBand("*:*_ms", rel_tol=0.25, abs_tol=1.0),
    NoiseBand("*:*seconds*", rel_tol=0.25, abs_tol=0.05),
    NoiseBand("*:*_s", rel_tol=0.25, abs_tol=0.05),
    NoiseBand("*:*_per_s", rel_tol=0.25, abs_tol=1.0),
    NoiseBand("*:*throughput*", rel_tol=0.25),
    NoiseBand("*:*speedup*", rel_tol=0.20),
    NoiseBand("*:*overhead*", rel_tol=0.50, abs_tol=0.5),
    NoiseBand("profile:*self_fraction", abs_tol=0.10),
    NoiseBand("*:*", rel_tol=0.02),
)


def direction_of(kind: str, metric: str,
                 bands: tuple[NoiseBand, ...]) -> str:
    """``"up"``, ``"down"`` or ``"none"`` for one metric name."""
    scoped = f"{kind}:{metric}"
    for band in bands:
        if band.direction is not None and \
                fnmatchcase(scoped, band.pattern):
            return band.direction
    for pattern in _UP_PATTERNS:
        if fnmatchcase(metric, pattern):
            return "up"
    for pattern in _DOWN_PATTERNS:
        if fnmatchcase(metric, pattern):
            return "down"
    return "none"


def band_of(kind: str, metric: str,
            bands: tuple[NoiseBand, ...]) -> NoiseBand:
    scoped = f"{kind}:{metric}"
    for band in bands:
        if fnmatchcase(scoped, band.pattern):
            return band
    return NoiseBand("*:*")


def load_noise_spec(path: str | Path) -> tuple[NoiseBand, ...]:
    """Noise bands from a TOML (``[[noise]]`` tables) or JSON file.

    User entries take precedence over :data:`DEFAULT_NOISE`, which
    stays appended as the fallback tail.
    """
    path = Path(path)
    if path.suffix == ".toml":
        import tomllib
        entries = tomllib.loads(path.read_text()).get("noise", [])
    else:
        raw = json.loads(path.read_text())
        entries = raw.get("noise", raw) if isinstance(raw, dict) else raw
    bands = []
    for entry in entries:
        if "pattern" not in entry:
            raise StoreError(f"{path}: noise entry without a pattern: "
                             f"{entry!r}")
        bands.append(NoiseBand(
            pattern=entry["pattern"],
            rel_tol=float(entry.get("rel_tol", 0.0)),
            abs_tol=float(entry.get("abs_tol", 0.0)),
            direction=entry.get("direction")))
    return tuple(bands) + DEFAULT_NOISE


def _classify(kind: str, metric: str, base: float, current: float,
              bands: tuple[NoiseBand, ...]) -> str:
    band = band_of(kind, metric, bands)
    allowance = max(band.abs_tol, abs(base) * band.rel_tol)
    delta = current - base
    if abs(delta) <= allowance:
        return "unchanged"
    direction = direction_of(kind, metric, bands)
    if direction == "none":
        return "changed"
    worse = delta < 0 if direction == "up" else delta > 0
    return "regressed" if worse else "improved"


def diff_revisions(store: RunStore, base_rev: str, current_rev: str, *,
                   noise: tuple[NoiseBand, ...] = DEFAULT_NOISE,
                   kinds: list[str] | None = None) -> dict:
    """Compare the newest record of every shared kind across revisions."""
    for rev in (base_rev, current_rev):
        if not store.query(git_rev=rev):
            known = ", ".join(store.revisions()) or "none"
            raise StoreError(f"revision {rev!r} has no records "
                             f"(known: {known})")
    base_kinds = set(store.kinds(base_rev))
    current_kinds = set(store.kinds(current_rev))
    chosen = sorted((base_kinds | current_kinds)
                    & set(kinds or (base_kinds | current_kinds)))

    per_kind: dict[str, dict] = {}
    summary = {"regressed": 0, "improved": 0, "changed": 0,
               "unchanged": 0, "added": 0, "removed": 0}
    for kind in chosen:
        if kind not in base_kinds or kind not in current_kinds:
            side = "base" if kind in base_kinds else "current"
            per_kind[kind] = {"only_in": side, "metrics": {}}
            continue
        base = store.latest(kind, base_rev)
        current = store.latest(kind, current_rev)
        assert base is not None and current is not None
        cells: dict[str, dict] = {}
        for metric in sorted(set(base.metrics) | set(current.metrics)):
            if metric not in current.metrics:
                cells[metric] = {"base": base.metrics[metric],
                                 "status": "removed"}
            elif metric not in base.metrics:
                cells[metric] = {"current": current.metrics[metric],
                                 "status": "added"}
            else:
                b, c = base.metrics[metric], current.metrics[metric]
                status = _classify(kind, metric, b, c, noise)
                cell = {"base": b, "current": c,
                        "delta": round(c - b, 8), "status": status}
                if b:
                    cell["rel_delta"] = round((c - b) / abs(b), 6)
                cells[metric] = cell
            summary[cells[metric]["status"]] += 1
        per_kind[kind] = {
            "base_run": base.run_id, "current_run": current.run_id,
            "metrics": cells,
        }

    return {
        "schema": DIFF_SCHEMA,
        "base_rev": base_rev,
        "current_rev": current_rev,
        "kinds": per_kind,
        "summary": summary,
    }


def regressions(diff: dict) -> list[str]:
    """One human-readable line per regressed metric in a diff doc."""
    problems = []
    for kind, entry in sorted(diff["kinds"].items()):
        for metric, cell in sorted(entry.get("metrics", {}).items()):
            if cell["status"] == "regressed":
                problems.append(
                    f"{kind}:{metric}: {cell['base']} -> "
                    f"{cell['current']} ({cell['delta']:+g})")
    return problems


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

_STATUS_MARK = {"regressed": "✗", "improved": "✓", "changed": "~",
                "added": "+", "removed": "-"}


def render_markdown(diff: dict, *, include_unchanged: bool = False) -> str:
    """A markdown regression report for one diff document."""
    summary = diff["summary"]
    lines = [f"# Regression report: `{diff['base_rev']}` → "
             f"`{diff['current_rev']}`", ""]
    lines.append(f"**{summary['regressed']} regressed**, "
                 f"{summary['improved']} improved, "
                 f"{summary['changed']} changed, "
                 f"{summary['added']} added, "
                 f"{summary['removed']} removed, "
                 f"{summary['unchanged']} within noise.")
    for kind, entry in sorted(diff["kinds"].items()):
        if "only_in" in entry:
            lines += ["", f"## {kind}",
                      f"*only recorded at the "
                      f"{'base' if entry['only_in'] == 'base' else 'current'}"
                      f" revision*"]
            continue
        cells = {metric: cell
                 for metric, cell in entry["metrics"].items()
                 if include_unchanged or cell["status"] != "unchanged"}
        if not cells:
            continue
        lines += ["", f"## {kind}", "",
                  "| metric | base | current | delta | status |",
                  "|---|---:|---:|---:|---|"]
        for metric, cell in sorted(cells.items()):
            base = cell.get("base", "")
            current = cell.get("current", "")
            delta = (f"{cell['delta']:+g}" if "delta" in cell else "")
            if "rel_delta" in cell:
                delta += f" ({cell['rel_delta']:+.1%})"
            mark = _STATUS_MARK.get(cell["status"], "")
            lines.append(f"| `{metric}` | {base:g} | {current:g} "
                         f"| {delta} | {mark} {cell['status']} |"
                         if isinstance(base, (int, float))
                         and isinstance(current, (int, float))
                         else f"| `{metric}` | {base} | {current} "
                              f"| {delta} | {mark} {cell['status']} |")
    skipped = summary["unchanged"]
    if skipped and not include_unchanged:
        lines += ["", f"*{skipped} unchanged metric(s) elided; "
                      f"re-run with `--all` to list them.*"]
    return "\n".join(lines) + "\n"


def report_revision(store: RunStore, rev: str, *,
                    baseline: str | None = None,
                    noise: tuple[NoiseBand, ...] = DEFAULT_NOISE) -> dict:
    """``obs report``: diff ``rev`` against ``baseline`` or its
    predecessor in the store; a first revision reports against itself
    (all-unchanged), so bootstrap runs still produce a document."""
    revisions = store.revisions()
    if rev not in revisions:
        raise StoreError(f"revision {rev!r} has no records "
                         f"(known: {', '.join(revisions) or 'none'})")
    if baseline is None:
        index = revisions.index(rev)
        baseline = revisions[index - 1] if index else rev
    return diff_revisions(store, baseline, rev, noise=noise)
