"""Validator for the ``repro-trace-v1`` span JSONL schema.

Checked into the tree so CI (the ``obs-smoke`` job) and the test
suite validate real trace exports against one authoritative
definition.  Usable as a library (:func:`validate_span_dict`,
:func:`validate_jsonl`) and as a command::

    python -m repro.obs.schema trace.jsonl

which exits non-zero on the first malformed line and prints a trace
summary (span count, trace ids, roots) on success.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .trace import SPAN_SCHEMA

#: Required fields and the types each must carry.
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "trace_id": str,
    "span_id": str,
    "name": str,
    "start_us": int,
    "dur_us": int,
    "pid": int,
    "attrs": dict,
}


class SchemaError(ValueError):
    """One span record violates the ``repro-trace-v1`` schema."""


def validate_span_dict(raw: dict) -> dict:
    """Check one decoded span record; returns it for chaining."""
    if not isinstance(raw, dict):
        raise SchemaError(f"span record must be an object, "
                          f"got {type(raw).__name__}")
    for name, expected in _REQUIRED.items():
        if name not in raw:
            raise SchemaError(f"missing required field {name!r}")
        value = raw[name]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise SchemaError(
                f"field {name!r} must be "
                f"{getattr(expected, '__name__', expected)}, "
                f"got {type(value).__name__}")
    if raw["schema"] != SPAN_SCHEMA:
        raise SchemaError(f"unknown schema {raw['schema']!r} "
                          f"(expected {SPAN_SCHEMA!r})")
    parent = raw.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        raise SchemaError("field 'parent_id' must be a string or null")
    if not raw["span_id"]:
        raise SchemaError("field 'span_id' must be non-empty")
    if raw["dur_us"] < 0:
        raise SchemaError("field 'dur_us' must be non-negative")
    if raw["start_us"] < 0:
        raise SchemaError("field 'start_us' must be non-negative")
    return raw


def validate_jsonl(path: str | Path) -> dict:
    """Validate every line of a trace export; returns a summary.

    Beyond per-line shape, checks cross-line consistency: span ids are
    unique and every non-null parent reference resolves to a span in
    the file or is an explicit root of its trace.
    """
    spans: list[dict] = []
    for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"line {lineno}: not JSON: {error}") \
                from error
        try:
            spans.append(validate_span_dict(raw))
        except SchemaError as error:
            raise SchemaError(f"line {lineno}: {error}") from None
    if not spans:
        raise SchemaError("trace export contains no spans")
    ids = [span["span_id"] for span in spans]
    if len(set(ids)) != len(ids):
        raise SchemaError("duplicate span ids in export")
    known = set(ids)
    roots = 0
    dangling = 0
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots += 1
        elif parent not in known:
            dangling += 1
    if roots == 0:
        raise SchemaError("trace export has no root span")
    return {
        "spans": len(spans),
        "traces": len({span["trace_id"] for span in spans}),
        "roots": roots,
        "dangling_parents": dangling,
        "pids": len({span["pid"] for span in spans}),
        "names": len({span["name"] for span in spans}),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.jsonl",
              file=sys.stderr)
        return 2
    try:
        summary = validate_jsonl(argv[0])
    except (OSError, SchemaError) as error:
        print(f"schema: {argv[0]}: {error}", file=sys.stderr)
        return 1
    print(f"{argv[0]}: ok -- {summary['spans']} spans, "
          f"{summary['traces']} trace(s), {summary['roots']} root(s), "
          f"{summary['pids']} process(es), "
          f"{summary['dangling_parents']} dangling parent ref(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
