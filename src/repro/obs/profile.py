"""Continuous phase profiling: a low-overhead sampling profiler.

A :class:`SamplingProfiler` wakes every ``interval`` seconds on a
daemon thread, snapshots every other thread's stack via
``sys._current_frames()``, and aggregates two views:

* **collapsed stacks** (``pkg.mod:func;pkg.mod:func;... count``), the
  flamegraph interchange format -- render with any collapsed-stack
  tool, or dump via ``repro obs flame``;
* **phase self-time**: samples attributed to the *innermost* pipeline
  phase active on the sampled thread, as maintained by
  :func:`enter_phase` / :func:`exit_phase`, which
  :func:`repro.obs.trace.phase_span` calls around every phase.

Because attribution is by sampling, the cost is bounded by the sample
rate, not the workload: the default 5 ms interval costs well under the
2% overhead ceiling asserted by ``benchmarks/bench_obs.py``, and when
no profiler is installed every hook is a single module-global read --
a disabled run takes exactly zero samples (also bench-asserted).

The exported document (schema ``repro-profile-v1``) feeds the
run-record store, so a hot-path shift shows up in ``repro obs diff``
as a ``phase.*.self_fraction`` delta next to the accuracy metrics.
Activation: ``--sample-profile PATH`` on ``repro disasm`` /
``repro serve`` / ``repro evalfleet run``, or the ``REPRO_PROFILE``
environment variable.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from contextlib import contextmanager
from pathlib import Path

#: Environment variable holding the profile-output path; setting it
#: activates sampling in the CLI entry points that support it.
PROFILE_ENV = "REPRO_PROFILE"

#: Schema tag stamped on every exported profile document.
PROFILE_SCHEMA = "repro-profile-v1"

#: Default sampling interval in seconds (200 Hz would be overkill for
#: multi-second pipeline phases; 5 ms resolves anything that matters).
DEFAULT_INTERVAL = 0.005

#: Deepest collapsed stack retained (frames below are truncated).
_MAX_DEPTH = 48

#: thread id -> stack of active phase names (innermost last).  Only
#: mutated while a profiler is installed; reads/writes are plain dict
#: and list ops, atomic under the GIL.
_PHASE_STACKS: dict[int, list[str]] = {}

#: The installed profiler, or None.  Every hook checks this one global.
_ACTIVE: SamplingProfiler | None = None

#: Process-wide count of samples ever taken; ``bench_obs.py`` asserts
#: this stays flat across profiling-off runs.
_SAMPLES_TAKEN = 0


def samples_taken() -> int:
    return _SAMPLES_TAKEN


def profiler_active() -> bool:
    return _ACTIVE is not None


def enter_phase(name: str) -> bool:
    """Push a phase for the calling thread; True if it must be popped.

    Called by :func:`repro.obs.trace.phase_span`.  The return value is
    captured by the caller so an enter/exit pair stays balanced even
    if the profiler is torn down mid-phase.
    """
    if _ACTIVE is None:
        return False
    _PHASE_STACKS.setdefault(threading.get_ident(), []).append(name)
    return True


def exit_phase() -> None:
    stack = _PHASE_STACKS.get(threading.get_ident())
    if stack:
        stack.pop()


class SamplingProfiler:
    """Samples all threads' stacks on a timer; aggregates in-process."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = interval
        self.samples = 0
        self.stacks: dict[str, int] = {}
        self.phases: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    @staticmethod
    def _collapse(frame) -> str:
        parts: list[str] = []
        while frame is not None and len(parts) < _MAX_DEPTH:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            parts.append(f"{module}:{code.co_name}")
            frame = frame.f_back
        return ";".join(reversed(parts))

    def _sample_once(self) -> None:
        global _SAMPLES_TAKEN
        me = threading.get_ident()
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue
                stack = self._collapse(frame)
                self.stacks[stack] = self.stacks.get(stack, 0) + 1
                phases = _PHASE_STACKS.get(thread_id)
                phase = phases[-1] if phases else "(no phase)"
                self.phases[phase] = self.phases.get(phase, 0) + 1
                self.samples += 1
                _SAMPLES_TAKEN += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def start(self) -> SamplingProfiler:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-sampler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_doc(self, **meta) -> dict:
        """The ``repro-profile-v1`` document (JSON-serializable)."""
        with self._lock:
            doc = {
                "schema": PROFILE_SCHEMA,
                "interval_ms": round(self.interval * 1000, 3),
                "samples": self.samples,
                "phases": dict(sorted(self.phases.items())),
                "stacks": dict(sorted(self.stacks.items())),
            }
        doc.update(meta)
        return doc

    def collapsed_lines(self) -> list[str]:
        """``stack count`` lines for flamegraph tooling."""
        with self._lock:
            return [f"{stack} {count}"
                    for stack, count in sorted(self.stacks.items())]

    def write(self, path: str | Path, **meta) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_doc(**meta), indent=2,
                                   sort_keys=True) + "\n")
        return path


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

def start_profiler(interval: float = DEFAULT_INTERVAL) -> SamplingProfiler:
    """Install and start the process-wide sampler."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a sampling profiler is already active")
    profiler = SamplingProfiler(interval)
    _ACTIVE = profiler
    profiler.start()
    return profiler


def stop_profiler() -> SamplingProfiler | None:
    """Stop and uninstall the process-wide sampler; returns it."""
    global _ACTIVE
    profiler = _ACTIVE
    _ACTIVE = None          # hooks go quiet before the thread stops
    _PHASE_STACKS.clear()
    if profiler is not None:
        profiler.stop()
    return profiler


def current_profiler() -> SamplingProfiler | None:
    return _ACTIVE


@contextmanager
def profiling(path: str | Path | None = None,
              interval: float = DEFAULT_INTERVAL, **meta):
    """Sample for the duration of the block; write ``path`` on exit."""
    profiler = start_profiler(interval)
    try:
        yield profiler
    finally:
        stop_profiler()
        if path is not None:
            profiler.write(path, **meta)


def profile_path_from_env() -> str | None:
    """The ``REPRO_PROFILE`` output path, or None when unset/empty."""
    return os.environ.get(PROFILE_ENV) or None


def collapsed_from_doc(doc: dict) -> list[str]:
    """``stack count`` lines from an exported profile document."""
    return [f"{stack} {count}"
            for stack, count in sorted(doc.get("stacks", {}).items())]
