"""Artifact ingestion: structured system outputs -> flat run records.

``repro obs record`` accepts any artifact the pipeline already emits
and reduces it to one :class:`~repro.obs.store.RunRecord` -- a flat
``metric name -> number`` map -- without per-script adapters:

* **Fleet trend documents** (``repro-fleet-trend-v1``): corrected-tool
  ground-truth rates and F1, per-error-class taxonomy errors, per-style
  F1, failure rate.
* **Benchmark envelopes** (``repro-bench-v1``): the envelope's
  ``metrics`` dict, flattened; the record kind is ``bench-<tool>``, so
  every ``bench_*.py --json`` output lands without special cases.
* **Metrics-registry snapshots** (``MetricsRegistry.snapshot()``):
  every counter/gauge sample and histogram count/sum.
* **Serve access logs** (JSONL): per-endpoint request counts, error
  rates, and p50/p99/mean latency, plus an ``all`` rollup.
* **Trace exports** (``repro-trace-v1`` JSONL): per-span-name count,
  total and *self* duration (total minus child spans), i.e. the
  phase-level hot-path profile a trace implies.
* **Sampling profiles** (``repro-profile-v1``): per-phase self-time
  fractions, with the collapsed stacks preserved in ``meta``.

Detection is content-based (schema tags, then shape), so callers can
point ``obs record`` at a directory of mixed artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from .store import RunRecord, StoreError

#: Kinds this module can produce (bench kinds carry a tool suffix).
KIND_FLEET_TREND = "fleet-trend"
KIND_METRICS = "metrics-snapshot"
KIND_SERVE_ACCESS = "serve-access"
KIND_TRACE = "trace-rollup"
KIND_PROFILE = "profile"


class IngestError(StoreError):
    """An artifact could not be recognized or flattened."""


def _round(value: float, digits: int = 8) -> float:
    return round(float(value), digits)


def flatten_numeric(value, prefix: str = "", into: dict | None = None,
                    ) -> dict:
    """Flatten nested dicts to dotted names, keeping numeric leaves."""
    into = into if into is not None else {}
    if isinstance(value, bool):
        into[prefix] = float(value)
    elif isinstance(value, (int, float)):
        into[prefix] = value
    elif isinstance(value, dict):
        for key, sub in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flatten_numeric(sub, name, into)
    return into


def _percentile(values: list[float], fraction: float) -> float:
    """Deterministic nearest-rank percentile (values need not be sorted)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


# ----------------------------------------------------------------------
# Per-artifact flatteners
# ----------------------------------------------------------------------

def flatten_trend(trend: dict) -> dict:
    """Fleet trend document -> the metrics worth trending."""
    metrics: dict = {}
    binaries = trend.get("binaries", {})
    total = max(binaries.get("total", 0), 1)
    metrics["binaries.total"] = binaries.get("total", 0)
    metrics["binaries.ok"] = binaries.get("ok", 0)
    metrics["binaries.failed"] = binaries.get("failed", 0)
    metrics["binaries.failure_rate"] = _round(
        binaries.get("failed", 0) / total)
    for tool, per_tool in sorted(trend.get("tools", {}).items()):
        gt = per_tool.get("gt", {})
        if gt.get("binaries"):
            for key in ("instr_f1", "false_code_rate",
                        "missed_code_rate", "total_error_rate"):
                if key in gt:
                    metrics[f"{tool}.{key}"] = gt[key]
        for cls, bucket in sorted(per_tool.get("taxonomy", {}).items()):
            metrics[f"{tool}.taxonomy.{cls}.errors"] = bucket["errors"]
    for style, per_style in sorted(trend.get("styles", {}).items()):
        corrected = per_style.get("tools", {}).get("corrected", {})
        gt = corrected.get("gt", {})
        if gt.get("binaries"):
            metrics[f"style.{style}.instr_f1"] = gt.get("instr_f1", 0.0)
            metrics[f"style.{style}.total_error_rate"] = \
                gt.get("total_error_rate", 0.0)
    for baseline, axes in sorted((trend.get("separation") or {}).items()):
        for axis, cell in sorted(axes.items()):
            metrics[f"separation.{baseline}.{axis}.holds"] = \
                float(cell["holds"])
    return metrics


def flatten_bench(doc: dict) -> tuple[str, dict]:
    """Bench envelope -> (kind, metrics).

    The unified envelope carries ``tool`` + ``metrics``; legacy
    free-form payloads (pre-envelope BENCH dumps) fall back to
    flattening every numeric leaf outside the environment keys.
    """
    tool = doc.get("tool") or doc.get("kind") or doc.get("benchmark")
    if not tool:
        raise IngestError("bench payload names no tool "
                          "(expected a 'tool' field)")
    kind = f"bench-{tool}"
    if isinstance(doc.get("metrics"), dict):
        return kind, flatten_numeric(doc["metrics"])
    skip = {"schema", "python", "platform", "cpu_count",
            "decoder_backend", "kind", "benchmark", "tool", "trend"}
    body = {key: value for key, value in doc.items() if key not in skip}
    return kind, flatten_numeric(body)


def flatten_metrics_snapshot(snapshot: dict) -> dict:
    """``MetricsRegistry.snapshot()`` -> flat samples."""
    metrics: dict = {}
    for name, entry in sorted(snapshot.items()):
        for labels, value in sorted(entry.get("values", {}).items()):
            sample = f"{name}{labels}" if labels else name
            if isinstance(value, dict):        # histogram: count + sum
                metrics[f"{sample}.count"] = value.get("count", 0)
                metrics[f"{sample}.sum"] = value.get("sum", 0.0)
            else:
                metrics[sample] = value
    return metrics


def _is_metrics_snapshot(doc: dict) -> bool:
    if not doc:
        return False
    return all(isinstance(entry, dict)
               and {"kind", "values"} <= set(entry)
               for entry in doc.values())


def flatten_access_log(lines: list[dict]) -> dict:
    """Serve access-log JSONL -> per-endpoint latency/error summary."""
    by_endpoint: dict[str, list[dict]] = {}
    for entry in lines:
        endpoint = entry.get("endpoint")
        if endpoint is None or "latency_ms" not in entry:
            continue        # lifecycle lines (drain-complete etc.)
        by_endpoint.setdefault(str(endpoint), []).append(entry)
    if not by_endpoint:
        raise IngestError("access log holds no request lines")
    by_endpoint["all"] = [entry for entries in by_endpoint.values()
                          for entry in entries]
    metrics: dict = {}
    for endpoint, entries in sorted(by_endpoint.items()):
        latencies = [float(entry["latency_ms"]) for entry in entries]
        errors = sum(1 for entry in entries
                     if int(entry.get("status", 0)) >= 500)
        name = endpoint.strip("/").replace("/", ".") or "root"
        metrics[f"{name}.requests"] = len(entries)
        metrics[f"{name}.error_rate"] = _round(errors / len(entries))
        metrics[f"{name}.p50_ms"] = _round(_percentile(latencies, 0.50), 3)
        metrics[f"{name}.p99_ms"] = _round(_percentile(latencies, 0.99), 3)
        metrics[f"{name}.mean_ms"] = _round(
            sum(latencies) / len(latencies), 3)
    return metrics


def flatten_trace(spans: list[dict]) -> dict:
    """Trace-span JSONL -> per-name count / total / self durations.

    Self time is a span's duration minus its direct children's -- the
    span-level equivalent of a profiler's self column, clamped at zero
    for async spans whose children outlive them.
    """
    if not spans:
        raise IngestError("trace export holds no spans")
    child_us: dict[str, int] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent:
            child_us[parent] = child_us.get(parent, 0) \
                + int(span.get("dur_us", 0))
    totals: dict[str, list[float]] = {}
    for span in spans:
        name = span["name"]
        duration = int(span.get("dur_us", 0))
        self_us = max(0, duration - child_us.get(span["span_id"], 0))
        bucket = totals.setdefault(name, [0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += duration / 1e6
        bucket[2] += self_us / 1e6
    metrics: dict = {}
    for name, (count, total, self_s) in sorted(totals.items()):
        metrics[f"span.{name}.count"] = count
        metrics[f"span.{name}.total_s"] = _round(total, 6)
        metrics[f"span.{name}.self_s"] = _round(self_s, 6)
    return metrics


def flatten_profile(doc: dict) -> dict:
    """Sampling-profiler dump -> per-phase self-time fractions."""
    samples = max(int(doc.get("samples", 0)), 0)
    metrics: dict = {"samples.total": samples}
    if samples:
        for phase, count in sorted(doc.get("phases", {}).items()):
            metrics[f"phase.{phase}.self_fraction"] = _round(
                count / samples)
    return metrics


# ----------------------------------------------------------------------
# Detection + the one entry point
# ----------------------------------------------------------------------

def _read_jsonl(text: str, path: Path) -> list[dict]:
    lines = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            lines.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise IngestError(f"{path}:{number}: not JSONL: {error}") \
                from None
    return lines


def ingest_file(path: str | Path, *, git_rev: str, run_id: str,
                timestamp: str, kind: str | None = None) -> RunRecord:
    """Recognize one artifact file and flatten it into a run record.

    ``kind`` overrides detection (rarely needed).  Raises
    :class:`IngestError` for unrecognizable content.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    meta = {"source": path.name}
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None

    if isinstance(doc, dict):
        schema = doc.get("schema")
        if schema == "repro-fleet-trend-v1":
            detected, metrics = KIND_FLEET_TREND, flatten_trend(doc)
        elif schema == "repro-bench-v1":
            detected, metrics = flatten_bench(doc)
        elif schema == "repro-profile-v1":
            detected, metrics = KIND_PROFILE, flatten_profile(doc)
            meta["stacks"] = doc.get("stacks", {})
            meta["interval_ms"] = doc.get("interval_ms")
        elif _is_metrics_snapshot(doc):
            detected, metrics = KIND_METRICS, flatten_metrics_snapshot(doc)
        else:
            raise IngestError(
                f"{path}: unrecognized JSON artifact "
                f"(schema={schema!r})")
    else:
        lines = _read_jsonl(text, path)
        if not lines:
            raise IngestError(f"{path}: empty artifact")
        if lines[0].get("schema") == "repro-trace-v1":
            detected, metrics = KIND_TRACE, flatten_trace(lines)
        elif any("latency_ms" in line and "endpoint" in line
                 for line in lines):
            detected, metrics = KIND_SERVE_ACCESS, \
                flatten_access_log(lines)
        else:
            raise IngestError(f"{path}: unrecognized JSONL artifact")

    return RunRecord(git_rev=git_rev, run_id=run_id,
                     kind=kind or detected, timestamp=timestamp,
                     metrics=metrics, meta=meta)
