"""The shared error taxonomy every fleet signal maps onto.

Different quality signals speak different languages: lint diagnostics
carry rule ids, differential comparison produces per-byte disagreement
counts, and synthetic ground truth yields exact byte confusions.  The
fleet aggregator needs them on one axis so a dashboard (and the trend
gate) can ask "did boundary errors regress?" without caring which
detector noticed.  :class:`ErrorClass` is that axis, following the
taxonomy of the ground-truth-generation SoK (false code / missed code /
boundary confusion / gap mishandling / table misinterpretation) plus a
``provenance-conflict`` class for the self-disagreement signals this
stack uniquely has (fact-store conflicts, metadata-hint disagreement).

Every registered lint rule id MUST appear in
:data:`LINT_RULE_TAXONOMY` -- the test suite fails when a new rule
lands without a mapping, so the dashboard never silently drops a
diagnostic kind.
"""

from __future__ import annotations

import enum


class ErrorClass(enum.Enum):
    """One row of the fleet quality dashboard."""

    #: Data (or padding) bytes claimed as instructions.
    FALSE_CODE = "false-code"
    #: Genuine code bytes left unclaimed or called data.
    MISSED_CODE = "missed-code"
    #: Instruction/function boundaries drawn through real ones
    #: (overlapping claims, branches into instruction interiors).
    BOUNDARY = "boundary"
    #: Mishandled gaps: fall-through into unclaimed or data bytes.
    GAP = "gap"
    #: Jump/pointer table misinterpretation.
    TABLE = "table"
    #: The toolchain disagreeing with itself or with residual
    #: container metadata (not a byte error per se, but a QA signal).
    PROVENANCE_CONFLICT = "provenance-conflict"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def parse(cls, value: str) -> ErrorClass:
        for member in cls:
            if member.value == value:
                return member
        raise ValueError(f"unknown error class: {value!r}")


#: Stable iteration order for reports (matches declaration order).
ALL_CLASSES: tuple[ErrorClass, ...] = tuple(ErrorClass)


#: Every lint rule id -> the taxonomy class its diagnostics count
#: toward.  Exactly one class per rule; totality over the registry is
#: enforced by ``tests/fleet/test_taxonomy.py``.
LINT_RULE_TAXONOMY: dict[str, ErrorClass] = {
    # Accepted instructions that cannot be real code.
    "undecodable-instruction": ErrorClass.FALSE_CODE,
    "string-as-code": ErrorClass.FALSE_CODE,
    "pointer-run-as-code": ErrorClass.FALSE_CODE,
    "padding-as-code": ErrorClass.FALSE_CODE,
    "orphan-code": ErrorClass.FALSE_CODE,
    "call-target-garbage": ErrorClass.FALSE_CODE,
    "call-target-non-prologue": ErrorClass.FALSE_CODE,
    # Code that exists but was not claimed as such.
    "function-entry-not-code": ErrorClass.MISSED_CODE,
    "branch-into-data": ErrorClass.MISSED_CODE,
    # Boundaries drawn through real instructions.
    "instruction-overlap": ErrorClass.BOUNDARY,
    "code-data-overlap": ErrorClass.BOUNDARY,
    "branch-into-instruction": ErrorClass.BOUNDARY,
    # Fall-through / gap mishandling.
    "dangling-fallthrough": ErrorClass.GAP,
    "fallthrough-unclaimed": ErrorClass.GAP,
    "padding-as-data": ErrorClass.GAP,
    # Table misinterpretation.
    "jump-table-target-misaligned": ErrorClass.TABLE,
    # Self- / metadata-disagreement.
    "hint-disagreement": ErrorClass.PROVENANCE_CONFLICT,
    "rule-disagreement": ErrorClass.PROVENANCE_CONFLICT,
}


def taxonomy_of(rule_id: str) -> ErrorClass:
    """The taxonomy class for a lint rule id (KeyError if unmapped)."""
    try:
        return LINT_RULE_TAXONOMY[rule_id]
    except KeyError:
        raise KeyError(
            f"lint rule {rule_id!r} has no taxonomy mapping; add it to "
            f"repro.fleet.taxonomy.LINT_RULE_TAXONOMY") from None


#: Where the paper predicts the corrected disassembler separates from
#: each baseline, per ground-truth-scored error class.  ``total`` is
#: the headline false-code + missed-code sum (the paper's 3x-4x
#: claim); per-class entries name the failure mode each baseline is
#: known for: linear sweep decodes embedded data (false code), while
#: recursive descent cannot reach indirect-only functions (missed
#: code).  The trend gate requires the corrected pooled count to be
#: *strictly* below the baseline's on every listed axis.
EXPECTED_SEPARATIONS: dict[str, tuple[str, ...]] = {
    "linear-sweep": ("false-code", "total"),
    "recursive-descent": ("missed-code", "total"),
}
