"""Reproducible corpus manifests: what a fleet run evaluates.

A manifest is the fleet's unit of reproducibility: a schema-versioned
JSON document listing every binary to evaluate, either as a synthetic
spec (style x function count x seed -- regenerated bit-identically on
any machine) or as an on-disk file (ELF64 / PE32+ / native container,
ingested through :func:`repro.formats.load_any`).  Item ids are
deterministic, so two plans over the same inputs are byte-identical
and a checkpointed run can be resumed -- or re-sharded across a
different worker count -- without ambiguity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..formats import FormatError, detect_format
from ..synth.corpus import BinarySpec
from ..synth.styles import STYLES

#: Schema tag embedded in every manifest document.
MANIFEST_SCHEMA = "repro-fleet-manifest-v1"


@dataclass(frozen=True)
class FleetItem:
    """One binary in the corpus.

    ``kind`` is ``"synth"`` (regenerate from ``style`` /
    ``function_count`` / ``seed``) or ``"file"`` (read ``path`` from
    disk).  ``id`` is derived, stable, and unique within a manifest.
    """

    kind: str
    style: str = ""
    function_count: int = 0
    seed: int = 0
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind == "synth":
            if self.style not in STYLES:
                raise ValueError(f"unknown style {self.style!r}")
            if self.function_count < 2:
                raise ValueError("function_count must be >= 2")
        elif self.kind == "file":
            if not self.path:
                raise ValueError("file items need a path")
        else:
            raise ValueError(f"unknown item kind {self.kind!r}")

    @property
    def id(self) -> str:
        if self.kind == "synth":
            return (f"synth/{self.style}/fc{self.function_count:04d}"
                    f"/s{self.seed:06d}")
        return f"file/{self.path}"

    def spec(self) -> BinarySpec:
        """The generation spec of a synth item."""
        if self.kind != "synth":
            raise ValueError(f"item {self.id} is not synthetic")
        return BinarySpec(name=self.id.replace("/", "-"),
                          style=STYLES[self.style],
                          function_count=self.function_count,
                          seed=self.seed)

    def to_dict(self) -> dict:
        if self.kind == "synth":
            return {"kind": "synth", "style": self.style,
                    "function_count": self.function_count,
                    "seed": self.seed}
        return {"kind": "file", "path": self.path}

    @classmethod
    def from_dict(cls, raw: dict) -> FleetItem:
        kind = raw.get("kind")
        if kind == "synth":
            return cls(kind="synth", style=raw["style"],
                       function_count=int(raw["function_count"]),
                       seed=int(raw["seed"]))
        if kind == "file":
            return cls(kind="file", path=raw["path"])
        raise ValueError(f"unknown manifest item kind {kind!r}")


class Manifest:
    """An ordered, duplicate-free collection of :class:`FleetItem`."""

    def __init__(self, items) -> None:
        self.items: tuple[FleetItem, ...] = tuple(items)
        seen: set[str] = set()
        for item in self.items:
            if item.id in seen:
                raise ValueError(f"duplicate manifest item: {item.id}")
            seen.add(item.id)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def limit(self, count: int | None) -> Manifest:
        """The first ``count`` items (None = everything)."""
        if count is None or count >= len(self.items):
            return self
        return Manifest(self.items[:count])

    def shards(self, size: int) -> list[tuple[FleetItem, ...]]:
        """Split into contiguous shards of at most ``size`` items.

        Sharding is a checkpointing granularity, not a semantic one:
        aggregation output is identical for any shard size (the
        invariance test drives several).
        """
        if size < 1:
            raise ValueError("shard size must be >= 1")
        return [self.items[start:start + size]
                for start in range(0, len(self.items), size)]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "schema": MANIFEST_SCHEMA,
            "items": [item.to_dict() for item in self.items],
        }, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> Manifest:
        raw = json.loads(text)
        if raw.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"not a fleet manifest (schema={raw.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r})")
        return cls(FleetItem.from_dict(item) for item in raw["items"])

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> Manifest:
        return cls.from_json(Path(path).read_text())


def parse_seed_range(text: str) -> range:
    """Parse ``A:B`` (A inclusive, B exclusive) or a single seed."""
    first, sep, last = text.partition(":")
    try:
        if not sep:
            start, stop = int(first), int(first) + 1
        else:
            start, stop = int(first), int(last)
    except ValueError:
        raise ValueError(f"bad seed range {text!r} "
                         f"(expected A:B or a single integer)") from None
    if stop <= start:
        raise ValueError(f"empty seed range {text!r}")
    return range(start, stop)


def plan_grid(styles, function_counts, seeds) -> Manifest:
    """The synthetic grid: every style x function count x seed.

    Ordering is style-major then size then seed -- deterministic, so a
    plan is reproducible from its parameters alone.
    """
    items = [FleetItem(kind="synth", style=style, function_count=count,
                       seed=seed)
             for style in sorted(styles)
             for count in sorted(set(function_counts))
             for seed in seeds]
    return Manifest(items)


def ingest_directory(root: str | Path) -> list[FleetItem]:
    """File items for every recognized container under ``root``.

    Files whose magic none of the loaders recognize are skipped (a
    corpus directory routinely holds ground-truth sidecars and notes);
    recognition only reads the first bytes, the full parse happens --
    and may still fail, quarantined per item -- inside the fleet run.
    """
    root = Path(root)
    items = []
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        try:
            with open(path, "rb") as handle:
                detect_format(handle.read(16))
        except (FormatError, OSError):
            continue
        items.append(FleetItem(kind="file", path=str(path)))
    return items
