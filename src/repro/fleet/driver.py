"""The fleet driver: sharded, fault-tolerant, resumable fan-out.

A fleet run materializes a manifest into per-binary reports through a
worker pool (``repro.eval.parallel`` process workers in-process, or
client threads against a running ``repro serve`` instance), writing
each completed *shard* of reports to disk as an atomic checkpoint.
Three failure domains are handled explicitly:

* **A failed binary** (malformed file, analysis crash) is quarantined
  inside its report by :func:`~repro.fleet.analysis.analyze_item` --
  the shard completes, the failure shows up in the trend.
* **A crashed worker** (OOM-killed child, broken pool) is detected at
  result-collection time; the affected items are re-run serially in
  the coordinator, so the fleet still completes.
* **A killed run** (kill -9, preempted CI job) loses at most the
  shards in flight: a rerun over the same run directory loads every
  completed checkpoint, recomputes only the rest, and -- because
  aggregation is order- and schedule-independent -- produces a trend
  byte-identical to an uninterrupted run.

The run directory pins its manifest: resuming against a different
manifest is an error, not a silent mix of two corpora.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..eval.parallel import effective_jobs
from .aggregate import aggregate, publish_metrics, write_trend
from .analysis import analyze_item
from .manifest import Manifest

#: Schema tag embedded in every shard checkpoint.
SHARD_SCHEMA = "repro-fleet-shard-v1"

#: Default items per checkpoint shard.
DEFAULT_SHARD_SIZE = 25


@dataclass(frozen=True)
class FleetConfig:
    """How one fleet run executes (never *what* it evaluates)."""

    jobs: int | None = None          # None/1 serial, 0 = one per CPU
    via: str = "inprocess"           # "inprocess" | "serve"
    server: str = ""                 # host:port when via="serve"
    shard_size: int = DEFAULT_SHARD_SIZE
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.via not in ("inprocess", "serve"):
            raise ValueError(f"unknown via mode {self.via!r}")
        if self.via == "serve" and not self.server:
            raise ValueError("--via serve needs a --server host:port")


def _shard_path(rundir: Path, index: int) -> Path:
    return rundir / "shards" / f"shard-{index:05d}.json"


def _write_atomic(path: Path, payload: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(payload)
    os.replace(tmp, path)


def _load_checkpoint(path: Path, expected_ids: list[str]) -> list | None:
    """A shard's reports, or None when absent/torn/mismatched."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if raw.get("schema") != SHARD_SCHEMA:
        return None
    reports = raw.get("reports")
    if not isinstance(reports, list):
        return None
    if [r.get("id") for r in reports] != expected_ids:
        return None
    return reports


def _write_checkpoint(path: Path, index: int, reports: list) -> None:
    _write_atomic(path, json.dumps({
        "schema": SHARD_SCHEMA,
        "shard": index,
        "reports": reports,
    }, sort_keys=True) + "\n")


def pin_manifest(rundir: str | Path, manifest: Manifest) -> Path:
    """Store (or verify) the run directory's manifest."""
    rundir = Path(rundir)
    rundir.mkdir(parents=True, exist_ok=True)
    pinned = rundir / "manifest.json"
    if pinned.exists():
        if Manifest.load(pinned).to_json() != manifest.to_json():
            raise ValueError(
                f"{pinned} pins a different manifest; use a fresh "
                f"--rundir for a different corpus")
    else:
        manifest.save(pinned)
    return pinned


def _analyze_args(args: tuple) -> dict:
    item_dict, via, server = args
    return analyze_item(item_dict, via=via, server=server)


def _make_pool(config: FleetConfig, workers: int):
    if config.via == "serve":
        # HTTP-bound work: threads share the retrying client.
        return ThreadPoolExecutor(max_workers=workers)
    from ..stats.training import default_models
    default_models()   # warm once; forked workers inherit the cache
    return ProcessPoolExecutor(max_workers=workers)


def run_fleet(manifest: Manifest, rundir: str | Path,
              config: FleetConfig = FleetConfig(),
              progress=None) -> dict:
    """Execute (or resume) a fleet run; returns the trend document.

    ``progress`` is an optional ``callable(str)`` fed one line per
    shard -- the CLI passes ``print``, tests pass nothing.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    from ..obs.metrics import REGISTRY
    rundir = Path(rundir)
    manifest = manifest.limit(config.limit)
    if not len(manifest):
        raise ValueError("empty manifest")
    pin_manifest(rundir, manifest)

    shards = manifest.shards(config.shard_size)
    shard_ids = [[item.id for item in shard] for shard in shards]
    shard_gauge = REGISTRY.gauge(
        "repro_fleet_shards", "Fleet shard progress, by state")
    shard_seconds = REGISTRY.histogram(
        "repro_fleet_shard_seconds",
        "Wall-clock seconds per computed fleet shard")
    shard_gauge.set(len(shards), state="total")

    # Load completed checkpoints; collect what still needs computing.
    reports_by_shard: dict[int, list] = {}
    pending: list[int] = []
    for index, ids in enumerate(shard_ids):
        loaded = _load_checkpoint(_shard_path(rundir, index), ids)
        if loaded is not None:
            reports_by_shard[index] = loaded
        else:
            pending.append(index)
    if reports_by_shard:
        say(f"resume: {len(reports_by_shard)}/{len(shards)} shards "
            f"already checkpointed")
    shard_gauge.set(len(reports_by_shard), state="done")

    started = time.perf_counter()
    if pending:
        workers = effective_jobs(config.jobs)
        if workers <= 1:
            _run_serial(shards, pending, config, rundir, reports_by_shard,
                        shard_gauge, shard_seconds, say)
        else:
            _run_pooled(shards, pending, config, rundir, reports_by_shard,
                        workers, shard_gauge, shard_seconds, say)
    elapsed = time.perf_counter() - started

    reports = [report for index in range(len(shards))
               for report in reports_by_shard[index]]
    trend = aggregate(reports)
    write_trend(rundir / "trend.json", trend)
    publish_metrics(trend)
    computed = sum(len(shard_ids[i]) for i in pending)
    say(f"fleet: {trend['binaries']['ok']}/{trend['binaries']['total']} "
        f"ok, {trend['binaries']['failed']} quarantined "
        f"({computed} computed in {elapsed:.1f}s, "
        f"{len(reports) - computed} from checkpoints)")
    return trend


def _finish_shard(index: int, reports: list, rundir: Path,
                  reports_by_shard: dict, seconds: float,
                  shard_gauge, shard_seconds, say) -> None:
    _write_checkpoint(_shard_path(rundir, index), index, reports)
    reports_by_shard[index] = reports
    shard_gauge.inc(1, state="done")
    shard_seconds.observe(seconds)
    failed = sum(1 for r in reports if r["status"] != "ok")
    suffix = f" ({failed} quarantined)" if failed else ""
    say(f"shard {index:05d}: {len(reports)} binaries in "
        f"{seconds:.1f}s{suffix}")


def _run_serial(shards, pending, config, rundir, reports_by_shard,
                shard_gauge, shard_seconds, say) -> None:
    for index in pending:
        shard_started = time.perf_counter()
        reports = [analyze_item(item.to_dict(), via=config.via,
                                server=config.server)
                   for item in shards[index]]
        _finish_shard(index, reports, rundir, reports_by_shard,
                      time.perf_counter() - shard_started,
                      shard_gauge, shard_seconds, say)


def _run_pooled(shards, pending, config, rundir, reports_by_shard,
                workers, shard_gauge, shard_seconds, say) -> None:
    """Pool fan-out with per-shard checkpointing as shards complete.

    Every pending item is submitted up front so the pool stays busy
    across shard boundaries; checkpoints are written in shard order as
    each shard's futures finish.  A broken pool (crashed worker) is
    absorbed by recomputing the affected items in the coordinator.
    """
    pool = _make_pool(config, workers)
    pool_broken = False
    try:
        futures: dict[int, list[tuple[dict, Future]]] = {}
        for index in pending:
            futures[index] = [
                (item.to_dict(),
                 pool.submit(_analyze_args,
                             (item.to_dict(), config.via, config.server)))
                for item in shards[index]]
        shard_started = time.perf_counter()
        for index in pending:
            reports = []
            for item_dict, future in futures[index]:
                try:
                    reports.append(future.result())
                except Exception as error:  # noqa: BLE001 -- pool crash
                    if not pool_broken:
                        pool_broken = True
                        say(f"worker pool failed ({type(error).__name__}:"
                            f" {error}); finishing in-process")
                    reports.append(analyze_item(item_dict, via=config.via,
                                                server=config.server))
            _finish_shard(index, reports, rundir, reports_by_shard,
                          time.perf_counter() - shard_started,
                          shard_gauge, shard_seconds, say)
            shard_started = time.perf_counter()
    finally:
        # A broken pool can hang on orderly shutdown; don't wait on it.
        pool.shutdown(wait=not pool_broken, cancel_futures=pool_broken)


def detect_shard_size(rundir: str | Path) -> int | None:
    """The shard size of a run directory's existing checkpoints.

    Recovered as the longest checkpointed shard (every shard but the
    last is full-size).  ``None`` when nothing is checkpointed yet --
    ``evalfleet resume`` uses this so a resumed run keeps the
    interrupted run's sharding without re-passing ``--shard-size``.
    """
    shard_dir = Path(rundir) / "shards"
    sizes = []
    if shard_dir.is_dir():
        for path in sorted(shard_dir.glob("shard-*.json")):
            try:
                sizes.append(len(json.loads(path.read_text())["reports"]))
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
    return max(sizes, default=None)


def load_run_reports(rundir: str | Path) -> tuple[Manifest, list, int]:
    """Checkpointed reports of a (possibly unfinished) run directory.

    Returns the pinned manifest, every checkpointed report in manifest
    order, and the number of shards still missing -- ``repro evalfleet
    report`` uses this to summarize a run in flight.  The shard size
    is recovered from the first checkpoint on disk.
    """
    rundir = Path(rundir)
    manifest = Manifest.load(rundir / "manifest.json")
    shard_size = detect_shard_size(rundir) or DEFAULT_SHARD_SIZE
    reports: list = []
    missing = 0
    for index, shard in enumerate(manifest.shards(shard_size)):
        loaded = _load_checkpoint(_shard_path(rundir, index),
                                  [item.id for item in shard])
        if loaded is None:
            missing += 1
        else:
            reports.extend(loaded)
    return manifest, reports, missing
