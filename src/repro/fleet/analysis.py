"""Per-binary fleet analysis: lint + differential + optional exact F1.

One fleet worker call turns one :class:`~repro.fleet.manifest.FleetItem`
into a plain-dict *report* -- picklable across process pools, JSON-able
into shard checkpoints, and deliberately raw: reports carry lint rule
ids and byte confusions, and the aggregator maps them onto the error
taxonomy, so re-aggregating an old run with a newer taxonomy never
requires re-disassembling anything.

Three tools run per binary: the corrected superset disassembler (in
process, or through a running ``repro serve`` instance when
``via="serve"``), linear sweep, and recursive descent.  All three
claims are linted with the full oracle-free battery; pairwise byte
differentials between corrected and each baseline are recorded; and
synthetic items (which regenerate with exact labels) are additionally
scored against ground truth.

Failures are data, not exceptions: :func:`analyze_item` catches
everything and returns a ``status="failed"`` report, so one malformed
binary -- or one crashed parse -- can never abort a fleet.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..baselines import linear_sweep, recursive_descent
from ..binary.container import Binary
from ..binary.groundtruth import GroundTruth
from ..eval.metrics import evaluate
from ..eval.parallel import disassembler_for, repro_spec
from ..formats import load_any
from ..lint import lint_disassembly
from ..lint.diagnostics import LintReport
from ..result import DisassemblyResult
from ..superset.superset import cached_superset
from ..synth.corpus import generate_binary
from .manifest import FleetItem

#: Schema tag embedded in every per-binary report.
REPORT_SCHEMA = "repro-fleet-report-v1"

#: Tool names as they appear in reports and trends.
CORRECTED = "corrected"
BASELINES = ("linear-sweep", "recursive-descent")
ALL_TOOLS = (CORRECTED,) + BASELINES


def materialize(item: FleetItem) -> tuple[Binary, GroundTruth | None]:
    """Load or regenerate one item's binary (plus labels when synth)."""
    if item.kind == "synth":
        case = generate_binary(item.spec())
        return case.binary, case.truth
    image = load_any(Path(item.path).read_bytes())
    return image.binary, None


def _lint_counts(report: LintReport) -> dict[str, dict[str, int]]:
    """Diagnostic counts keyed rule -> severity -> count."""
    counts: dict[str, dict[str, int]] = {}
    for diagnostic in report.diagnostics:
        per_rule = counts.setdefault(diagnostic.rule, {})
        severity = diagnostic.severity.name.lower()
        per_rule[severity] = per_rule.get(severity, 0) + 1
    return counts


def _gt_counts(result: DisassemblyResult, truth: GroundTruth) -> dict:
    """Exact byte/instruction confusion against synthetic labels."""
    scored = evaluate(result, truth)
    return {
        "false_code": scored.bytes.false_code,
        "missed_code": scored.bytes.missed_code,
        "code_bytes": scored.bytes.code_bytes,
        "data_bytes": scored.bytes.data_bytes,
        "instr_tp": scored.instructions.true_positives,
        "instr_fp": scored.instructions.false_positives,
        "instr_fn": scored.instructions.false_negatives,
    }


def _differential(corrected: DisassemblyResult,
                  baseline: DisassemblyResult) -> dict:
    """Pairwise byte/entry disagreement (the oracle-free error signal).

    ``corrected_only_code`` counts bytes only the corrected tool claims
    as code (its false-code suspects under a differential reading);
    ``baseline_only_code`` the converse (the corrected tool's
    missed-code suspects); entry counts disagree on function starts.
    """
    ours = corrected.code_byte_offsets()
    theirs = baseline.code_byte_offsets()
    return {
        "corrected_only_code": len(ours - theirs),
        "baseline_only_code": len(theirs - ours),
        "entry_only_corrected": len(corrected.function_entries
                                    - baseline.function_entries),
        "entry_only_baseline": len(baseline.function_entries
                                   - corrected.function_entries),
    }


# ----------------------------------------------------------------------
# The serve-backed corrected path
# ----------------------------------------------------------------------

#: One client per (process, server) -- threads share it safely because
#: ServeClient opens a fresh connection per request.
_CLIENTS: dict[str, object] = {}


def _serve_client(server: str):
    client = _CLIENTS.get(server)
    if client is None:
        from ..serve.client import ServeClient
        host, _, port = server.partition(":")
        client = ServeClient(host=host or "127.0.0.1",
                             port=int(port) if port else 8080,
                             retries=4, backoff=0.2)
        _CLIENTS[server] = client
    return client


def _corrected_via_serve(server: str, binary: Binary
                         ) -> tuple[DisassemblyResult, LintReport]:
    """Fetch the corrected claim + its lint report from a live server.

    The server's lint job lints exactly the way the in-process path
    does (same rule battery, same fact export), so reports -- and
    therefore trends -- are byte-identical across ``--via`` modes.
    """
    client = _serve_client(server)
    blob = binary.to_bytes()
    result = DisassemblyResult.from_json(
        json.dumps(client.disassemble(blob)["result"]))
    report = LintReport.from_json(
        json.dumps(client.lint(blob)["report"]))
    return result, report


def _corrected_in_process(binary: Binary
                          ) -> tuple[DisassemblyResult, LintReport]:
    rich = disassembler_for(repro_spec()).disassemble_rich(binary)
    report = lint_disassembly(rich.result, rich.superset,
                              facts=rich.facts)
    return rich.result, report


# ----------------------------------------------------------------------
# The worker entry point
# ----------------------------------------------------------------------

def analyze_item(item_dict: dict, via: str = "inprocess",
                 server: str = "") -> dict:
    """Run the full analysis stage for one manifest item.

    Accepts and returns plain dicts so it can cross a process pool
    unchanged.  Never raises: any failure (malformed file, crashed
    parse, unreachable server) comes back as a quarantined
    ``status="failed"`` report.
    """
    item = FleetItem.from_dict(item_dict)
    report: dict = {"schema": REPORT_SCHEMA, "id": item.id,
                    "status": "ok", "error": "",
                    "style": item.style if item.kind == "synth" else "file"}
    try:
        binary, truth = materialize(item)
        text = binary.text.data
        superset = cached_superset(text)

        if via == "serve":
            corrected, corrected_lint = _corrected_via_serve(server, binary)
        else:
            corrected, corrected_lint = _corrected_in_process(binary)
        results = {
            CORRECTED: corrected,
            "linear-sweep": linear_sweep(text, superset=superset),
            "recursive-descent": recursive_descent(text, 0,
                                                   superset=superset),
        }
        lint_reports = {CORRECTED: corrected_lint}
        for name in BASELINES:
            lint_reports[name] = lint_disassembly(results[name], superset)

        report["text_bytes"] = len(text)
        report["tools"] = {
            name: {
                "lint": _lint_counts(lint_reports[name]),
                "gt": (_gt_counts(results[name], truth)
                       if truth is not None else None),
            }
            for name in ALL_TOOLS
        }
        report["diff"] = {
            name: _differential(corrected, results[name])
            for name in BASELINES
        }
    except Exception as error:  # noqa: BLE001 -- quarantined by design
        report["status"] = "failed"
        report["error"] = f"{type(error).__name__}: {error}"
        report.pop("tools", None)
        report.pop("diff", None)
    return report
