"""``repro evalfleet``: plan / run / resume / report / diff.

The CLI surface of the evaluation fleet.  ``plan`` writes a
reproducible manifest (synthetic grid and/or ingested directories),
``run`` executes it with checkpointed shards, ``resume`` re-enters an
interrupted run directory, ``report`` re-aggregates whatever is
checkpointed so far, and ``diff`` gates one trend against a committed
baseline -- exiting non-zero on taxonomy regression, which is what
turns the fleet into a population-level CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from ..synth.styles import STYLES
from .aggregate import (aggregate, check_separation, compare_trends,
                        load_trend, publish_metrics, render_report,
                        trend_json, write_trend)
from .driver import DEFAULT_SHARD_SIZE, FleetConfig, run_fleet
from .manifest import (Manifest, ingest_directory, parse_seed_range,
                       plan_grid)


@contextmanager
def _profile_run(args: argparse.Namespace):
    """Sampling-profiler scope for a fleet run.

    ``--sample-profile`` (or ``REPRO_PROFILE``) samples the coordinator
    for the duration of the run and writes the ``repro-profile-v1``
    document -- by default into the run directory, next to the trend
    and checkpoints, where ``repro obs record`` picks it up.  Yields
    the output path, or None when profiling is off.
    """
    from ..obs.profile import profile_path_from_env, profiling
    raw = getattr(args, "sample_profile", None)
    if raw is None:
        raw = profile_path_from_env()
    if raw is None:
        yield None
        return
    path = raw or str(Path(args.rundir) / "profile.json")
    with profiling(path, command="evalfleet", jobs=args.jobs or 1):
        yield path


def _parse_functions(text: str) -> list[int]:
    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"bad --functions {text!r} "
                         f"(expected comma-separated integers)") from None
    if not counts:
        raise ValueError("--functions must name at least one count")
    return counts


def cmd_plan(args: argparse.Namespace) -> int:
    items: list = []
    if args.manifest:
        items.extend(Manifest.load(args.manifest).items)
    if args.ingest:
        for directory in args.ingest:
            items.extend(ingest_directory(directory))
    if args.grid or not items:
        chosen = args.style or ["all"]
        styles = sorted(STYLES) if "all" in chosen else \
            sorted(set(chosen))
        try:
            seeds = parse_seed_range(args.seed_range)
            counts = _parse_functions(args.functions)
        except ValueError as error:
            print(f"evalfleet plan: {error}", file=sys.stderr)
            return 2
        items.extend(plan_grid(styles, counts, seeds))
    try:
        manifest = Manifest(items).limit(args.limit)
    except ValueError as error:
        print(f"evalfleet plan: {error}", file=sys.stderr)
        return 2
    manifest.save(args.output)
    synth = sum(1 for item in manifest if item.kind == "synth")
    print(f"wrote {args.output}: {len(manifest)} binaries "
          f"({synth} synthetic, {len(manifest) - synth} from disk)")
    return 0


def _execute(manifest: Manifest, args: argparse.Namespace) -> int:
    config = FleetConfig(jobs=args.jobs, via=args.via,
                         server=args.server,
                         shard_size=args.shard_size,
                         limit=getattr(args, "limit", None))
    with _profile_run(args) as profile_sink:
        trend = run_fleet(manifest, args.rundir, config, progress=print)
    if profile_sink is not None:
        print(f"wrote {profile_sink} (sampling profile)")
    if args.trend:
        write_trend(args.trend, trend)
        print(f"wrote {args.trend}")

    problems: list[str] = []
    if args.trend_baseline:
        baseline = load_trend(args.trend_baseline)
        problems = compare_trends(trend, baseline,
                                  rel_tol=args.tolerance)
    elif args.check_separation:
        problems = check_separation(trend)
    for problem in problems:
        print(f"GATE: {problem}", file=sys.stderr)
    if problems:
        print(f"evalfleet: {len(problems)} gate violation(s)",
              file=sys.stderr)
        return 1
    if args.trend_baseline:
        print("gate: no taxonomy regression vs baseline")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    try:
        manifest = Manifest.load(args.manifest)
    except (OSError, ValueError) as error:
        print(f"evalfleet run: {args.manifest}: {error}", file=sys.stderr)
        return 2
    try:
        return _execute(manifest, args)
    except ValueError as error:
        print(f"evalfleet run: {error}", file=sys.stderr)
        return 2


def cmd_resume(args: argparse.Namespace) -> int:
    from pathlib import Path
    pinned = Path(args.rundir) / "manifest.json"
    try:
        manifest = Manifest.load(pinned)
    except (OSError, ValueError) as error:
        print(f"evalfleet resume: {pinned}: {error} "
              f"(is this a fleet run directory?)", file=sys.stderr)
        return 2
    args.limit = None   # the pinned manifest is already limited
    if args.shard_size is None:   # keep the interrupted run's sharding
        from .driver import detect_shard_size
        args.shard_size = detect_shard_size(args.rundir) \
            or DEFAULT_SHARD_SIZE
    try:
        return _execute(manifest, args)
    except ValueError as error:
        print(f"evalfleet resume: {error}", file=sys.stderr)
        return 2


def cmd_report(args: argparse.Namespace) -> int:
    from .driver import load_run_reports
    try:
        _, reports, missing = load_run_reports(args.rundir)
    except (OSError, ValueError) as error:
        print(f"evalfleet report: {args.rundir}: {error}",
              file=sys.stderr)
        return 2
    if not reports:
        print(f"evalfleet report: {args.rundir}: no checkpointed "
              f"shards yet", file=sys.stderr)
        return 2
    trend = aggregate(reports)
    if missing:
        print(f"note: {missing} shard(s) not yet checkpointed; "
              f"this is a partial view", file=sys.stderr)
    if args.format == "json":
        sys.stdout.write(trend_json(trend))
    elif args.format == "prometheus":
        from ..obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        publish_metrics(trend, registry)
        sys.stdout.write(registry.render_prometheus())
    else:
        print(render_report(trend))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        current = load_trend(args.current)
        baseline = load_trend(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"evalfleet diff: {error}", file=sys.stderr)
        return 2
    problems = compare_trends(current, baseline, rel_tol=args.tolerance)
    for problem in problems:
        print(f"GATE: {problem}", file=sys.stderr)
    if problems:
        print(f"evalfleet diff: {len(problems)} regression(s) vs "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"evalfleet diff: no taxonomy regression "
          f"({args.current} vs {args.baseline})")
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rundir", required=True,
                        help="checkpoint directory (resumable)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel workers (0 = one per CPU)")
    parser.add_argument("--via", choices=("inprocess", "serve"),
                        default="inprocess",
                        help="run the corrected tool in worker "
                             "processes or through a live server")
    parser.add_argument("--server", default="", metavar="HOST:PORT",
                        help="the `repro serve` instance for "
                             "--via serve")
    parser.add_argument("--shard-size", type=int,
                        default=DEFAULT_SHARD_SIZE,
                        help="binaries per checkpoint shard")
    parser.add_argument("--trend", metavar="PATH", default=None,
                        help="also write the trend JSON here "
                             "(rundir/trend.json is always written)")
    parser.add_argument("--trend-baseline", metavar="PATH", default=None,
                        help="gate against this trend (or BENCH json "
                             "embedding one); exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative regression tolerance for the "
                             "gate (default: 0.02)")
    parser.add_argument("--check-separation", action="store_true",
                        help="fail unless corrected separates from "
                             "every baseline where the paper predicts")
    parser.add_argument("--sample-profile", metavar="PATH", nargs="?",
                        const="", default=None,
                        help="sample the coordinator and write a "
                             "repro-profile-v1 document (default: "
                             "RUNDIR/profile.json; also honors "
                             "REPRO_PROFILE)")


def add_evalfleet_parser(sub) -> None:
    """Attach the ``evalfleet`` subcommand tree to the root CLI."""
    evalfleet = sub.add_parser(
        "evalfleet",
        help="corpus-scale oracle-free evaluation fleet")
    fleet_sub = evalfleet.add_subparsers(dest="fleet_command",
                                         required=True)

    plan = fleet_sub.add_parser(
        "plan", help="write a reproducible corpus manifest")
    plan.add_argument("output", help="manifest path to write")
    plan.add_argument("--style", action="append",
                      default=None, choices=(*sorted(STYLES), "all"),
                      help="synthetic style (repeatable; default all)")
    plan.add_argument("--functions", default="4,8",
                      help="comma-separated function counts "
                           "(default: 4,8)")
    plan.add_argument("--seed-range", default="0:10", metavar="A:B",
                      help="seeds A..B-1 per style/size (default 0:10)")
    plan.add_argument("--ingest", action="append", metavar="DIR",
                      help="add every recognized ELF/PE/native binary "
                           "under DIR (repeatable)")
    plan.add_argument("--manifest", metavar="IN.json", default=None,
                      help="merge an existing manifest (e.g. one "
                           "written by `repro generate --manifest`)")
    plan.add_argument("--grid", action="store_true",
                      help="add the synthetic grid even when --manifest"
                           "/--ingest already provided items")
    plan.add_argument("--limit", type=int, default=None,
                      help="keep only the first N items")
    plan.set_defaults(func=cmd_plan)

    run = fleet_sub.add_parser(
        "run", help="execute a manifest with checkpointed shards")
    run.add_argument("manifest", help="manifest JSON from `plan`")
    _add_execution_flags(run)
    run.add_argument("--limit", type=int, default=None,
                     help="evaluate only the first N manifest items")
    run.set_defaults(func=cmd_run)

    resume = fleet_sub.add_parser(
        "resume", help="re-enter an interrupted run directory")
    _add_execution_flags(resume)
    # Unless overridden, keep the sharding the interrupted run used.
    resume.set_defaults(func=cmd_resume, shard_size=None)

    report = fleet_sub.add_parser(
        "report", help="aggregate a run directory's checkpoints")
    report.add_argument("rundir", help="fleet run directory")
    report.add_argument("--format",
                        choices=("text", "json", "prometheus"),
                        default="text")
    report.set_defaults(func=cmd_report)

    diff = fleet_sub.add_parser(
        "diff", help="gate one trend against a baseline trend")
    diff.add_argument("current", help="trend JSON under test")
    diff.add_argument("baseline",
                      help="baseline trend JSON (or a BENCH_fleet.json "
                           "embedding one)")
    diff.add_argument("--tolerance", type=float, default=0.02)
    diff.set_defaults(func=cmd_diff)
