"""Fleet aggregation: raw per-binary reports -> taxonomy trend + gate.

The aggregator is a pure function from a set of per-binary reports to
one schema-versioned *trend* document: every lint diagnostic mapped
onto the shared error taxonomy, ground-truth byte confusions pooled
per tool and per style, differential disagreement summed, and the
corrected-vs-baseline separation the paper predicts evaluated
explicitly.  Nothing time- or machine-dependent enters the trend, so
it is byte-identical for a given manifest regardless of worker count,
shard order, ``--via`` mode, or how many times the run was killed and
resumed -- which is what makes it safe to commit as a regression
baseline and diff in CI.
"""

from __future__ import annotations

import json
from pathlib import Path

from .analysis import ALL_TOOLS, BASELINES, CORRECTED
from .taxonomy import (ALL_CLASSES, EXPECTED_SEPARATIONS, ErrorClass,
                       taxonomy_of)

#: Schema tag embedded in every trend document.
TREND_SCHEMA = "repro-fleet-trend-v1"

#: Decimal places for derived rates (fixed so trends stay
#: byte-comparable).
_RATE_DIGITS = 8


def _empty_taxonomy() -> dict:
    return {cls.value: {"diagnostics": 0, "errors": 0}
            for cls in ALL_CLASSES}


def _fold_lint(into: dict, lint: dict) -> None:
    """Fold one report's rule->severity->count map into a tool bucket."""
    for rule, severities in lint.items():
        count = sum(severities.values())
        into["lint_rules"][rule] = into["lint_rules"].get(rule, 0) + count
        bucket = into["taxonomy"][taxonomy_of(rule).value]
        bucket["diagnostics"] += count
        bucket["errors"] += severities.get("error", 0)


def _fold_gt(into: dict, gt: dict) -> None:
    into["binaries"] += 1
    for key in ("false_code", "missed_code", "code_bytes", "data_bytes",
                "instr_tp", "instr_fp", "instr_fn"):
        into[key] += gt[key]


def _empty_gt() -> dict:
    return {"binaries": 0, "false_code": 0, "missed_code": 0,
            "code_bytes": 0, "data_bytes": 0,
            "instr_tp": 0, "instr_fp": 0, "instr_fn": 0}


def _derive_gt_rates(gt: dict) -> dict:
    """Attach pooled byte-error rates and instruction F1 to a GT pool."""
    out = dict(gt)
    scored = gt["code_bytes"] + gt["data_bytes"]
    out["scored_bytes"] = scored
    for key, numerator in (("false_code_rate", gt["false_code"]),
                           ("missed_code_rate", gt["missed_code"]),
                           ("total_error_rate",
                            gt["false_code"] + gt["missed_code"])):
        out[key] = round(numerator / scored, _RATE_DIGITS) if scored else 0.0
    tp, fp, fn = gt["instr_tp"], gt["instr_fp"], gt["instr_fn"]
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    out["instr_f1"] = round(2 * precision * recall / (precision + recall)
                            if precision + recall else 0.0, _RATE_DIGITS)
    return out


def _gt_axis(gt: dict, axis: str) -> int:
    if axis == "false-code":
        return gt["false_code"]
    if axis == "missed-code":
        return gt["missed_code"]
    if axis == "total":
        return gt["false_code"] + gt["missed_code"]
    raise ValueError(f"unknown separation axis {axis!r}")


def aggregate(reports: list[dict]) -> dict:
    """Pool per-binary reports into one deterministic trend document.

    Input order does not matter: reports are re-sorted by item id, and
    every output map is emitted with sorted keys.
    """
    reports = sorted(reports, key=lambda r: r["id"])
    ids = [r["id"] for r in reports]
    if len(set(ids)) != len(ids):
        duplicate = next(i for i in ids if ids.count(i) > 1)
        raise ValueError(f"duplicate report for item {duplicate}")

    tools = {name: {"lint_rules": {}, "taxonomy": _empty_taxonomy(),
                    "gt": _empty_gt()}
             for name in ALL_TOOLS}
    styles: dict[str, dict] = {}
    diff = {name: {"corrected_only_code": 0, "baseline_only_code": 0,
                   "entry_only_corrected": 0, "entry_only_baseline": 0}
            for name in BASELINES}
    failures = []
    ok = 0

    for report in reports:
        if report["status"] != "ok":
            failures.append({"id": report["id"],
                             "error": report.get("error", "")})
            continue
        ok += 1
        style = styles.setdefault(report.get("style", "file"), {
            "binaries": 0,
            "tools": {name: {"taxonomy_errors":
                             {cls.value: 0 for cls in ALL_CLASSES},
                             "gt": _empty_gt()}
                      for name in ALL_TOOLS}})
        style["binaries"] += 1
        for name in ALL_TOOLS:
            per_tool = report["tools"][name]
            _fold_lint(tools[name], per_tool["lint"])
            for rule, severities in per_tool["lint"].items():
                errors = severities.get("error", 0)
                if errors:
                    style["tools"][name]["taxonomy_errors"][
                        taxonomy_of(rule).value] += errors
            if per_tool["gt"] is not None:
                _fold_gt(tools[name]["gt"], per_tool["gt"])
                _fold_gt(style["tools"][name]["gt"], per_tool["gt"])
        for name in BASELINES:
            for key, value in report["diff"][name].items():
                diff[name][key] += value

    # The paper-predicted separation, evaluated on pooled ground truth
    # (synthetic items only; absent when the corpus has no labels).
    separation: dict[str, dict] = {}
    if tools[CORRECTED]["gt"]["binaries"]:
        for baseline, axes in EXPECTED_SEPARATIONS.items():
            separation[baseline] = {}
            for axis in axes:
                ours = _gt_axis(tools[CORRECTED]["gt"], axis)
                theirs = _gt_axis(tools[baseline]["gt"], axis)
                separation[baseline][axis] = {
                    "corrected": ours, "baseline": theirs,
                    "holds": ours < theirs}

    for name in ALL_TOOLS:
        tools[name]["gt"] = _derive_gt_rates(tools[name]["gt"])
        for style in styles.values():
            style["tools"][name]["gt"] = _derive_gt_rates(
                style["tools"][name]["gt"])

    return {
        "schema": TREND_SCHEMA,
        "binaries": {"total": len(reports), "ok": ok,
                     "failed": len(failures)},
        "failures": sorted(failures, key=lambda f: f["id"]),
        "tools": tools,
        "styles": styles,
        "diff": diff,
        "separation": separation,
    }


def trend_json(trend: dict) -> str:
    """The canonical byte representation of a trend document."""
    return json.dumps(trend, indent=2, sort_keys=True) + "\n"


def write_trend(path: str | Path, trend: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trend_json(trend))
    return path


def load_trend(path: str | Path) -> dict:
    """Read a trend document; accepts a BENCH_*.json that embeds one."""
    raw = json.loads(Path(path).read_text())
    if raw.get("schema") == TREND_SCHEMA:
        return raw
    embedded = raw.get("trend")
    if isinstance(embedded, dict) and embedded.get("schema") == TREND_SCHEMA:
        return embedded
    raise ValueError(f"{path}: not a fleet trend document "
                     f"(schema={raw.get('schema')!r})")


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------

def check_separation(trend: dict) -> list[str]:
    """Failure messages when the paper-predicted separation breaks."""
    problems = []
    separation = trend.get("separation") or {}
    for baseline in sorted(EXPECTED_SEPARATIONS):
        axes = separation.get(baseline)
        if axes is None:
            problems.append(f"separation vs {baseline}: not evaluated "
                            f"(no ground-truth-scored binaries)")
            continue
        for axis, cell in sorted(axes.items()):
            if not cell["holds"]:
                problems.append(
                    f"separation vs {baseline} on {axis}: corrected "
                    f"{cell['corrected']} is not strictly below "
                    f"{cell['baseline']}")
    return problems


def compare_trends(current: dict, baseline: dict, *,
                   rel_tol: float = 0.02,
                   abs_tol: float = 0.05) -> list[str]:
    """Regression messages for the corrected tool vs a baseline trend.

    Gated quantities are *rates* (per scored byte for ground-truth
    classes, per evaluated binary for lint-derived taxonomy errors), so
    the gate survives corpus growth.  A value regresses when it
    exceeds ``baseline * (1 + rel_tol) + abs_tol_scaled``.  Baseline
    errors/failures the current run fixed never fail the gate.
    """
    problems = []

    current_ok = max(current["binaries"]["ok"], 1)
    baseline_ok = max(baseline["binaries"]["ok"], 1)
    cur_fail = current["binaries"]["failed"] / max(
        current["binaries"]["total"], 1)
    base_fail = baseline["binaries"]["failed"] / max(
        baseline["binaries"]["total"], 1)
    if cur_fail > base_fail * (1 + rel_tol) + 0.01:
        problems.append(f"failure rate regressed: {cur_fail:.4f} vs "
                        f"baseline {base_fail:.4f}")

    current_tool = current["tools"][CORRECTED]
    baseline_tool = baseline["tools"][CORRECTED]
    for cls in ALL_CLASSES:
        ours = (current_tool["taxonomy"][cls.value]["errors"]
                / current_ok)
        theirs = (baseline_tool["taxonomy"][cls.value]["errors"]
                  / baseline_ok)
        if ours > theirs * (1 + rel_tol) + abs_tol:
            problems.append(
                f"taxonomy regression [{cls.value}]: corrected error "
                f"diagnostics {ours:.4f}/binary vs baseline "
                f"{theirs:.4f}/binary")

    for rate, cls in (("false_code_rate", ErrorClass.FALSE_CODE),
                      ("missed_code_rate", ErrorClass.MISSED_CODE),
                      ("total_error_rate", None)):
        ours = current_tool["gt"].get(rate, 0.0)
        theirs = baseline_tool["gt"].get(rate, 0.0)
        if ours > theirs * (1 + rel_tol) + 1e-4:
            label = cls.value if cls else "total"
            problems.append(f"ground-truth regression [{label}]: "
                            f"corrected {rate}={ours} vs baseline "
                            f"{theirs}")

    problems.extend(check_separation(current))
    return problems


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------

def publish_metrics(trend: dict, registry=None) -> None:
    """Publish a trend through the PR-5 metrics registry.

    Fleet metrics carry the ``repro_fleet_`` prefix so a Prometheus
    scrape of any process that ran (or re-aggregated) a fleet shows
    the quality dashboard next to the serving metrics.
    """
    if registry is None:
        from ..obs.metrics import REGISTRY as registry  # noqa: N813

    binaries = registry.counter(
        "repro_fleet_binaries_total",
        "Fleet binaries evaluated, by outcome")
    binaries.inc(trend["binaries"]["ok"], status="ok")
    binaries.inc(trend["binaries"]["failed"], status="failed")

    diagnostics = registry.counter(
        "repro_fleet_taxonomy_total",
        "Fleet lint diagnostics, by tool and error class")
    errors = registry.counter(
        "repro_fleet_taxonomy_errors_total",
        "Fleet ERROR-severity lint diagnostics, by tool and error class")
    for tool, per_tool in trend["tools"].items():
        for cls, bucket in per_tool["taxonomy"].items():
            if bucket["diagnostics"]:
                diagnostics.inc(bucket["diagnostics"], tool=tool,
                                **{"class": cls})
            if bucket["errors"]:
                errors.inc(bucket["errors"], tool=tool, **{"class": cls})

    gt_bytes = registry.counter(
        "repro_fleet_gt_error_bytes_total",
        "Ground-truth byte errors across the fleet, by tool and class")
    for tool, per_tool in trend["tools"].items():
        gt = per_tool["gt"]
        if gt["binaries"]:
            gt_bytes.inc(gt["false_code"], tool=tool,
                         **{"class": ErrorClass.FALSE_CODE.value})
            gt_bytes.inc(gt["missed_code"], tool=tool,
                         **{"class": ErrorClass.MISSED_CODE.value})

    disagreement = registry.counter(
        "repro_fleet_diff_bytes_total",
        "Corrected-vs-baseline differential disagreement bytes")
    for baseline, counts in trend["diff"].items():
        disagreement.inc(counts["corrected_only_code"], baseline=baseline,
                         side="corrected-only")
        disagreement.inc(counts["baseline_only_code"], baseline=baseline,
                         side="baseline-only")

    holds = registry.gauge(
        "repro_fleet_separation_ok",
        "1 when the paper-predicted corrected-vs-baseline separation "
        "holds on this axis")
    for baseline, axes in (trend.get("separation") or {}).items():
        for axis, cell in axes.items():
            holds.set(1.0 if cell["holds"] else 0.0,
                      baseline=baseline, axis=axis)


def render_report(trend: dict) -> str:
    """Human-readable fleet summary for ``repro evalfleet report``."""
    lines = []
    binaries = trend["binaries"]
    lines.append(f"fleet: {binaries['ok']}/{binaries['total']} binaries "
                 f"ok, {binaries['failed']} quarantined")
    lines.append("")
    lines.append(f"{'error class':<22s}" + "".join(
        f"{tool:>20s}" for tool in ALL_TOOLS))
    for cls in ALL_CLASSES:
        row = f"{cls.value:<22s}"
        for tool in ALL_TOOLS:
            bucket = trend["tools"][tool]["taxonomy"][cls.value]
            row += f"{bucket['errors']:>10d}/{bucket['diagnostics']:<9d}"
        lines.append(row)
    lines.append("(cells are ERROR-severity/all lint diagnostics)")

    gt = trend["tools"][CORRECTED]["gt"]
    if gt["binaries"]:
        lines.append("")
        lines.append(f"{'ground truth':<22s}" + "".join(
            f"{tool:>20s}" for tool in ALL_TOOLS))
        for key in ("false_code", "missed_code", "total_error_rate",
                    "instr_f1"):
            row = f"{key:<22s}"
            for tool in ALL_TOOLS:
                value = trend["tools"][tool]["gt"][key]
                row += (f"{value:>20.6f}" if isinstance(value, float)
                        else f"{value:>20d}")
            lines.append(row)
    if trend.get("separation"):
        lines.append("")
        for baseline, axes in sorted(trend["separation"].items()):
            for axis, cell in sorted(axes.items()):
                verdict = "ok" if cell["holds"] else "VIOLATED"
                lines.append(f"separation vs {baseline:<18s} {axis:<12s}"
                             f" corrected {cell['corrected']} < "
                             f"{cell['baseline']}  [{verdict}]")
    for failure in trend["failures"]:
        lines.append(f"quarantined: {failure['id']}: {failure['error']}")
    return "\n".join(lines)
