"""Corpus-scale oracle-free evaluation fleet (``repro evalfleet``).

Turns the per-binary lint / differential / ground-truth machinery into
continuous QA at corpus scale: a reproducible manifest of thousands of
binaries (:mod:`repro.fleet.manifest`), a fault-tolerant checkpointing
driver over worker pools or a live serve tier
(:mod:`repro.fleet.driver`), a per-binary analysis stage
(:mod:`repro.fleet.analysis`), a shared error taxonomy every signal
maps onto (:mod:`repro.fleet.taxonomy`), and an aggregator emitting a
deterministic trend document plus Prometheus-scrapeable ``fleet_*``
metrics and a regression gate (:mod:`repro.fleet.aggregate`).
"""

from .aggregate import (TREND_SCHEMA, aggregate, check_separation,
                        compare_trends, load_trend, publish_metrics,
                        render_report, trend_json, write_trend)
from .analysis import ALL_TOOLS, BASELINES, CORRECTED, analyze_item
from .driver import (DEFAULT_SHARD_SIZE, SHARD_SCHEMA, FleetConfig,
                     load_run_reports, run_fleet)
from .manifest import (MANIFEST_SCHEMA, FleetItem, Manifest,
                       ingest_directory, parse_seed_range, plan_grid)
from .taxonomy import (ALL_CLASSES, EXPECTED_SEPARATIONS,
                       LINT_RULE_TAXONOMY, ErrorClass, taxonomy_of)

__all__ = [
    "ALL_CLASSES",
    "ALL_TOOLS",
    "BASELINES",
    "CORRECTED",
    "DEFAULT_SHARD_SIZE",
    "EXPECTED_SEPARATIONS",
    "ErrorClass",
    "FleetConfig",
    "FleetItem",
    "LINT_RULE_TAXONOMY",
    "MANIFEST_SCHEMA",
    "Manifest",
    "SHARD_SCHEMA",
    "TREND_SCHEMA",
    "aggregate",
    "analyze_item",
    "check_separation",
    "compare_trends",
    "ingest_directory",
    "load_run_reports",
    "load_trend",
    "parse_seed_range",
    "plan_grid",
    "publish_metrics",
    "render_report",
    "run_fleet",
    "taxonomy_of",
    "trend_json",
    "write_trend",
]
