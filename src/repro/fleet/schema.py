"""Validator for the fleet document schemas (manifest / shard / trend).

One authoritative definition CI and the test suite share, mirroring
:mod:`repro.obs.schema`.  Usable as a library
(:func:`validate_document`, :func:`validate_file`) and as a command::

    python -m repro.fleet.schema benchmarks/results/TREND.json

which dispatches on the embedded ``schema`` tag, exits non-zero on the
first violation, and prints a one-line summary on success.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .aggregate import TREND_SCHEMA
from .analysis import ALL_TOOLS, REPORT_SCHEMA
from .driver import SHARD_SCHEMA
from .manifest import MANIFEST_SCHEMA, FleetItem
from .taxonomy import ALL_CLASSES


class SchemaError(ValueError):
    """A fleet document violates its declared schema."""


def _require(raw: dict, field: str, kind) -> object:
    if field not in raw:
        raise SchemaError(f"missing required field {field!r}")
    value = raw[field]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise SchemaError(
            f"field {field!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}")
    return value


def _validate_manifest(raw: dict) -> dict:
    items = _require(raw, "items", list)
    seen: set[str] = set()
    for index, item in enumerate(items):
        try:
            fleet_item = FleetItem.from_dict(item)
        except (ValueError, KeyError, TypeError) as error:
            raise SchemaError(f"items[{index}]: {error}") from None
        if fleet_item.id in seen:
            raise SchemaError(f"items[{index}]: duplicate id "
                              f"{fleet_item.id}")
        seen.add(fleet_item.id)
    if not items:
        raise SchemaError("manifest has no items")
    return {"kind": "manifest", "items": len(items)}


def validate_report(raw: dict) -> dict:
    """Check one per-binary report; returns it for chaining."""
    if raw.get("schema") != REPORT_SCHEMA:
        raise SchemaError(f"report schema must be {REPORT_SCHEMA!r}, "
                          f"got {raw.get('schema')!r}")
    _require(raw, "id", str)
    status = _require(raw, "status", str)
    if status not in ("ok", "failed"):
        raise SchemaError(f"unknown report status {status!r}")
    if status == "failed":
        if not raw.get("error"):
            raise SchemaError("failed report carries no error message")
        return raw
    tools = _require(raw, "tools", dict)
    for name in ALL_TOOLS:
        if name not in tools:
            raise SchemaError(f"report lacks tool {name!r}")
        per_tool = tools[name]
        lint = _require(per_tool, "lint", dict)
        for rule, severities in lint.items():
            if not isinstance(severities, dict):
                raise SchemaError(f"tool {name!r} rule {rule!r}: "
                                  f"severity map expected")
        if per_tool.get("gt") is not None and \
                not isinstance(per_tool["gt"], dict):
            raise SchemaError(f"tool {name!r}: gt must be object or null")
    _require(raw, "diff", dict)
    return raw


def _validate_shard(raw: dict) -> dict:
    _require(raw, "shard", int)
    reports = _require(raw, "reports", list)
    for index, report in enumerate(reports):
        try:
            validate_report(report)
        except SchemaError as error:
            raise SchemaError(f"reports[{index}]: {error}") from None
    return {"kind": "shard", "reports": len(reports)}


def _validate_trend(raw: dict) -> dict:
    binaries = _require(raw, "binaries", dict)
    for field in ("total", "ok", "failed"):
        _require(binaries, field, int)
    if binaries["ok"] + binaries["failed"] != binaries["total"]:
        raise SchemaError("binaries.ok + binaries.failed != total")
    failures = _require(raw, "failures", list)
    if len(failures) != binaries["failed"]:
        raise SchemaError("failures list disagrees with binaries.failed")
    tools = _require(raw, "tools", dict)
    for name in ALL_TOOLS:
        if name not in tools:
            raise SchemaError(f"trend lacks tool {name!r}")
        taxonomy = _require(tools[name], "taxonomy", dict)
        for cls in ALL_CLASSES:
            if cls.value not in taxonomy:
                raise SchemaError(f"tool {name!r} taxonomy lacks class "
                                  f"{cls.value!r}")
            bucket = taxonomy[cls.value]
            for field in ("diagnostics", "errors"):
                _require(bucket, field, int)
            if bucket["errors"] > bucket["diagnostics"]:
                raise SchemaError(
                    f"tool {name!r} class {cls.value!r}: errors exceed "
                    f"diagnostics")
        gt = _require(tools[name], "gt", dict)
        for field in ("binaries", "false_code", "missed_code",
                      "scored_bytes"):
            _require(gt, field, int)
    _require(raw, "styles", dict)
    _require(raw, "diff", dict)
    separation = _require(raw, "separation", dict)
    for baseline, axes in separation.items():
        if not isinstance(axes, dict):
            raise SchemaError(f"separation[{baseline!r}] must be object")
        for axis, cell in axes.items():
            for field in ("corrected", "baseline"):
                _require(cell, field, int)
            if not isinstance(cell.get("holds"), bool):
                raise SchemaError(
                    f"separation[{baseline!r}][{axis!r}].holds "
                    f"must be bool")
    return {"kind": "trend", "binaries": binaries["total"],
            "failed": binaries["failed"]}


_VALIDATORS = {
    MANIFEST_SCHEMA: _validate_manifest,
    SHARD_SCHEMA: _validate_shard,
    TREND_SCHEMA: _validate_trend,
}


def validate_document(raw: dict) -> dict:
    """Validate one decoded fleet document by its ``schema`` tag."""
    if not isinstance(raw, dict):
        raise SchemaError(f"document must be an object, "
                          f"got {type(raw).__name__}")
    schema = raw.get("schema")
    validator = _VALIDATORS.get(schema)
    if validator is None:
        raise SchemaError(
            f"unknown fleet schema {schema!r} (expected one of "
            f"{sorted(_VALIDATORS)})")
    return validator(raw)


def validate_file(path: str | Path) -> dict:
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SchemaError(f"not JSON: {error}") from error
    return validate_document(raw)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.fleet.schema FILE.json ...",
              file=sys.stderr)
        return 2
    for path in argv:
        try:
            summary = validate_file(path)
        except (OSError, SchemaError) as error:
            print(f"schema: {path}: {error}", file=sys.stderr)
            return 1
        detail = ", ".join(f"{key}={value}"
                           for key, value in summary.items()
                           if key != "kind")
        print(f"{path}: ok -- {summary['kind']} ({detail})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
