"""Superset disassembly: a candidate instruction at every byte offset.

The true disassembly of a text section is a subset of the superset
(every real instruction start decodes successfully), so computing the
superset first and then *deleting* wrong candidates -- rather than
guessing a single linear or recursive traversal -- is the foundation of
the paper's approach.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, replace
from functools import cached_property
from itertools import repeat

from ..isa import decoder as _decoder
from ..isa.decoder import try_decode
from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind
from ..isa.operands import MemOp, RelOp
from ..isa.tables import MAX_INSTRUCTION_LENGTH
from ..obs.metrics import REGISTRY

#: Identical bytes that must remain ahead of an offset before its decode
#: is guaranteed byte-for-byte identical (shifted) to the next offset's.
#: The decoder never commits to a result after reading more than
#: MAX_INSTRUCTION_LENGTH + a bounded overrun of prefix/immediate bytes,
#: so doubling the architectural limit is a safely conservative window.
_RUN_FAST_WINDOW = 2 * MAX_INSTRUCTION_LENGTH + 2

#: Maximal repeated-byte runs long enough to contain fast-path offsets:
#: a run matched at [s, e) has its first ``e - s - _RUN_FAST_WINDOW``
#: offsets still looking at ``_RUN_FAST_WINDOW`` identical bytes ahead.
#: Scanning for runs once up front (in C, via the regex engine) keeps
#: the per-offset sweep free of any run bookkeeping.
_RUN_RE = re.compile(rb"(.)\1{%d,}" % _RUN_FAST_WINDOW, re.DOTALL)


def _shifted(ins: Instruction, delta: int) -> Instruction:
    """The same encoding decoded ``delta`` bytes away: every absolute
    position (offset, branch targets, RIP-relative targets) moves by
    ``delta``; everything else is unchanged.

    This runs once per fast-path offset deep inside repeated-byte runs
    (alignment padding, NUL regions), so the shifted instruction is
    built by copying the field dict instead of re-running the frozen
    dataclass constructor.
    """
    shifted = dict(ins.__dict__)
    shifted["offset"] = ins.offset + delta
    operands = ins.operands
    new_ops = None
    for i, op in enumerate(operands):
        if type(op) is RelOp:
            if new_ops is None:
                new_ops = list(operands)
            new_ops[i] = RelOp(op.target + delta)
        elif type(op) is MemOp and op.rip_relative \
                and op.target is not None:
            if new_ops is None:
                new_ops = list(operands)
            new_ops[i] = replace(op, target=op.target + delta)
    if new_ops is not None:
        shifted["operands"] = tuple(new_ops)
    clone = Instruction.__new__(Instruction)
    object.__setattr__(clone, "__dict__", shifted)
    return clone


@dataclass
class Superset:
    """All candidate instructions of a text section, indexed by offset."""

    text: bytes
    instructions: list[Instruction | None]

    @classmethod
    def build(cls, text: bytes) -> Superset:
        """Decode a candidate at every offset (None where decoding fails).

        Long repeated-byte runs (alignment padding, NUL regions) take a
        fast path: deep inside such a run every offset sees an identical
        byte window, so its candidate is the next offset's candidate
        shifted by one byte -- no repeated decoding.  Runs are located
        up front with one regex scan, and the section is then built
        right to left region by region so each shifted clone's
        prototype already exists.
        """
        n = len(text)
        instructions: list[Instruction | None] = [None] * n
        dec = try_decode
        # Segment the section once: the per-offset sweep is a bare
        # ``map(dec, ...)`` (the loop runs in C; ``dec`` returns the
        # candidate or None directly), and only offsets deep inside a
        # repeated-byte run pay the shift-clone path instead.
        pos = n
        for match in reversed(list(_RUN_RE.finditer(text))):
            start = match.start()
            fast_hi = match.end() - _RUN_FAST_WINDOW
            instructions[fast_hi:pos] = map(dec, repeat(text),
                                            range(fast_hi, pos))
            for offset in range(fast_hi - 1, start - 1, -1):
                prototype = instructions[offset + 1]
                instructions[offset] = (None if prototype is None
                                        else _shifted(prototype, -1))
            pos = start
        instructions[0:pos] = map(dec, repeat(text), range(pos))
        if dec is _decoder.try_decode_interp:
            backend = "interp"
        elif dec is _decoder.try_decode:
            backend = _decoder.decoder_backend()
        else:  # a test double patched in via this module's try_decode
            backend = "patched"
        _DECODED_OFFSETS.inc(n, backend=backend)
        return cls(text=text, instructions=instructions)

    def __len__(self) -> int:
        return len(self.text)

    def at(self, offset: int) -> Instruction | None:
        """The candidate starting at ``offset`` (None if undecodable)."""
        if 0 <= offset < len(self.instructions):
            return self.instructions[offset]
        return None

    def is_valid(self, offset: int) -> bool:
        return self.at(offset) is not None

    @cached_property
    def valid_offsets(self) -> list[int]:
        return [o for o, ins in enumerate(self.instructions)
                if ins is not None]

    @cached_property
    def invalid_offsets(self) -> frozenset[int]:
        return frozenset(o for o, ins in enumerate(self.instructions)
                         if ins is None)

    # ------------------------------------------------------------------
    # Successor structure
    # ------------------------------------------------------------------

    def successors(self, offset: int) -> list[int]:
        """Execution successors of the candidate at ``offset``.

        Fall-through (if any) plus the direct branch target (if any and
        within the section).  Indirect flows contribute no successors.
        """
        ins = self.at(offset)
        if ins is None:
            return []
        result = []
        if ins.falls_through:
            result.append(ins.end)
        target = ins.branch_target
        if target is not None and 0 <= target < len(self.text):
            result.append(target)
        return result

    @cached_property
    def direct_predecessors(self) -> dict[int, list[int]]:
        """offset -> candidates that branch directly to it."""
        preds: dict[int, list[int]] = {}
        for offset, ins in enumerate(self.instructions):
            if ins is None:
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                preds.setdefault(target, []).append(offset)
        return preds

    @cached_property
    def fallthrough_predecessors(self) -> dict[int, list[int]]:
        """offset -> candidates whose fall-through lands on it."""
        preds: dict[int, list[int]] = {}
        for offset, ins in enumerate(self.instructions):
            if ins is None or not ins.falls_through:
                continue
            preds.setdefault(ins.end, []).append(offset)
        return preds

    @cached_property
    def direct_call_targets(self) -> dict[int, int]:
        """target offset -> number of candidate call sites reaching it."""
        counts: dict[int, int] = {}
        for ins in self.instructions:
            if ins is None or ins.flow is not FlowKind.CALL:
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                counts[target] = counts.get(target, 0) + 1
        return counts

    @cached_property
    def direct_jump_targets(self) -> dict[int, int]:
        """target offset -> number of candidate jump sites reaching it."""
        counts: dict[int, int] = {}
        for ins in self.instructions:
            if ins is None or ins.flow not in (FlowKind.JUMP, FlowKind.CJUMP):
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                counts[target] = counts.get(target, 0) + 1
        return counts

    @cached_property
    def _fallthrough_next(self) -> list[int]:
        """Per-offset fall-through successor (-1 where execution stops).

        Chain walks are the hottest inner loop of both scoring passes;
        precomputing the next-offset array once removes the per-step
        property lookups (``falls_through`` tests enum membership) that
        otherwise dominate.
        """
        nxt = [-1] * len(self.instructions)
        for offset, ins in enumerate(self.instructions):
            if ins is not None and ins.falls_through:
                nxt[offset] = ins.end
        return nxt

    def fallthrough_chain(self, offset: int, limit: int) -> list[Instruction]:
        """Up to ``limit`` candidates following only fall-through edges.

        The chain stops at non-fall-through flow, at undecodable bytes,
        or at the end of the section.  Used by behavioral and statistical
        scoring, both of which examine a bounded execution window.
        """
        chain: list[Instruction] = []
        instructions = self.instructions
        nxt = self._fallthrough_next
        size = len(instructions)
        current = offset
        while 0 <= current < size and len(chain) < limit:
            ins = instructions[current]
            if ins is None:
                break
            chain.append(ins)
            current = nxt[current]
        return chain

    def occluded_by(self, offset: int) -> list[int]:
        """Offsets strictly inside the candidate at ``offset``."""
        ins = self.at(offset)
        if ins is None:
            return []
        return list(range(offset + 1, min(ins.end, len(self.text))))


_SUPERSET_CACHE = REGISTRY.counter(
    "repro_superset_cache_total",
    "Process-wide superset-construction cache lookups, by outcome")


_DECODED_OFFSETS = REGISTRY.counter(
    "repro_superset_decoded_offsets_total",
    "Superset offsets swept, by decoder backend")


_DECODE_ERRORS = REGISTRY.counter(
    "repro_decode_errors_total",
    "Superset offsets at which no instruction decodes")


@functools.lru_cache(maxsize=4)
def _cached_build(text: bytes) -> Superset:
    _SUPERSET_CACHE.inc(outcome="miss")
    superset = Superset.build(text)
    _DECODE_ERRORS.inc(superset.instructions.count(None))
    return superset


def cached_superset(text: bytes) -> Superset:
    """A process-wide :meth:`Superset.build` cache keyed by section bytes.

    Evaluating a corpus runs several tools over the *same* text section,
    and superset construction is the single most expensive step each of
    them shares.  Consumers treat the superset as read-only, so handing
    every tool the same instance is safe.  The small LRU bound keeps at
    most a few sections' candidate lists alive.
    """
    misses = _cached_build.cache_info().misses
    result = _cached_build(text)
    if _cached_build.cache_info().misses == misses:
        _SUPERSET_CACHE.inc(outcome="hit")
    return result


cached_superset.cache_clear = _cached_build.cache_clear  # type: ignore[attr-defined]
cached_superset.cache_info = _cached_build.cache_info    # type: ignore[attr-defined]
