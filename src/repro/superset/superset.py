"""Superset disassembly: a candidate instruction at every byte offset.

The true disassembly of a text section is a subset of the superset
(every real instruction start decodes successfully), so computing the
superset first and then *deleting* wrong candidates -- rather than
guessing a single linear or recursive traversal -- is the foundation of
the paper's approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..isa.decoder import try_decode
from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind


@dataclass
class Superset:
    """All candidate instructions of a text section, indexed by offset."""

    text: bytes
    instructions: list[Instruction | None]

    @classmethod
    def build(cls, text: bytes) -> "Superset":
        """Decode a candidate at every offset (None where decoding fails)."""
        return cls(text=text,
                   instructions=[try_decode(text, o)
                                 for o in range(len(text))])

    def __len__(self) -> int:
        return len(self.text)

    def at(self, offset: int) -> Instruction | None:
        """The candidate starting at ``offset`` (None if undecodable)."""
        if 0 <= offset < len(self.instructions):
            return self.instructions[offset]
        return None

    def is_valid(self, offset: int) -> bool:
        return self.at(offset) is not None

    @cached_property
    def valid_offsets(self) -> list[int]:
        return [o for o, ins in enumerate(self.instructions)
                if ins is not None]

    @cached_property
    def invalid_offsets(self) -> frozenset[int]:
        return frozenset(o for o, ins in enumerate(self.instructions)
                         if ins is None)

    # ------------------------------------------------------------------
    # Successor structure
    # ------------------------------------------------------------------

    def successors(self, offset: int) -> list[int]:
        """Execution successors of the candidate at ``offset``.

        Fall-through (if any) plus the direct branch target (if any and
        within the section).  Indirect flows contribute no successors.
        """
        ins = self.at(offset)
        if ins is None:
            return []
        result = []
        if ins.falls_through:
            result.append(ins.end)
        target = ins.branch_target
        if target is not None and 0 <= target < len(self.text):
            result.append(target)
        return result

    @cached_property
    def direct_predecessors(self) -> dict[int, list[int]]:
        """offset -> candidates that branch directly to it."""
        preds: dict[int, list[int]] = {}
        for offset, ins in enumerate(self.instructions):
            if ins is None:
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                preds.setdefault(target, []).append(offset)
        return preds

    @cached_property
    def fallthrough_predecessors(self) -> dict[int, list[int]]:
        """offset -> candidates whose fall-through lands on it."""
        preds: dict[int, list[int]] = {}
        for offset, ins in enumerate(self.instructions):
            if ins is None or not ins.falls_through:
                continue
            preds.setdefault(ins.end, []).append(offset)
        return preds

    @cached_property
    def direct_call_targets(self) -> dict[int, int]:
        """target offset -> number of candidate call sites reaching it."""
        counts: dict[int, int] = {}
        for ins in self.instructions:
            if ins is None or ins.flow is not FlowKind.CALL:
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                counts[target] = counts.get(target, 0) + 1
        return counts

    @cached_property
    def direct_jump_targets(self) -> dict[int, int]:
        """target offset -> number of candidate jump sites reaching it."""
        counts: dict[int, int] = {}
        for ins in self.instructions:
            if ins is None or ins.flow not in (FlowKind.JUMP, FlowKind.CJUMP):
                continue
            target = ins.branch_target
            if target is not None and 0 <= target < len(self.text):
                counts[target] = counts.get(target, 0) + 1
        return counts

    def fallthrough_chain(self, offset: int, limit: int) -> list[Instruction]:
        """Up to ``limit`` candidates following only fall-through edges.

        The chain stops at non-fall-through flow, at undecodable bytes,
        or at the end of the section.  Used by behavioral and statistical
        scoring, both of which examine a bounded execution window.
        """
        chain: list[Instruction] = []
        current = offset
        while len(chain) < limit:
            ins = self.at(current)
            if ins is None:
                break
            chain.append(ins)
            if not ins.falls_through:
                break
            current = ins.end
        return chain

    def occluded_by(self, offset: int) -> list[int]:
        """Offsets strictly inside the candidate at ``offset``."""
        ins = self.at(offset)
        if ins is None:
            return []
        return list(range(offset + 1, min(ins.end, len(self.text))))
