"""Superset disassembly and candidate conflict structure."""

from .conflicts import conflicting_offsets, covering_candidates, no_overlap
from .superset import Superset

__all__ = ["Superset", "conflicting_offsets", "covering_candidates",
           "no_overlap"]
