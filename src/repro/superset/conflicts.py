"""Overlap conflicts between superset candidates.

Compiler-generated code never contains two instructions whose byte
ranges overlap, so once one candidate is confirmed as real code, every
candidate starting strictly inside it is excluded.  These helpers keep
that bookkeeping in one place.
"""

from __future__ import annotations

from .superset import Superset


def conflicting_offsets(superset: Superset, offset: int) -> set[int]:
    """Candidate starts that cannot coexist with the candidate at ``offset``.

    These are (a) every offset strictly inside the candidate's body and
    (b) every candidate whose body strictly contains ``offset``.
    """
    ins = superset.at(offset)
    if ins is None:
        return set()
    conflicts = set(superset.occluded_by(offset))
    # Candidates up to 14 bytes back may extend over this offset.
    lo = max(0, offset - 14)
    for other in range(lo, offset):
        other_ins = superset.at(other)
        if other_ins is not None and other_ins.end > offset:
            conflicts.add(other)
    return conflicts


def covering_candidates(superset: Superset, offset: int) -> list[int]:
    """Candidate starts whose body covers the byte at ``offset``."""
    result = []
    lo = max(0, offset - 14)
    for start in range(lo, offset + 1):
        ins = superset.at(start)
        if ins is not None and start <= offset < ins.end:
            result.append(start)
    return result


def no_overlap(starts: set[int], superset: Superset) -> bool:
    """True when the chosen instruction starts are mutually non-overlapping."""
    covered_until = -1
    for start in sorted(starts):
        ins = superset.at(start)
        if ins is None:
            return False
        if start < covered_until:
            return False
        covered_until = ins.end
    return True
