"""Human-readable disassembly listings (objdump-style output).

Used by the command-line interface and handy in notebooks: renders a
:class:`~repro.result.DisassemblyResult` over its text bytes, with
function headers, instruction columns, and collapsed data regions.
"""

from __future__ import annotations

from collections.abc import Iterator

from .isa.decoder import try_decode
from .result import DisassemblyResult

#: Data regions longer than this are elided in the middle.
_DATA_PREVIEW_BYTES = 16


def render_listing(text: bytes, result: DisassemblyResult,
                   *, start: int = 0, end: int | None = None) -> str:
    """Render the classified section as an assembly listing."""
    return "\n".join(iter_listing_lines(text, result, start=start,
                                        end=end))


def iter_listing_lines(text: bytes, result: DisassemblyResult,
                       *, start: int = 0,
                       end: int | None = None) -> Iterator[str]:
    end = len(text) if end is None else min(end, len(text))
    instructions = result.instructions
    entries = result.function_entries
    data_starts = {region_start: region_end
                   for region_start, region_end in result.data_regions}

    offset = start
    function_index = 0
    while offset < end:
        if offset in entries:
            function_index += 1
            yield ""
            yield f"{offset:#08x} <func_{offset:04x}>:"
        if offset in instructions:
            instruction = try_decode(text, offset)
            if instruction is None:   # defensive: stale result
                yield _data_line(text, offset, offset + 1)
                offset += 1
                continue
            raw = instruction.raw.hex()
            operands = ", ".join(str(o) for o in instruction.operands)
            yield (f"  {offset:#08x}:  {raw:<22s} "
                   f"{instruction.display_mnemonic} {operands}".rstrip())
            offset = instruction.end
        elif offset in data_starts:
            region_end = min(data_starts[offset], end)
            yield _data_line(text, offset, region_end)
            offset = region_end
        else:
            # Interior byte of something (or unclassified); emit singly.
            yield _data_line(text, offset, offset + 1)
            offset += 1


def _data_line(text: bytes, start: int, end: int) -> str:
    blob = text[start:end]
    preview = blob[:_DATA_PREVIEW_BYTES].hex(" ")
    suffix = " ..." if len(blob) > _DATA_PREVIEW_BYTES else ""
    printable = "".join(chr(b) if 0x20 <= b < 0x7F else "."
                        for b in blob[:_DATA_PREVIEW_BYTES])
    return (f"  {start:#08x}:  <data {end - start} bytes> "
            f"{preview}{suffix}  |{printable}|")


def classify_data_regions(text: bytes, result: DisassemblyResult
                          ) -> list[tuple[int, int, str]]:
    """Label each data region with its likely kind.

    Returns ``(start, end, kind)`` triples where kind is one of
    ``"jump-table"``, ``"string"``, ``"padding"`` or ``"literal-pool"``.
    """
    from .stats.datamodel import (find_ascii_runs, find_jump_tables,
                                  find_padding_runs)

    table_bytes: set[int] = set()
    for table in find_jump_tables(text):
        table_bytes.update(range(table.start, table.end))
    string_bytes: set[int] = set()
    for run in find_ascii_runs(text):
        if run.terminated:
            string_bytes.update(range(run.start, run.end))
    padding_bytes: set[int] = set()
    for run_start, run_end in find_padding_runs(text, min_length=2):
        padding_bytes.update(range(run_start, run_end))

    classified = []
    for start, end in result.data_regions:
        span = range(start, end)
        counts = {
            "jump-table": sum(1 for o in span if o in table_bytes),
            "string": sum(1 for o in span if o in string_bytes),
            "padding": sum(1 for o in span if o in padding_bytes),
        }
        kind, best = max(counts.items(), key=lambda kv: kv[1])
        if best < (end - start) / 2:
            kind = "literal-pool"
        classified.append((start, end, kind))
    return classified
