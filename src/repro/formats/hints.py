"""Optional compiler-metadata hints recovered from real containers.

The disassembler's contract is metadata-free: it sees machine code and
an entry point only.  Real ELF/PE files, however, *do* carry residual
structure even when stripped -- ELF dynamic entries and ``.eh_frame``
unwind data, PE exception-directory ``RUNTIME_FUNCTION`` ranges.  The
loaders surface that structure as a separate :class:`FormatHints`
object instead of folding it into :class:`~repro.binary.container.Binary`,
so consuming hints is always an explicit opt-in (the evaluation never
does; the oracle-free linter may *cross-check* a claim against them).

All hint addresses are absolute virtual addresses in the loaded
image's address space; :meth:`FormatHints.text_ranges` converts them
to text-section offsets for consumers that work offset-relative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.container import Binary


@dataclass(frozen=True)
class FormatHints:
    """Metadata recovered from a container, kept out of the binary.

    Attributes:
        format: producing loader ("elf64", "pe32+", or "rprb").
        image_base: preferred load base of the image.
        function_ranges: (start, end) virtual-address ranges that the
            container's unwind/exception metadata claims are functions
            (PE ``RUNTIME_FUNCTION`` entries; ELF FDE initial-location
            ranges when an ``.eh_frame`` is parseable).
        entry_candidates: virtual addresses the metadata marks as code
            entry points beyond the official entry (ELF ``DT_INIT`` /
            ``DT_FINI``, PE TLS callbacks are the classic sources).
        notes: free-form provenance strings ("eh_frame present",
            "section headers stripped", ...), for diagnostics.
    """

    format: str
    image_base: int = 0
    function_ranges: tuple[tuple[int, int], ...] = ()
    entry_candidates: tuple[int, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.function_ranges or self.entry_candidates)

    def text_ranges(self, text_addr: int, text_size: int
                    ) -> tuple[tuple[int, int], ...]:
        """Function ranges clipped to the text section, as offsets."""
        ranges = []
        for start, end in self.function_ranges:
            lo = max(start, text_addr) - text_addr
            hi = min(end, text_addr + text_size) - text_addr
            if lo < hi:
                ranges.append((lo, hi))
        return tuple(ranges)

    def describe(self) -> str:
        parts = [self.format, f"base={self.image_base:#x}"]
        if self.function_ranges:
            parts.append(f"{len(self.function_ranges)} function ranges")
        if self.entry_candidates:
            parts.append(f"{len(self.entry_candidates)} entry candidates")
        parts.extend(self.notes)
        return ", ".join(parts)


#: Hints for the native container, which by construction carries none.
NO_HINTS = FormatHints(format="rprb")


@dataclass(frozen=True)
class LoadedImage:
    """What :func:`repro.formats.load_any` returns.

    The :class:`~repro.binary.container.Binary` is the only thing the
    disassembler sees; ``hints`` ride alongside for consumers that
    explicitly ask for them.
    """

    binary: Binary
    format: str
    hints: FormatHints = field(default=NO_HINTS)
