"""Collapse real-world section layouts onto the single-text model.

The downstream model (:class:`repro.binary.container.Binary`) requires
exactly one executable section; real ELF/PE images routinely carry
several (``.init``/``.plt``/``.text``/``.fini``) that the runtime
loader maps as one contiguous executable region anyway.  The loaders
reproduce that view: adjacent executable sections are merged into one
``.text`` (alignment gaps between them filled with zero bytes, which
decode as harmless padding), and any *disjoint* executable region left
over is demoted to a data section so the contract holds.

Binaries with a single executable section -- including everything the
native emitter produces -- pass through untouched, names and all.
"""

from __future__ import annotations

from ..binary.container import Section
from .errors import FormatError

#: Largest inter-section gap (bytes) still merged into one text region.
#: Covers page/function alignment padding between .init/.plt/.text
#: while keeping genuinely separate code regions (split by whole data
#: segments) apart.
MERGE_GAP = 0x1000


def normalize_sections(sections: list[Section], entry: int
                       ) -> tuple[list[Section], list[str]]:
    """Return (sections with exactly one executable member, notes)."""
    executable = sorted((s for s in sections if s.executable),
                        key=lambda s: s.addr)
    if not executable:
        raise FormatError("no executable section or segment",
                          context="layout")
    if len(executable) == 1:
        return list(sections), []

    for before, after in zip(executable, executable[1:]):
        if after.addr < before.end:
            raise FormatError(
                f"executable sections {before.name!r} and {after.name!r} "
                f"overlap ({before.addr:#x}-{before.end:#x} vs "
                f"{after.addr:#x})", context="layout")

    regions = _merge_adjacent(executable)
    text = _pick_text(regions, entry)
    notes = [f"merged {len(executable)} executable sections into "
             f"{len(regions)} region(s); text is "
             f"{text.addr:#x}+{text.size:#x}"]

    normalized = [s for s in sections if not s.executable]
    for region in regions:
        if region is text:
            normalized.append(region)
        else:
            demoted = Section(region.name, region.addr, region.data,
                              executable=False)
            normalized.append(demoted)
            notes.append(f"demoted disjoint executable region "
                         f"{region.name!r} at {region.addr:#x} to data")
    normalized.sort(key=lambda s: s.addr)
    return normalized, notes


def _merge_adjacent(executable: list[Section]) -> list[Section]:
    regions: list[Section] = []
    current = executable[0]
    parts = [current]
    for section in executable[1:]:
        if section.addr - current.end <= MERGE_GAP:
            parts.append(section)
            current = _fuse(parts)
        else:
            regions.append(current)
            current = section
            parts = [current]
    regions.append(current)
    return regions


def _fuse(parts: list[Section]) -> Section:
    base = parts[0].addr
    out = bytearray()
    for section in parts:
        gap = section.addr - (base + len(out))
        out += b"\0" * gap
        out += section.data
    return Section(".text", base, bytes(out), executable=True)


def _pick_text(regions: list[Section], entry: int) -> Section:
    for region in regions:
        if region.contains(entry):
            return region
    return max(regions, key=lambda r: r.size)
