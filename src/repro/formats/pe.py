"""A stdlib-only PE32+/COFF parser mapping Windows images into ``Binary``.

Scope: PE32+ (64-bit optional-header magic ``0x20B``) executables and
DLLs -- the Windows system binaries with embedded jump tables that
motivate the source paper.  Sections are mapped at their virtual
addresses (``ImageBase + VirtualAddress``), raw data padded or clipped
to ``VirtualSize`` exactly as the Windows loader would, and the
exception directory's ``RUNTIME_FUNCTION`` ranges -- compiler metadata
the disassembler must *not* rely on -- are surfaced separately as
:class:`~repro.formats.hints.FormatHints.function_ranges`.

As with the ELF loader, malformed input always raises a
:class:`~repro.formats.errors.FormatError` with offset/field context.
"""

from __future__ import annotations

from ..binary.container import Binary, Section
from .errors import Cursor, FormatError
from .hints import FormatHints, LoadedImage
from .normalize import normalize_sections

MZ_MAGIC = b"MZ"
_PE_SIGNATURE = b"PE\0\0"
_PE32PLUS_MAGIC = 0x20B

_COFF_SIZE = 20
_SECTION_SIZE = 40

# Section characteristics.
_SCN_CNT_UNINITIALIZED = 0x00000080
_SCN_MEM_EXECUTE = 0x20000000

#: Data-directory index of the exception directory (.pdata).
_DIR_EXCEPTION = 3

#: Sanity bounds mirroring repro.formats.elf.MAX_HEADERS.
MAX_SECTIONS = 256
MAX_RUNTIME_FUNCTIONS = 1 << 20

#: Largest section a PE may map; see repro.formats.elf.MAX_SECTION_BYTES.
MAX_SECTION_BYTES = 1 << 30


def parse_pe(blob: bytes) -> LoadedImage:
    """Parse a PE32+ image into a :class:`Binary` plus hints."""
    cursor = Cursor(blob, context="pe")
    if cursor.bytes_at(0, 2, "DOS magic") != MZ_MAGIC:
        raise FormatError("bad DOS magic", offset=0, context="pe")
    e_lfanew = cursor.u32(0x3C, "e_lfanew")
    if cursor.bytes_at(e_lfanew, 4, "PE signature") != _PE_SIGNATURE:
        raise FormatError("bad PE signature", offset=e_lfanew,
                          context="pe")

    coff = e_lfanew + 4
    (_machine, section_count, _timestamp, _symoff, _symcount,
     opt_size, _characteristics) = cursor.unpack("<HHIIIHH", coff,
                                                 "COFF header")
    if section_count == 0 or section_count > MAX_SECTIONS:
        raise FormatError(f"implausible section count {section_count}",
                          offset=coff, context="pe")

    opt = coff + _COFF_SIZE
    magic = cursor.u16(opt, "optional header magic")
    if magic != _PE32PLUS_MAGIC:
        raise FormatError(f"unsupported optional-header magic "
                          f"{magic:#x} (only PE32+ is supported)",
                          offset=opt, context="pe")
    if opt_size < 112:
        raise FormatError(f"optional header too small ({opt_size} bytes)",
                          offset=coff, context="pe")
    entry_rva = cursor.u32(opt + 16, "AddressOfEntryPoint")
    image_base = cursor.u64(opt + 24, "ImageBase")
    directory_count = cursor.u32(opt + 108, "NumberOfRvaAndSizes")

    exception_dir = (0, 0)
    if directory_count > _DIR_EXCEPTION:
        exception_dir = cursor.unpack(
            "<II", opt + 112 + 8 * _DIR_EXCEPTION, "exception directory")

    table = opt + opt_size
    sections, raw_sections = _parse_sections(cursor, table, section_count,
                                             image_base)
    entry = image_base + entry_rva
    sections, notes = normalize_sections(sections, entry)

    function_ranges = _runtime_functions(raw_sections, image_base,
                                         *exception_dir)
    if function_ranges:
        notes = [*notes, f"exception directory: {len(function_ranges)} "
                         f"RUNTIME_FUNCTION entries"]
    hints = FormatHints(format="pe32+", image_base=image_base,
                        function_ranges=function_ranges,
                        notes=tuple(notes))
    binary = Binary(sections=sections, entry=entry)
    binary.text  # noqa: B018 -- validate exactly one executable section
    return LoadedImage(binary=binary, format="pe32+", hints=hints)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------

def _parse_sections(cursor: Cursor, table: int, count: int,
                    image_base: int
                    ) -> tuple[list[Section], list[dict]]:
    sections: list[Section] = []
    raw: list[dict] = []
    for index in range(count):
        base = table + index * _SECTION_SIZE
        (name_bytes, virtual_size, rva, raw_size, raw_offset, _reloc,
         _lines, _nreloc, _nlines, characteristics) = \
            cursor.unpack("<8sIIIIIIHHI", base, f"section header {index}")
        name = name_bytes.rstrip(b"\0").decode("latin-1") \
            or f".sec{index}"
        memory_size = virtual_size or raw_size
        if memory_size == 0:
            continue
        if memory_size > MAX_SECTION_BYTES:
            raise FormatError(
                f"section {name}: VirtualSize {memory_size:#x} exceeds "
                f"the {MAX_SECTION_BYTES >> 20} MiB limit", context="pe")
        if characteristics & _SCN_CNT_UNINITIALIZED or raw_size == 0:
            data = b"\0" * memory_size
        else:
            data = cursor.bytes_at(raw_offset, min(raw_size, memory_size),
                                   f"section {name} raw data")
            if len(data) < memory_size:
                data = data + b"\0" * (memory_size - len(data))
        executable = bool(characteristics & _SCN_MEM_EXECUTE)
        raw.append({"name": name, "rva": rva, "size": memory_size,
                    "data": data})
        sections.append(Section(name, image_base + rva, data,
                                executable=executable))
    if not sections:
        raise FormatError("no mapped sections", offset=table, context="pe")
    return sections, raw


# ----------------------------------------------------------------------
# Exception directory (RUNTIME_FUNCTION hints)
# ----------------------------------------------------------------------

def _runtime_functions(raw_sections: list[dict], image_base: int,
                       rva: int, size: int
                       ) -> tuple[tuple[int, int], ...]:
    """Function ranges from the exception directory, if present.

    Each PE32+ ``RUNTIME_FUNCTION`` is 12 bytes: BeginAddress,
    EndAddress, UnwindInfoAddress (all RVAs).  The directory lives in
    mapped section data, so entries are read back out of the *virtual*
    layout rather than the raw file.
    """
    if rva == 0 or size == 0:
        return ()
    count = size // 12
    if count > MAX_RUNTIME_FUNCTIONS:
        raise FormatError(f"implausible exception directory "
                          f"({count} entries)", context="pe")
    # Rebuild a virtual view of the directory from the parsed sections.
    ranges: list[tuple[int, int]] = []
    window = _virtual_bytes(raw_sections, rva, size)
    if window is None:
        raise FormatError(f"exception directory RVA {rva:#x} not mapped "
                          f"by any section", context="pe")
    view = Cursor(window, context="pe exception directory")
    for index in range(count):
        begin, end, _unwind = view.unpack("<III", index * 12,
                                          f"RUNTIME_FUNCTION {index}")
        if begin == 0 and end == 0:
            continue
        if end <= begin:
            raise FormatError(
                f"RUNTIME_FUNCTION {index}: end {end:#x} <= begin "
                f"{begin:#x}", context="pe exception directory")
        ranges.append((image_base + begin, image_base + end))
    return tuple(ranges)


def _virtual_bytes(raw_sections: list[dict], rva: int, size: int
                   ) -> bytes | None:
    for section in raw_sections:
        if section["rva"] <= rva and \
                rva + size <= section["rva"] + section["size"]:
            start = rva - section["rva"]
            return section["data"][start:start + size]
    return None
