"""Serialize any ``Binary`` as a well-formed ELF64 ``ET_EXEC`` file.

The emitter closes the loop for round-trip testing without an external
toolchain: every synthetic-corpus binary can be written as a real ELF
executable, re-ingested through :func:`repro.formats.load_any`, and
must disassemble byte-identically to the native container path
(experiment R1).  Output is fully deterministic -- no timestamps, no
environment-dependent fields -- so emitted files are also usable as
cache keys and golden fixtures.

Layout: ELF header, one ``PT_LOAD`` program header per section (pages
mapped with the section's permissions, ``p_offset`` congruent to
``p_vaddr`` modulo the page size, as the System V ABI requires), the
section payloads, then a full section-header table with a ``shstrtab``
so names survive the trip.  Ordinary ``strip`` would leave all of that
intact; tests exercising the header-stripped path truncate
``e_shoff``/``e_shnum`` themselves.
"""

from __future__ import annotations

import struct

from ..binary.container import Binary
from .elf import ELF_MAGIC

_PAGE = 0x1000
_EHDR_SIZE = 64
_PHDR_SIZE = 56
_SHDR_SIZE = 64

_ET_EXEC = 2
_EM_X86_64 = 62
_EV_CURRENT = 1

_PT_LOAD = 1
_PF_X, _PF_W, _PF_R = 1, 2, 4

_SHT_PROGBITS = 1
_SHT_STRTAB = 3
_SHF_ALLOC = 0x2
_SHF_EXECINSTR = 0x4


def emit_elf(binary: Binary) -> bytes:
    """The binary as a deterministic ELF64 ``ET_EXEC`` byte string.

    Sections keep their exact names, addresses, contents, and
    executable flags, so ``parse_elf(emit_elf(b)).binary == b`` for any
    binary with exactly one executable section (the model's contract).
    """
    if not binary.sections:
        raise ValueError("cannot emit an ELF with no sections")
    sections = list(binary.sections)

    phdr_table = _EHDR_SIZE
    payload_start = phdr_table + len(sections) * _PHDR_SIZE

    # Place each section payload at an offset congruent to its vaddr
    # modulo the page size (required for the file to be mappable).
    offsets: list[int] = []
    cursor = payload_start
    for section in sections:
        congruent = section.addr % _PAGE
        if cursor % _PAGE <= congruent:
            offset = cursor - cursor % _PAGE + congruent
        else:
            offset = cursor - cursor % _PAGE + _PAGE + congruent
        offsets.append(offset)
        cursor = offset + len(section.data)

    # String table for section names, then the section-header table.
    shstrtab = bytearray(b"\0")
    name_offsets = []
    for section in sections:
        name_offsets.append(len(shstrtab))
        shstrtab += section.name.encode("utf-8") + b"\0"
    shstrtab_name = len(shstrtab)
    shstrtab += b".shstrtab\0"
    shstrtab_offset = cursor
    shoff = shstrtab_offset + len(shstrtab)
    shoff += (-shoff) % 8                   # natural alignment
    section_count = len(sections) + 2       # null + sections + shstrtab

    out = bytearray()
    out += ELF_MAGIC
    out += bytes([2, 1, _EV_CURRENT, 0])    # ELF64, little-endian, SysV
    out += b"\0" * 8
    out += struct.pack("<HHIQQQIHHHHHH",
                       _ET_EXEC, _EM_X86_64, _EV_CURRENT, binary.entry,
                       phdr_table, shoff, 0, _EHDR_SIZE,
                       _PHDR_SIZE, len(sections),
                       _SHDR_SIZE, section_count, section_count - 1)

    for section, offset in zip(sections, offsets):
        flags = _PF_R | (_PF_X if section.executable else 0)
        out += struct.pack("<IIQQQQQQ", _PT_LOAD, flags, offset,
                           section.addr, section.addr,
                           len(section.data), len(section.data), _PAGE)

    for section, offset in zip(sections, offsets):
        out += b"\0" * (offset - len(out))
        out += section.data

    out += b"\0" * (shstrtab_offset - len(out))
    out += shstrtab
    out += b"\0" * (shoff - len(out))

    out += bytes(_SHDR_SIZE)                # SHN_UNDEF null header
    for section, offset, name_offset in zip(sections, offsets,
                                            name_offsets):
        flags = _SHF_ALLOC | (_SHF_EXECINSTR if section.executable else 0)
        out += struct.pack("<IIQQQQIIQQ", name_offset, _SHT_PROGBITS,
                           flags, section.addr, offset,
                           len(section.data), 0, 0, 1, 0)
    out += struct.pack("<IIQQQQIIQQ", shstrtab_name, _SHT_STRTAB, 0, 0,
                       shstrtab_offset, len(shstrtab), 0, 0, 1, 0)
    return bytes(out)
