"""Real-binary ingestion: stdlib-only ELF64/PE32+ loaders and emitter.

The reproduction's native ``RPRB`` container deliberately contains
nothing but sections and an entry point.  This package maps *real*
containers -- stripped ELF64 executables and PE32+ DLLs -- onto that
same model, so the whole stack (disassembler, linter, serving API,
evaluation) ingests them transparently:

>>> from repro.formats import load_any
>>> image = load_any(open("a.out", "rb").read())        # doctest: +SKIP
>>> result = Disassembler().disassemble(image.binary)   # doctest: +SKIP

Residual compiler metadata a real container carries (PE exception
directories, ELF dynamic entries) is surfaced as a separate
:class:`FormatHints` object and is never consulted by the
disassembler -- the paper's metadata-free contract stays explicit.
:func:`emit_elf` writes any ``Binary`` back out as a well-formed
``ET_EXEC`` ELF for round-trip testing (experiment R1).
"""

from .detect import FORMAT_NAMES, SIGNATURES, detect_format, load_any
from .elf import parse_elf
from .emit_elf import emit_elf
from .errors import FormatError
from .hints import NO_HINTS, FormatHints, LoadedImage
from .pe import parse_pe

__all__ = [
    "FORMAT_NAMES",
    "FormatError",
    "FormatHints",
    "LoadedImage",
    "NO_HINTS",
    "SIGNATURES",
    "detect_format",
    "emit_elf",
    "load_any",
    "parse_elf",
    "parse_pe",
]
