"""Structured parse failures for the binary-format subsystem.

Real-world loaders see hostile input: truncated headers, absurd
counts, offsets pointing past the end of the file.  Every parse
failure in :mod:`repro.formats` is reported as a :class:`FormatError`
carrying the file offset and the header field being decoded when the
input stopped making sense -- never a bare ``struct.error`` or
``IndexError`` leaking out of the parser internals.
"""

from __future__ import annotations

import struct


class FormatError(ValueError):
    """A malformed or unsupported binary file.

    Attributes:
        offset: file offset at which parsing failed (None when the
            failure is not anchored to a single offset).
        context: the header field or structure being decoded.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 context: str | None = None) -> None:
        detail = message
        if context is not None:
            detail = f"{context}: {detail}"
        if offset is not None:
            detail = f"{detail} (at offset {offset:#x})"
        super().__init__(detail)
        self.offset = offset
        self.context = context


class Cursor:
    """Bounds-checked reads over an immutable blob.

    Every accessor raises :class:`FormatError` -- with the offset and a
    caller-supplied field name -- instead of ``struct.error`` or a
    short slice, so parser code never needs its own bounds arithmetic.
    """

    def __init__(self, blob: bytes, *, context: str = "file") -> None:
        self.blob = blob
        self.context = context

    def __len__(self) -> int:
        return len(self.blob)

    def bytes_at(self, offset: int, size: int, what: str) -> bytes:
        if offset < 0 or size < 0:
            raise FormatError(f"negative range for {what}",
                              offset=max(offset, 0), context=self.context)
        chunk = self.blob[offset:offset + size]
        if len(chunk) != size:
            raise FormatError(
                f"truncated {what}: need {size} bytes, have {len(chunk)}",
                offset=offset, context=self.context)
        return chunk

    def unpack(self, fmt: str, offset: int, what: str) -> tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.bytes_at(offset, size, what))

    def u16(self, offset: int, what: str) -> int:
        return self.unpack("<H", offset, what)[0]

    def u32(self, offset: int, what: str) -> int:
        return self.unpack("<I", offset, what)[0]

    def u64(self, offset: int, what: str) -> int:
        return self.unpack("<Q", offset, what)[0]

    def cstring(self, offset: int, what: str, *, limit: int = 4096) -> str:
        """A NUL-terminated string (for section-name tables)."""
        if offset < 0 or offset > len(self.blob):
            raise FormatError(f"{what} offset out of bounds",
                              offset=max(offset, 0), context=self.context)
        end = self.blob.find(b"\0", offset, offset + limit)
        if end < 0:
            raise FormatError(f"unterminated {what}", offset=offset,
                              context=self.context)
        try:
            return self.blob[offset:end].decode("utf-8")
        except UnicodeDecodeError as error:
            raise FormatError(f"undecodable {what}: {error}",
                              offset=offset, context=self.context) from None
