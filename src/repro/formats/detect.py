"""Magic-byte detection and the one loader entry point, ``load_any``.

Everything that ingests a binary from the outside world -- the
``repro disasm``/``repro lint`` CLI, the serving API, the R1
round-trip experiment -- goes through :func:`load_any`, so accepting a
new container format means adding one row to :data:`SIGNATURES`.
"""

from __future__ import annotations

from ..binary.container import Binary, BinaryFormatError
from .elf import ELF_MAGIC, parse_elf
from .errors import FormatError
from .hints import NO_HINTS, LoadedImage
from .pe import MZ_MAGIC, parse_pe

#: (magic prefix, canonical format name) in match order.
SIGNATURES: tuple[tuple[bytes, str], ...] = (
    (b"RPRB", "rprb"),
    (ELF_MAGIC, "elf64"),
    (MZ_MAGIC, "pe32+"),
)

#: Format names accepted by `load_any(fmt=...)` and the serve protocol.
FORMAT_NAMES = ("auto",) + tuple(name for _, name in SIGNATURES)


def detect_format(blob: bytes) -> str:
    """Canonical format name for a blob, by magic bytes.

    Raises :class:`FormatError` (with the unrecognized magic rendered
    hex) when no signature matches -- the message CLI error paths
    print verbatim.
    """
    for magic, name in SIGNATURES:
        if blob[:len(magic)] == magic:
            return name
    preview = blob[:4].hex() or "empty"
    raise FormatError(f"unrecognized format (magic={preview})",
                      offset=0, context="detect")


def _load_rprb(blob: bytes) -> LoadedImage:
    try:
        binary = Binary.from_bytes(blob)
    except BinaryFormatError as error:
        raise FormatError(f"bad RPRB container: {error}",
                          context="rprb") from error
    except (IndexError, ValueError, UnicodeDecodeError) as error:
        raise FormatError(f"corrupt RPRB container: {error}",
                          context="rprb") from error
    return LoadedImage(binary=binary, format="rprb", hints=NO_HINTS)


_LOADERS = {
    "rprb": _load_rprb,
    "elf64": parse_elf,
    "pe32+": parse_pe,
}


def load_any(blob: bytes, fmt: str = "auto") -> LoadedImage:
    """Load a binary of any supported container format.

    Args:
        blob: raw file contents (RPRB container, ELF64, or PE32+).
        fmt: "auto" (detect by magic) or an explicit format name;
            an explicit name still validates the magic, so a client
            cannot smuggle an ELF through the PE code path.

    Raises:
        FormatError: unrecognized magic, unknown ``fmt``, or any
            structural problem inside the chosen parser.
    """
    detected = detect_format(blob)
    if fmt != "auto":
        if fmt not in _LOADERS:
            raise FormatError(
                f"unknown format {fmt!r} (expected one of "
                f"{', '.join(FORMAT_NAMES)})", context="detect")
        if fmt != detected:
            raise FormatError(f"declared format {fmt!r} but magic says "
                              f"{detected!r}", offset=0, context="detect")
    return _LOADERS[detected](blob)
