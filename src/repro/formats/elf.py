"""A stdlib-only ELF64 parser mapping real executables into ``Binary``.

Scope: little-endian ELF64 (``EM_X86_64``) executables and shared
objects, the file class every evaluation target of the source paper
belongs to.  The parser prefers the section-header table (ordinary
``strip`` keeps it) and falls back to program headers when a tool like
``sstrip`` removed it entirely; either way the output is the same
:class:`~repro.binary.container.Binary` model the rest of the stack
consumes, with residual metadata (dynamic entries, ``.eh_frame``
presence) reported separately as :class:`~repro.formats.hints.FormatHints`.

Malformed input never escapes as ``struct.error``/``IndexError``:
every failure is a :class:`~repro.formats.errors.FormatError` carrying
the offending offset and field (see :class:`~repro.formats.errors.Cursor`).
"""

from __future__ import annotations

from ..binary.container import Binary, Section
from .errors import Cursor, FormatError
from .hints import FormatHints, LoadedImage
from .normalize import normalize_sections

ELF_MAGIC = b"\x7fELF"

_PHDR_SIZE = 56
_SHDR_SIZE = 64

# e_ident indices
_EI_CLASS, _EI_DATA, _EI_VERSION = 4, 5, 6
_ELFCLASS64 = 2
_ELFDATA2LSB = 1

# Object types this loader accepts.
_ET_EXEC, _ET_DYN = 2, 3

# Program-header types / flags.
PT_LOAD = 1
PT_DYNAMIC = 2
PT_GNU_EH_FRAME = 0x6474E550
_PF_X = 1

# Section-header types / flags.
_SHT_NULL = 0
_SHT_NOBITS = 8
_SHF_ALLOC = 0x2
_SHF_EXECINSTR = 0x4

# Dynamic tags surfaced as hints.
_DT_NULL, _DT_INIT, _DT_FINI = 0, 12, 13

#: Sanity bound on header counts; real binaries have dozens, a parsed
#: count in the millions is a malformed (or hostile) file, and looping
#: over it would turn a parse into a denial of service.
MAX_HEADERS = 4096

#: Largest in-memory image a section or segment may expand to.  A
#: hostile ``p_memsz`` would otherwise turn the zero-fill of a .bss
#: tail into a multi-terabyte allocation.
MAX_SECTION_BYTES = 1 << 30


def parse_elf(blob: bytes) -> LoadedImage:
    """Parse an ELF64 image into a :class:`Binary` plus hints."""
    cursor = Cursor(blob, context="elf")
    if cursor.bytes_at(0, 4, "magic") != ELF_MAGIC:
        raise FormatError("bad magic", offset=0, context="elf")
    ident = cursor.bytes_at(0, 16, "e_ident")
    if ident[_EI_CLASS] != _ELFCLASS64:
        raise FormatError(f"unsupported ELF class {ident[_EI_CLASS]} "
                          f"(only ELF64 is supported)",
                          offset=_EI_CLASS, context="elf")
    if ident[_EI_DATA] != _ELFDATA2LSB:
        raise FormatError("unsupported byte order (big-endian)",
                          offset=_EI_DATA, context="elf")
    (e_type, _machine, _version, e_entry, e_phoff, e_shoff, _flags,
     _ehsize, e_phentsize, e_phnum, e_shentsize, e_shnum, e_shstrndx) = \
        cursor.unpack("<HHIQQQIHHHHHH", 16, "ELF header")
    if e_type not in (_ET_EXEC, _ET_DYN):
        raise FormatError(f"unsupported object type {e_type} "
                          f"(need ET_EXEC or ET_DYN)",
                          offset=16, context="elf")

    segments = _parse_program_headers(cursor, e_phoff, e_phentsize, e_phnum)
    sections = _sections_from_headers(cursor, e_shoff, e_shentsize,
                                      e_shnum, e_shstrndx)
    notes = []
    if sections is None:
        sections = _sections_from_segments(cursor, segments)
        notes.append("section headers stripped; mapped from PT_LOAD")
    if not sections:
        raise FormatError("no loadable content (no alloc sections and "
                          "no PT_LOAD segments)", context="elf")
    sections, normalize_notes = normalize_sections(sections, e_entry)
    notes.extend(normalize_notes)

    hints = _collect_hints(cursor, segments, notes)
    binary = Binary(sections=sections, entry=e_entry)
    binary.text  # noqa: B018 -- validate exactly one executable section
    return LoadedImage(binary=binary, format="elf64", hints=hints)


# ----------------------------------------------------------------------
# Headers
# ----------------------------------------------------------------------

def _parse_program_headers(cursor: Cursor, offset: int, entsize: int,
                           count: int) -> list[dict]:
    if count == 0:
        return []
    if count > MAX_HEADERS:
        raise FormatError(f"implausible e_phnum {count}", offset=offset,
                          context="program headers")
    if entsize < _PHDR_SIZE:
        raise FormatError(f"e_phentsize {entsize} below minimum "
                          f"{_PHDR_SIZE}", context="program headers")
    segments = []
    for index in range(count):
        base = offset + index * entsize
        (p_type, p_flags, p_offset, p_vaddr, _paddr, p_filesz,
         p_memsz, _align) = cursor.unpack("<IIQQQQQQ", base,
                                          f"program header {index}")
        segments.append({"type": p_type, "flags": p_flags,
                         "offset": p_offset, "vaddr": p_vaddr,
                         "filesz": p_filesz, "memsz": p_memsz,
                         "index": index})
    return segments


def _sections_from_headers(cursor: Cursor, offset: int, entsize: int,
                           count: int, shstrndx: int
                           ) -> list[Section] | None:
    """Sections from the section-header table, or None when absent."""
    if count == 0 or offset == 0:
        return None
    if count > MAX_HEADERS:
        raise FormatError(f"implausible e_shnum {count}", offset=offset,
                          context="section headers")
    if entsize < _SHDR_SIZE:
        raise FormatError(f"e_shentsize {entsize} below minimum "
                          f"{_SHDR_SIZE}", context="section headers")
    headers = []
    for index in range(count):
        base = offset + index * entsize
        (sh_name, sh_type, sh_flags, sh_addr, sh_offset, sh_size,
         _link, _info, _align, _entsize) = \
            cursor.unpack("<IIQQQQIIQQ", base, f"section header {index}")
        headers.append({"name": sh_name, "type": sh_type,
                        "flags": sh_flags, "addr": sh_addr,
                        "offset": sh_offset, "size": sh_size})
    if not 0 <= shstrndx < count:
        raise FormatError(f"e_shstrndx {shstrndx} out of range",
                          context="section headers")
    strtab = headers[shstrndx]
    names = Cursor(cursor.bytes_at(strtab["offset"], strtab["size"],
                                   "section name table"),
                   context="shstrtab")

    sections = []
    for header in headers:
        if header["type"] in (_SHT_NULL, _SHT_NOBITS):
            continue
        if not header["flags"] & _SHF_ALLOC:
            continue                     # debug info, symtab leftovers
        name = names.cstring(header["name"], "section name")
        data = cursor.bytes_at(header["offset"], header["size"],
                               f"section {name or '?'} contents")
        sections.append(Section(name or f".sec{len(sections)}",
                                header["addr"], data,
                                executable=bool(header["flags"]
                                                & _SHF_EXECINSTR)))
    return sections or None


def _sections_from_segments(cursor: Cursor,
                            segments: list[dict]) -> list[Section]:
    """PT_LOAD segments as sections (fully stripped binaries)."""
    sections = []
    counters = {"text": 0, "load": 0}
    for segment in sorted((s for s in segments if s["type"] == PT_LOAD),
                          key=lambda s: s["vaddr"]):
        data = cursor.bytes_at(segment["offset"], segment["filesz"],
                               f"PT_LOAD segment {segment['index']}")
        memsz = segment["memsz"]
        if memsz < segment["filesz"]:
            raise FormatError(
                f"PT_LOAD segment {segment['index']}: p_memsz {memsz} "
                f"smaller than p_filesz {segment['filesz']}",
                context="program headers")
        if memsz > MAX_SECTION_BYTES:
            raise FormatError(
                f"PT_LOAD segment {segment['index']}: p_memsz {memsz:#x} "
                f"exceeds the {MAX_SECTION_BYTES >> 20} MiB limit",
                context="program headers")
        if memsz > segment["filesz"]:
            data = data + b"\0" * (memsz - segment["filesz"])   # .bss tail
        executable = bool(segment["flags"] & _PF_X)
        kind = "text" if executable else "load"
        name = f".{kind}{counters[kind] or ''}"
        counters[kind] += 1
        sections.append(Section(name, segment["vaddr"], data,
                                executable=executable))
    return sections


# ----------------------------------------------------------------------
# Hints
# ----------------------------------------------------------------------

def _collect_hints(cursor: Cursor, segments: list[dict],
                   notes: list[str]) -> FormatHints:
    load = [s for s in segments if s["type"] == PT_LOAD]
    image_base = min((s["vaddr"] for s in load), default=0)
    entry_candidates: list[int] = []
    for segment in segments:
        if segment["type"] == PT_DYNAMIC:
            entry_candidates.extend(
                _dynamic_entries(cursor, segment))
        elif segment["type"] == PT_GNU_EH_FRAME:
            notes.append("eh_frame present")
    return FormatHints(format="elf64", image_base=image_base,
                       entry_candidates=tuple(sorted(set(
                           entry_candidates))),
                       notes=tuple(notes))


def _dynamic_entries(cursor: Cursor, segment: dict) -> list[int]:
    """DT_INIT/DT_FINI addresses from a PT_DYNAMIC segment."""
    candidates = []
    count = min(segment["filesz"] // 16, MAX_HEADERS)
    for index in range(count):
        tag, value = cursor.unpack("<qQ", segment["offset"] + index * 16,
                                   f"dynamic entry {index}")
        if tag == _DT_NULL:
            break
        if tag in (_DT_INIT, _DT_FINI) and value:
            candidates.append(value)
    return candidates
