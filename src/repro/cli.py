"""Command-line interface: generate, disassemble, evaluate, experiment.

Usage::

    python -m repro generate out/demo --style msvc-like --functions 40
    python -m repro disasm out/demo.bin
    python -m repro disasm out/demo.bin --listing | head -50
    python -m repro evaluate out/demo
    python -m repro experiments t3
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from .binary.loader import TestCase
from .core.config import DisassemblerConfig
from .core.disassembler import Disassembler
from .eval.metrics import evaluate
from .formats import FormatError, LoadedImage, load_any
from .listing import classify_data_regions, render_listing
from .synth.corpus import BinarySpec, generate_binary
from .synth.styles import STYLES, style_by_name


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.output)
    directory = out.parent if out.parent != Path("") else Path(".")
    if args.seed_range is not None:
        from .fleet.manifest import parse_seed_range
        try:
            seeds = list(parse_seed_range(args.seed_range))
        except ValueError as error:
            print(f"generate: {error}", file=sys.stderr)
            return 2
    else:
        seeds = [args.seed]
    for seed in seeds:
        name = out.name if len(seeds) == 1 else f"{out.name}-s{seed:06d}"
        spec = BinarySpec(name=name, style=style_by_name(args.style),
                          function_count=args.functions, seed=seed)
        case = generate_binary(spec)
        bin_path, gt_path = case.save(directory, fmt=args.format)
        if len(seeds) == 1:
            stats = case.truth
            print(f"wrote {bin_path} ({stats.size} text bytes, "
                  f"{len(stats.functions)} functions, "
                  f"{stats.data_bytes} embedded data bytes)")
            print(f"wrote {gt_path} (ground truth)")
    if len(seeds) > 1:
        print(f"wrote {len(seeds)} binaries ({args.style}, "
              f"{args.functions} functions, seeds "
              f"{seeds[0]}..{seeds[-1]}) under {directory}")
    if args.manifest:
        from .fleet.manifest import FleetItem, Manifest
        manifest = Manifest(
            FleetItem(kind="synth", style=args.style,
                      function_count=args.functions, seed=seed)
            for seed in seeds)
        manifest.save(args.manifest)
        print(f"wrote {args.manifest} (fleet manifest, "
              f"{len(manifest)} items; feed it to "
              f"`repro evalfleet plan --manifest` or "
              f"`repro evalfleet run`)")
    return 0


def _load_image(path: Path) -> LoadedImage:
    """Load any supported container (RPRB / ELF64 / PE32+) by magic.

    Parse failures surface as :class:`FormatError`; the command
    handlers turn them into a one-line stderr message and exit code 2
    instead of a traceback.
    """
    return load_any(path.read_bytes())


def _cmd_disasm(args: argparse.Namespace) -> int:
    try:
        image = _load_image(Path(args.binary))
    except FormatError as error:
        print(f"disasm: {args.binary}: {error}", file=sys.stderr)
        return 2
    binary = image.binary
    disassembler = Disassembler()
    rich = disassembler.disassemble_rich(binary)
    result = rich.result
    text = binary.text.data
    if args.json:
        # The canonical machine-readable claim; the serving layer's
        # /v1/disassemble response embeds exactly these bytes.
        print(result.to_json())
        return 0
    print(result.summary())
    if args.profile:
        print("\nphase timings:")
        print(rich.timings.render())
        print()
    if args.listing:
        print(render_listing(text, result))
    else:
        print(f"functions at: "
              f"{', '.join(hex(e) for e in sorted(result.function_entries))}")
        for start, end, kind in classify_data_regions(text, result):
            print(f"data {start:#08x}-{end:#08x}  {end - start:5d} bytes  "
                  f"{kind}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (DEFAULT_REGISTRY, LintConfig, Severity,
                       lint_disassembly)

    if args.list_rules:
        for rule in DEFAULT_REGISTRY:
            print(f"{rule.id:28s} {rule.severity.name.lower():8s} "
                  f"{rule.description}")
        return 0

    if args.binary is None:
        print("lint: a binary is required unless --list-rules is given",
              file=sys.stderr)
        return 2
    try:
        image = _load_image(Path(args.binary))
    except FormatError as error:
        print(f"lint: {args.binary}: {error}", file=sys.stderr)
        return 2
    binary = image.binary
    config = DisassemblerConfig(use_lint_feedback=args.feedback,
                                record_provenance=args.provenance)
    disassembler = Disassembler(config=config)
    rich = disassembler.disassemble_rich(binary)
    try:
        lint_config = LintConfig(disabled=tuple(args.disable or ()))
        report = lint_disassembly(rich.result, binary.text.data,
                                  config=lint_config,
                                  hints=image.hints,
                                  text_addr=binary.text.addr,
                                  facts=rich.facts,
                                  provenance=rich.provenance)
    except KeyError as error:
        print(f"unknown rule: {error.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.render_text())

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 1 if report.at_least(threshold) else 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    base = Path(args.case)
    case = TestCase.load(base.parent if base.parent != Path("")
                         else Path("."), base.name)
    disassembler = Disassembler()
    evaluation = evaluate(disassembler.disassemble(case), case.truth)
    print(f"instruction precision: {evaluation.instructions.precision:.4f}")
    print(f"instruction recall:    {evaluation.instructions.recall:.4f}")
    print(f"instruction F1:        {evaluation.instructions.f1:.4f}")
    print(f"byte errors:           {evaluation.bytes.total_errors} "
          f"({evaluation.bytes.false_code} false-code, "
          f"{evaluation.bytes.missed_code} missed-code)")
    print(f"function F1:           {evaluation.functions.f1:.4f}")
    return 0


def _cmd_rewrite(args: argparse.Namespace) -> int:
    from .rewrite import rewrite_binary

    try:
        binary = _load_image(Path(args.binary)).binary
    except FormatError as error:
        print(f"rewrite: {args.binary}: {error}", file=sys.stderr)
        return 2
    disassembler = Disassembler()
    rich = disassembler.disassemble_rich(binary)
    rewritten = rewrite_binary(rich, binary,
                               instrument_entries=not args.no_counters)
    output = Path(args.output)
    output.write_bytes(rewritten.binary.to_bytes())
    print(f"wrote {output}: {len(rewritten.text)} text bytes "
          f"(was {len(binary.text.data)}), "
          f"{len(rewritten.counters)} instrumented entries")
    if args.map:
        map_path = Path(args.map)
        import json
        map_path.write_text(json.dumps(
            {hex(old): hex(new)
             for old, new in sorted(rewritten.address_map.items())},
            indent=0))
        print(f"wrote {map_path} (address map)")
    if args.verify:
        from .core import FactBase, disassemble_incremental
        base = FactBase.from_run(rich, disassembler.config)
        second, stats = disassemble_incremental(disassembler, base,
                                                rewritten.binary)
        moved = set(rewritten.address_map.values())
        recovered = len(moved & second.result.instruction_starts)
        fraction = recovered / len(moved) if moved else 1.0
        mode = (f"cold ({stats.reason})" if stats.cold
                else f"incremental, {stats.reused_fraction:.0%} of "
                     f"superset reused")
        print(f"verify: re-disassembled {mode}; recovered "
              f"{recovered}/{len(moved)} moved instructions "
              f"({fraction:.2%})")
        if fraction < 0.95:
            print(f"rewrite: verify failed: only {fraction:.2%} of "
                  f"moved instructions recovered", file=sys.stderr)
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        batch_window=args.batch_window_ms / 1000.0,
        cache_size=args.cache_size,
        max_body=args.max_body_mb * 1024 * 1024,
        default_timeout=args.timeout_s,
        access_log_path=args.access_log,
        trace_path=args.trace,
        profile_path=args.sample_profile,
    )
    return run_server(config)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .eval.experiments import main as experiments_main
    argv = list(args.ids)
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.bench_json:
        argv += ["--bench-json", args.bench_json]
    return experiments_main(argv)


def _resolve_text_offset(binary, raw: str) -> int:
    """Parse an address argument; virtual addresses map into .text."""
    try:
        value = int(raw, 0)
    except ValueError:
        raise ValueError(f"bad address {raw!r} (use decimal or 0x hex)") \
            from None
    if value >= binary.text.addr:
        value -= binary.text.addr
    if not 0 <= value < len(binary.text.data):
        raise ValueError(
            f"address {raw} outside the text section "
            f"(0-{len(binary.text.data):#x}, or virtual "
            f"{binary.text.addr:#x}+)")
    return value


def _classification_of(result, offset: int) -> str:
    if offset in result.instructions:
        return "code (instruction start)"
    for start, end in result.data_regions:
        if start <= offset < end:
            return "data"
    for start, length in result.instructions.items():
        if start < offset < start + length:
            return "code (instruction interior)"
    return "unclassified"


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    try:
        image = _load_image(Path(args.binary))
    except FormatError as error:
        print(f"explain: {args.binary}: {error}", file=sys.stderr)
        return 2
    binary = image.binary
    try:
        offset = _resolve_text_offset(binary, args.address)
    except ValueError as error:
        print(f"explain: {error}", file=sys.stderr)
        return 2
    config = DisassemblerConfig(record_provenance=True,
                                use_lint_feedback=args.feedback)
    rich = Disassembler(config=config).disassemble_rich(binary)
    provenance = rich.provenance
    assert provenance is not None
    events = provenance.events_at(offset)
    classification = _classification_of(rich.result, offset)
    if args.json:
        print(json.dumps({
            "address": f"{offset:#x}",
            "classification": classification,
            "events": [event.to_dict() for event in events],
        }, indent=2))
    else:
        print(f"{offset:#x}: {classification}")
        print(provenance.explain(offset))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs.metrics import REGISTRY

    if args.server:
        import http.client
        host, _, port = args.server.partition(":")
        connection = http.client.HTTPConnection(
            host or "127.0.0.1", int(port) if port else 8080, timeout=30)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            body = response.read().decode("utf-8")
        except OSError as error:
            print(f"metrics: {args.server}: {error}", file=sys.stderr)
            return 1
        finally:
            connection.close()
        if response.status != 200:
            print(f"metrics: {args.server}: HTTP {response.status}",
                  file=sys.stderr)
            return 1
        sys.stdout.write(body)
        return 0
    if not args.binary:
        print("metrics: a binary or --server HOST:PORT is required",
              file=sys.stderr)
        return 2
    try:
        image = _load_image(Path(args.binary))
    except FormatError as error:
        print(f"metrics: {args.binary}: {error}", file=sys.stderr)
        return 2
    Disassembler().disassemble(image.binary)
    if args.format == "json":
        print(json.dumps(REGISTRY.snapshot(), indent=2))
    else:
        sys.stdout.write(REGISTRY.render_prometheus())
    return 0


def _add_trace_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument("--trace", metavar="PATH", default=None,
                         help="write hierarchical spans as JSONL "
                              "(also honors REPRO_TRACE)")


def _add_profile_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument("--sample-profile", metavar="PATH", default=None,
                         help="run the sampling profiler and write a "
                              "repro-profile-v1 JSON document (also "
                              "honors REPRO_PROFILE)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Metadata-free disassembly of complex binaries "
                    "(ASPLOS 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate a synthetic stripped binary")
    generate.add_argument("output", help="output path prefix")
    generate.add_argument("--style", default="msvc-like",
                          choices=sorted(STYLES))
    generate.add_argument("--functions", type=int, default=40)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--seed-range", metavar="A:B", default=None,
                          help="generate one binary per seed in "
                               "[A, B) as OUTPUT-sNNNNNN "
                               "(overrides --seed)")
    generate.add_argument("--manifest", metavar="OUT.json", default=None,
                          help="also write a fleet manifest covering "
                               "the generated spec(s)")
    generate.add_argument("--format", choices=("rprb", "elf"),
                          default="rprb",
                          help="container to write: the native .bin "
                               "(default) or a real ELF64 .elf")
    generate.set_defaults(func=_cmd_generate)

    disasm = sub.add_parser(
        "disasm", help="disassemble a binary (.bin / ELF64 / PE32+)")
    disasm.add_argument("binary")
    disasm.add_argument("--listing", action="store_true",
                        help="print the full instruction listing")
    disasm.add_argument("--json", action="store_true",
                        help="print the result as canonical JSON "
                             "(byte-identical to the serving API)")
    disasm.add_argument("--profile", action="store_true",
                        help="print per-phase wall-clock timings")
    _add_trace_flag(disasm)
    _add_profile_flag(disasm)
    disasm.set_defaults(func=_cmd_disasm)

    lint = sub.add_parser(
        "lint", help="verify a disassembly without ground truth")
    lint.add_argument("binary", nargs="?",
                      help="path to a binary (.bin / ELF64 / PE32+)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="diagnostic output format")
    lint.add_argument("--fail-on", default="error",
                      choices=("error", "warning", "info", "never"),
                      help="exit 1 if any diagnostic reaches this "
                           "severity (default: error)")
    lint.add_argument("--disable", action="append", metavar="RULE",
                      help="disable a rule by id (repeatable)")
    lint.add_argument("--feedback", action="store_true",
                      help="enable the lint-feedback correction round "
                           "before linting")
    lint.add_argument("--provenance", action="store_true",
                      help="record the decision audit trail and attach "
                           "each diagnostic's causal chain")
    lint.add_argument("--list-rules", action="store_true",
                      help="list available rules and exit")
    _add_trace_flag(lint)
    lint.set_defaults(func=_cmd_lint)

    evaluate_cmd = sub.add_parser(
        "evaluate", help="score the disassembler against ground truth")
    evaluate_cmd.add_argument("case", help="path prefix of .bin/.gt.json")
    evaluate_cmd.set_defaults(func=_cmd_evaluate)

    rewrite = sub.add_parser(
        "rewrite", help="relocate + instrument a .bin container")
    rewrite.add_argument("binary")
    rewrite.add_argument("output")
    rewrite.add_argument("--no-counters", action="store_true",
                         help="relocate only, without instrumentation")
    rewrite.add_argument("--map", help="write the address map as JSON")
    rewrite.add_argument("--verify", action="store_true",
                         help="re-disassemble the rewritten binary "
                              "(incrementally, reusing the first run's "
                              "fact base) and check that the moved "
                              "instructions are recovered")
    rewrite.set_defaults(func=_cmd_rewrite)

    serve = sub.add_parser(
        "serve", help="run the disassembly service (HTTP JSON API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes (0 = run jobs inline)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="queued-job bound before answering 429")
    serve.add_argument("--batch-max", type=int, default=8,
                       help="max jobs dispatched to a worker as one batch")
    serve.add_argument("--batch-window-ms", type=float, default=0.0,
                       help="micro-batch linger window in milliseconds")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--max-body-mb", type=int, default=64,
                       help="largest accepted request body in MiB")
    serve.add_argument("--timeout-s", type=float, default=120.0,
                       help="default per-job deadline in seconds")
    serve.add_argument("--access-log", metavar="PATH", default=None,
                       help="JSONL access-log path (default: stderr)")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="stream request-lifecycle spans to a JSONL "
                            "file (also honors REPRO_TRACE)")
    _add_profile_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    explain = sub.add_parser(
        "explain", help="show why one byte was classified code or data")
    explain.add_argument("binary",
                         help="path to a binary (.bin / ELF64 / PE32+)")
    explain.add_argument("address",
                         help="text-section offset or virtual address "
                              "(decimal or 0x hex)")
    explain.add_argument("--json", action="store_true",
                         help="emit the decision chain as JSON")
    explain.add_argument("--feedback", action="store_true",
                         help="include the lint-feedback correction "
                              "round in the audited run")
    _add_trace_flag(explain)
    explain.set_defaults(func=_cmd_explain)

    metrics = sub.add_parser(
        "metrics", help="dump pipeline metrics (Prometheus text format)")
    metrics.add_argument("binary", nargs="?",
                         help="disassemble this binary, then dump the "
                              "pipeline metrics it produced")
    metrics.add_argument("--server", metavar="HOST:PORT", default=None,
                         help="scrape a running `repro serve` instance "
                              "instead of running locally")
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus",
                         help="local dump format (default: prometheus)")
    metrics.set_defaults(func=_cmd_metrics)

    experiments = sub.add_parser("experiments",
                                 help="run evaluation experiments")
    experiments.add_argument("ids", nargs="+",
                             help="experiment ids (t1..t5, f1..f4, v1, "
                                  "l1, r1, all)")
    experiments.add_argument("--jobs", type=int, default=None, metavar="N",
                             help="parallel worker processes "
                                  "(0 = one per CPU)")
    experiments.add_argument("--bench-json", metavar="PATH", default=None,
                             help="write wall-clock timings as JSON")
    experiments.set_defaults(func=_cmd_experiments)

    from .fleet.commands import add_evalfleet_parser
    add_evalfleet_parser(sub)
    from .obs.commands import add_obs_parser
    add_obs_parser(sub)
    return parser


def _trace_context(args: argparse.Namespace):
    """Tracing activation for one command invocation.

    ``--trace PATH`` or a non-empty ``REPRO_TRACE`` installs a tracer
    for the command and exports its spans on exit.  ``repro serve``
    manages its own tracer (it must flush incrementally while running),
    so it is excluded here.
    """
    if getattr(args, "command", None) == "serve":
        return nullcontext()
    from .obs.trace import activate, trace_path_from_env
    path = getattr(args, "trace", None) or trace_path_from_env()
    return activate(path) if path else nullcontext()


def _profile_context(args: argparse.Namespace):
    """Sampling-profiler activation for one command invocation.

    ``--sample-profile PATH`` or a non-empty ``REPRO_PROFILE`` runs the
    sampler for the command and writes the profile document on exit.
    ``repro serve`` (profiler tied to server shutdown) and
    ``repro evalfleet`` (profile written into the run directory) manage
    their own lifecycles, so they are excluded here.
    """
    if getattr(args, "command", None) in ("serve", "evalfleet", "obs"):
        return nullcontext()
    from .obs.profile import profile_path_from_env, profiling
    path = (getattr(args, "sample_profile", None)
            or profile_path_from_env())
    if not path:
        return nullcontext()
    return profiling(path, command=getattr(args, "command", "?"))


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _trace_context(args), _profile_context(args):
            return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager that exited early (e.g. `| head`).
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
