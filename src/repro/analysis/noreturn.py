"""Returning-ness analysis: does a called function ever return?

Compilers place data (and padding) directly after calls to noreturn
functions -- the call's fall-through is *not* code.  A disassembler that
unconditionally follows call fall-through swallows that data as code,
so tracing must defer each call's continuation until the callee is known
to return.

The analysis walks the *superset* control-flow graph from each callee
entry (candidate instructions exist before tracing confirms them, and
from a confirmed entry the walk follows exactly the instructions tracing
would confirm).  A function returns when some path reaches a ``ret``, a
tail jump out of the section, or flow the analysis cannot follow
(unresolved indirect jumps); it is noreturn when *every* path dies in
``hlt``/``ud2``, spins in a cycle, runs into undecodable bytes, or calls
only other noreturn functions.  Calls inside the walk consult the
fixpoint, so mutual panic helpers resolve correctly.
"""

from __future__ import annotations

from ..isa.opcodes import FlowKind
from ..superset.superset import Superset


def compute_returning(superset: Superset, targets: set[int], *,
                      resolved_jumps: dict[int, tuple[int, ...]]
                      | None = None,
                      resolve_dispatch=None,
                      max_rounds: int = 50) -> dict[int, bool]:
    """For each target entry, True when some path reaches a return.

    ``resolved_jumps`` maps indirect-jump dispatch offsets to their
    resolved case targets (so a switch inside a panic handler does not
    force the conservative "assume it returns" answer).

    This is the *greatest* fixpoint: every target starts out assumed
    returning and is demoted only when all of its paths provably die
    under the current assumptions.  Starting optimistic is the sound
    direction -- mutually recursive functions whose returns depend on
    the cycle stay returning (never losing real code), while mutually
    recursive panic helpers still converge to noreturn (each one's
    paths die regardless of the other's assumed verdict).
    """
    resolved_jumps = resolved_jumps or {}
    returning: dict[int, bool] = {target: True for target in targets}
    for _ in range(max_rounds):
        changed = False
        for target in targets:
            if not returning[target]:
                continue
            if not _reaches_return(superset, target, returning,
                                   resolved_jumps, resolve_dispatch):
                returning[target] = False
                changed = True
        if not changed:
            break
    return returning


def _reaches_return(superset: Superset, entry: int,
                    returning: dict[int, bool],
                    resolved_jumps: dict[int, tuple[int, ...]],
                    resolve_dispatch=None) -> bool:
    """BFS over superset candidates from ``entry``, looking for a way
    out: a ``ret``, a tail jump out of the section, or any flow the
    analysis cannot follow."""
    seen: set[int] = set()
    stack = [entry]
    while stack:
        offset = stack.pop()
        if offset in seen:
            continue
        seen.add(offset)
        instruction = superset.at(offset)
        if instruction is None:
            continue               # undecodable: this path is dead
        flow = instruction.flow

        if flow is FlowKind.RET:
            return True
        if flow in (FlowKind.HALT, FlowKind.TRAP):
            continue               # dead end on this path
        if flow is FlowKind.IJUMP:
            case_targets = resolved_jumps.get(offset)
            if case_targets is None and resolve_dispatch is not None:
                case_targets = resolve_dispatch(offset)
            if case_targets is None:
                return True        # unresolved tail dispatch: assume ok
            stack.extend(case_targets)
            continue
        if flow is FlowKind.JUMP:
            target = instruction.branch_target
            if target is None or not 0 <= target < len(superset):
                return True        # jump out of section: assume ok
            if target == entry:
                continue           # self tail call proves nothing new
            if target in returning:
                # Tail call to an analyzed function.
                if returning[target]:
                    return True
                continue
            stack.append(target)
            continue
        if flow is FlowKind.CJUMP:
            target = instruction.branch_target
            if target is not None and 0 <= target < len(superset):
                stack.append(target)
            stack.append(instruction.end)
            continue
        if flow is FlowKind.CALL:
            target = instruction.branch_target
            callee_returns = True
            if target is not None and target in returning:
                callee_returns = returning[target]
            if callee_returns:
                stack.append(instruction.end)
            continue
        if flow is FlowKind.ICALL:
            stack.append(instruction.end)
            continue
        # Plain sequential flow.
        if instruction.end < len(superset):
            stack.append(instruction.end)
        else:
            return True            # falls off the section: assume ok
    return False
