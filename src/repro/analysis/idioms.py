"""Code idiom recognition: prologues, epilogues, padding.

Compilers emit highly stereotyped function openings; recognizing them at
aligned offsets (especially right after padding runs) yields
medium-priority code evidence for the correction algorithm and seeds
function-boundary identification.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind
from ..isa.operands import ImmOp, RegOp
from ..isa.registers import RBP, RSP
from ..superset.superset import Superset

#: Score threshold above which an offset is treated as a likely prologue.
PROLOGUE_THRESHOLD = 2


def _is_push_rbp(ins: Instruction) -> bool:
    return (ins.mnemonic == "push" and ins.operands
            and isinstance(ins.operands[0], RegOp)
            and ins.operands[0].register.family == RBP)


def _is_push_callee_saved(ins: Instruction) -> bool:
    from ..isa.registers import CALLEE_SAVED
    return (ins.mnemonic == "push" and ins.operands
            and isinstance(ins.operands[0], RegOp)
            and ins.operands[0].register.family in CALLEE_SAVED)


def _is_mov_rbp_rsp(ins: Instruction) -> bool:
    return (ins.mnemonic == "mov" and len(ins.operands) == 2
            and isinstance(ins.operands[0], RegOp)
            and isinstance(ins.operands[1], RegOp)
            and ins.operands[0].register.family == RBP
            and ins.operands[1].register.family == RSP)


def _is_sub_rsp_imm(ins: Instruction) -> bool:
    return (ins.mnemonic == "sub" and len(ins.operands) == 2
            and isinstance(ins.operands[0], RegOp)
            and ins.operands[0].register.family == RSP
            and isinstance(ins.operands[1], ImmOp)
            and 0 < ins.operands[1].value < 2 ** 20)


def _is_endbr(ins: Instruction) -> bool:
    return ins.mnemonic == "nop" and ins.raw[:1] == b"\xf3"


def prologue_score(superset: Superset, offset: int, *,
                   lookahead: int = 4) -> int:
    """How strongly the candidate chain at ``offset`` opens a function.

    0 means "not a prologue"; 2+ is a confident match (canonical
    push rbp / mov rbp, rsp pairs, endbr landing pads followed by frame
    setup, or frameless sub rsp openings).
    """
    chain = superset.fallthrough_chain(offset, lookahead)
    if not chain:
        return 0
    score = 0
    first = chain[0]
    if _is_endbr(first):
        score += 2
        chain = chain[1:]
        if not chain:
            return score
        first = chain[0]
    if _is_push_rbp(first):
        score += 2
        if len(chain) > 1 and _is_mov_rbp_rsp(chain[1]):
            score += 2
    elif _is_push_callee_saved(first):
        score += 1
    elif _is_sub_rsp_imm(first):
        score += 1
    for ins in chain[1:3]:
        if _is_sub_rsp_imm(ins) or _is_push_callee_saved(ins):
            score += 1
    return score


def is_epilogue_end(ins: Instruction) -> bool:
    """ret / tail-jump: ends a function body."""
    return ins.flow in (FlowKind.RET, FlowKind.JUMP, FlowKind.IJUMP)


def padding_kind(text: bytes, offset: int) -> str | None:
    """Classify the byte at ``offset`` as a typical padding byte."""
    byte = text[offset]
    if byte == 0xCC:
        return "int3"
    if byte == 0x00:
        return "zero"
    if byte == 0x90:
        return "nop"
    return None


def likely_function_starts(superset: Superset, *, alignment: int = 16,
                           threshold: int = PROLOGUE_THRESHOLD) -> list[int]:
    """Aligned offsets whose candidate chain looks like a prologue."""
    starts = []
    for offset in range(0, len(superset), alignment):
        if superset.is_valid(offset) and \
                prologue_score(superset, offset) >= threshold:
            starts.append(offset)
    return starts
