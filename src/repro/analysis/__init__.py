"""Behavioral static analyses over superset candidates."""

from .behavior import (DEFAULT_WEIGHTS, BehaviorAnalyzer, BehaviorReport,
                       BehaviorWeights)
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .defuse import CONVENTIONALLY_LIVE, DefUseSignals, analyze_chain
from .idioms import (PROLOGUE_THRESHOLD, is_epilogue_end,
                     likely_function_starts, padding_kind, prologue_score)

__all__ = [
    "DEFAULT_WEIGHTS", "BehaviorAnalyzer", "BehaviorReport",
    "BehaviorWeights", "BasicBlock", "ControlFlowGraph", "build_cfg",
    "CONVENTIONALLY_LIVE", "DefUseSignals", "analyze_chain",
    "PROLOGUE_THRESHOLD", "is_epilogue_end", "likely_function_starts",
    "padding_kind", "prologue_score",
]
