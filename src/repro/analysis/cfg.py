"""Control-flow graph construction over an accepted instruction set.

Once the correction algorithm has settled on a set of instruction
starts, the CFG organizes them into basic blocks for function-boundary
identification and for downstream consumers of the library (the same
structure a binary-rewriting client would use).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import networkx as nx

from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind
from ..superset.superset import Superset


@dataclass
class BasicBlock:
    """A maximal straight-line run of accepted instructions."""

    start: int
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.end

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]


@dataclass
class ControlFlowGraph:
    """Basic blocks plus a networkx digraph over their start offsets."""

    blocks: dict[int, BasicBlock]
    graph: nx.DiGraph

    def successors(self, start: int) -> list[int]:
        return sorted(self.graph.successors(start))

    def predecessors(self, start: int) -> list[int]:
        return sorted(self.graph.predecessors(start))

    def reachable_from(self, roots: Iterable[int]) -> set[int]:
        """Block starts reachable from any root (intraprocedural edges).

        ``roots`` may be any iterable of offsets (list, set, generator);
        offsets that are not block starts are ignored.
        """
        seen: set[int] = set()
        stack = [r for r in roots if r in self.blocks]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.graph.successors(node))
        return seen


def build_cfg(superset: Superset, accepted: set[int]) -> ControlFlowGraph:
    """Partition accepted instruction starts into basic blocks.

    Leaders are: branch targets, fall-through points after
    control-transfer instructions, and starts with no accepted
    fall-through predecessor.  Call edges are *not* CFG edges (calls
    fall through); direct call targets become block leaders but the
    interprocedural edge lives in the function model instead.
    """
    instructions = {o: superset.at(o) for o in accepted
                    if superset.at(o) is not None}

    leaders: set[int] = set()
    has_fallthrough_pred: set[int] = set()
    for offset, ins in instructions.items():
        if ins.is_direct_branch:
            target = ins.branch_target
            if target in instructions:
                leaders.add(target)
        if ins.flow in (FlowKind.JUMP, FlowKind.CJUMP, FlowKind.IJUMP,
                        FlowKind.RET, FlowKind.HALT):
            if ins.end in instructions:
                leaders.add(ins.end)
        elif ins.falls_through and ins.end in instructions:
            has_fallthrough_pred.add(ins.end)
    for offset in instructions:
        if offset not in has_fallthrough_pred:
            leaders.add(offset)

    blocks: dict[int, BasicBlock] = {}
    for leader in sorted(leaders):
        block = BasicBlock(start=leader)
        current = leader
        while current in instructions:
            ins = instructions[current]
            block.instructions.append(ins)
            if (not ins.falls_through or ins.end in leaders
                    or ins.end not in instructions):
                break
            current = ins.end
        if block.instructions:
            blocks[leader] = block

    graph = nx.DiGraph()
    graph.add_nodes_from(blocks)
    for start, block in blocks.items():
        terminator = block.terminator
        if terminator.falls_through and terminator.flow is not FlowKind.CALL \
                and terminator.end in blocks:
            graph.add_edge(start, terminator.end)
        if terminator.flow is FlowKind.CALL and terminator.end in blocks:
            graph.add_edge(start, terminator.end)
        if terminator.flow in (FlowKind.JUMP, FlowKind.CJUMP):
            target = terminator.branch_target
            if target in blocks:
                graph.add_edge(start, target)
    return ControlFlowGraph(blocks=blocks, graph=graph)
