"""Behavioral scoring: does the candidate chain *behave* like code?

This is the "behavioral properties of code to flag data" half of the
paper.  For every superset candidate we examine its bounded
fall-through window and combine hard structural violations (falling
through into undecodable bytes) with soft behavioral signals (rare
opcodes, traps mid-stream, def-use discipline) into a single additive
score: positive means code-like, negative means data-like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa.opcodes import FlowKind
from ..superset.superset import Superset
from .defuse import DefUseSignals, analyze_chain

#: Weights of the behavioral score components.  These are coarse,
#: hand-calibrated log-odds-like contributions; the prioritized
#: correction algorithm only relies on their ordering being sensible.
@dataclass(frozen=True)
class BehaviorWeights:
    invalid_fallthrough: float = -4.0
    trap_in_chain: float = -1.5
    rare_instruction: float = -1.0
    defuse_pair: float = 0.35
    flag_pair: float = 0.25
    register_anomaly: float = -0.8
    flag_anomaly: float = -0.4
    terminated_chain: float = 0.3


DEFAULT_WEIGHTS = BehaviorWeights()


@dataclass(frozen=True)
class BehaviorReport:
    """Per-candidate behavioral findings."""

    offset: int
    chain_length: int
    invalid_fallthrough: bool
    traps: int
    rare: int
    signals: DefUseSignals
    terminated: bool

    def score(self, weights: BehaviorWeights = DEFAULT_WEIGHTS) -> float:
        total = 0.0
        if self.invalid_fallthrough:
            total += weights.invalid_fallthrough
        total += weights.trap_in_chain * self.traps
        total += weights.rare_instruction * self.rare
        total += weights.defuse_pair * self.signals.defuse_pairs
        total += weights.flag_pair * self.signals.flag_pairs
        total += weights.register_anomaly * self.signals.register_anomalies
        total += weights.flag_anomaly * self.signals.flag_anomalies
        if self.terminated:
            total += weights.terminated_chain
        return total / max(self.chain_length, 1)


class BehaviorAnalyzer:
    """Computes behavioral reports and scores over a superset."""

    def __init__(self, window: int = 8,
                 weights: BehaviorWeights = DEFAULT_WEIGHTS) -> None:
        self.window = window
        self.weights = weights

    def report(self, superset: Superset, offset: int) -> BehaviorReport:
        chain = superset.fallthrough_chain(offset, self.window)
        if not chain:
            return BehaviorReport(offset, 0, True, 0, 0,
                                  analyze_chain([]), False)
        last = chain[-1]
        terminated = not last.falls_through
        # A chain is cut by invalid bytes when it is shorter than the
        # window, still falls through, and its next offset is inside the
        # section but undecodable.
        invalid_fallthrough = False
        if not terminated and len(chain) < self.window:
            nxt = last.end
            invalid_fallthrough = (nxt < len(superset)
                                   and not superset.is_valid(nxt))

        traps = sum(1 for ins in chain
                    if ins.flow in (FlowKind.TRAP, FlowKind.HALT))
        rare = sum(1 for ins in chain if ins.rare)
        signals = analyze_chain(chain)
        return BehaviorReport(offset=offset, chain_length=len(chain),
                              invalid_fallthrough=invalid_fallthrough,
                              traps=traps, rare=rare, signals=signals,
                              terminated=terminated)

    def score_all(self, superset: Superset) -> np.ndarray:
        """Vector of behavioral scores for every offset of the section."""
        scores = np.full(len(superset), self.weights.invalid_fallthrough)
        for offset in superset.valid_offsets:
            scores[offset] = self.report(superset, offset).score(self.weights)
        return scores

    def rescore(self, superset: Superset, offsets,
                scores: np.ndarray) -> None:
        """Recompute ``scores[o]`` in place for a subset of offsets.

        Behavioral scores depend only on the bounded fall-through
        window, so incremental re-disassembly recomputes just the
        offsets whose window touches changed bytes; each value is
        bit-identical to a full :meth:`score_all` (same per-offset
        path).
        """
        for offset in offsets:
            if superset.is_valid(offset):
                scores[offset] = self.report(superset,
                                             offset).score(self.weights)
            else:
                scores[offset] = self.weights.invalid_fallthrough
