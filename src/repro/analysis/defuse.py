"""Register def-use analysis over candidate instruction chains.

Real compiler output computes values before consuming them; byte
sequences that merely *decode* (data, or starts inside real
instructions) show no such discipline.  Walking a candidate chain we
count:

* **def-use pairs** -- a register written earlier and read later
  (positive, code-like evidence);
* **register anomalies** -- reads of registers that are neither
  conventionally live at an unknown program point (arguments, stack
  registers, return value, callee-saved) nor defined in the window;
* **flag anomalies** -- flag consumers (jcc/setcc/cmov) with no flag
  producer earlier in the window.

All three signals are *soft*: a chain may begin mid-function where
unusual registers are legitimately live, so anomalies lower confidence
rather than vetoing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.opcodes import FlowKind
from ..isa.operands import RegOp
from ..isa.registers import (R8, R9, RAX, RBP, RBX, RCX, RDI, RDX, RSI, RSP,
                             R12, R13, R14, R15)

#: Registers plausibly live at an arbitrary program point: arguments,
#: stack registers, the return register, and callee-saved registers.
CONVENTIONALLY_LIVE = frozenset({
    RDI, RSI, RDX, RCX, R8, R9,   # System V argument registers
    RSP, RBP,                     # stack
    RAX,                          # return value
    RBX, R12, R13, R14, R15,      # callee-saved
})


@dataclass(frozen=True)
class DefUseSignals:
    """Counts extracted from one candidate chain."""

    instructions: int
    defuse_pairs: int
    register_anomalies: int
    flag_anomalies: int
    flag_pairs: int

    @property
    def pair_density(self) -> float:
        return self.defuse_pairs / max(self.instructions, 1)

    @property
    def anomaly_density(self) -> float:
        return ((self.register_anomalies + self.flag_anomalies)
                / max(self.instructions, 1))


def _is_zeroing_idiom(instruction: Instruction) -> bool:
    """xor r, r (or sub r, r): defines the register without reading it."""
    if instruction.mnemonic not in ("xor", "sub"):
        return False
    operands = instruction.operands
    return (len(operands) == 2
            and isinstance(operands[0], RegOp)
            and isinstance(operands[1], RegOp)
            and operands[0].register.family == operands[1].register.family)


def analyze_chain(chain: list[Instruction]) -> DefUseSignals:
    """Extract def-use signals from a fall-through candidate chain."""
    defined: set[int] = set()
    defuse_pairs = 0
    register_anomalies = 0
    flag_anomalies = 0
    flag_pairs = 0
    flags_defined = False

    for instruction in chain:
        reads = instruction.reads
        if _is_zeroing_idiom(instruction):
            reads = frozenset()

        for register in reads:
            if register in defined:
                defuse_pairs += 1
            elif register not in CONVENTIONALLY_LIVE:
                register_anomalies += 1

        if instruction.reads_flags:
            if flags_defined:
                flag_pairs += 1
            else:
                flag_anomalies += 1
        if instruction.writes_flags:
            flags_defined = True

        if instruction.flow in (FlowKind.CALL, FlowKind.ICALL):
            # After a call only the return value is known-defined.
            defined = {RAX, RSP, RBP} | (defined & CONVENTIONALLY_LIVE)
        else:
            defined |= instruction.writes

    return DefUseSignals(
        instructions=len(chain),
        defuse_pairs=defuse_pairs,
        register_anomalies=register_anomalies,
        flag_anomalies=flag_anomalies,
        flag_pairs=flag_pairs,
    )
