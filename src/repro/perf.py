"""Phase-timing instrumentation for the disassembly pipeline.

The disassembler is a sequence of well-separated phases (superset
construction, statistical/behavioral scoring, table detection,
prioritized correction, gap completion, function identification).
:class:`PhaseTimings` is a lightweight context-manager timer the engine
threads through those phases; the result is surfaced three ways:

* appended to the engine log (``repro.core.disassembler``),
* printed by the CLI under ``--profile``,
* dumped machine-readably via :func:`write_bench_json` so benchmark
  runs leave a ``BENCH_*.json`` artifact later PRs can diff against.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path


class PhaseTimings:
    """Named wall-clock phase durations, in insertion order.

    Re-entering a phase name accumulates into the same bucket, so
    per-item phases (one timer around each correction pass, say) sum
    naturally.
    """

    def __init__(self) -> None:
        self.phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block under ``name``."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def merge(self, other: PhaseTimings | dict[str, float]) -> None:
        """Accumulate another timing set phase-by-phase.

        ``other`` may be a live :class:`PhaseTimings` or an
        :meth:`as_dict` dump; the dump's derived ``total`` key is
        skipped so merging never double-counts.  Merge and dump
        round-trip: splitting a workload over N timers, dumping each
        with :meth:`as_dict`, and merging the dumps into a fresh timer
        yields the same phase sums (and hence the same ``total``) as
        timing everything into one accumulator, up to float summation
        order.  The serving layer relies on this to aggregate
        worker-side phase timings across many batches.
        """
        phases = other.phases if isinstance(other, PhaseTimings) else other
        for name, seconds in phases.items():
            if name == "total":
                continue
            self.add(name, seconds)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> dict[str, float]:
        """Phase -> seconds, plus a derived ``total`` key.

        The dump is machine readable (``--bench-json`` artifacts) and
        feeds straight back into :meth:`merge`, which ignores the
        ``total`` key; see :meth:`merge` for the round-trip guarantee.
        """
        out = dict(self.phases)
        out["total"] = self.total
        return out

    def log_lines(self, prefix: str = "phase ") -> list[str]:
        """One compact line per phase, for the engine log."""
        return [f"{prefix}{name}: {seconds * 1000:.1f}ms"
                for name, seconds in self.phases.items()]

    def render(self) -> str:
        """Human-readable profile block for CLI ``--profile`` output."""
        if not self.phases:
            return "no phases recorded"
        width = max(len(name) for name in self.phases)
        total = self.total or 1.0
        lines = []
        for name, seconds in self.phases.items():
            share = 100.0 * seconds / total
            lines.append(f"{name.ljust(width)}  {seconds * 1000:9.1f}ms"
                         f"  {share:5.1f}%")
        lines.append(f"{'total'.ljust(width)}  {self.total * 1000:9.1f}ms")
        return "\n".join(lines)


#: Schema tag shared by every ``BENCH_*.json`` artifact.
BENCH_SCHEMA = "repro-bench-v1"


def bench_payload(**extra) -> dict:
    """Environment stamp for BENCH_*.json dumps (legacy free-form).

    Prefer :func:`bench_envelope`, which adds the structured
    ``tool`` / ``config`` / ``metrics`` split the run-record store
    ingests without per-script adapters.
    """
    from .isa.decoder import decoder_backend  # lazy: perf is low-level
    payload = {
        "schema": BENCH_SCHEMA,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "decoder_backend": decoder_backend(),
    }
    payload.update(extra)
    return payload


def bench_envelope(tool: str, config: dict | None = None,
                   metrics: dict | None = None, **extra) -> dict:
    """The unified ``repro-bench-v1`` envelope every bench script emits.

    * ``tool`` names the benchmark (``decode``, ``correct``, ``fleet``,
      ...); ``repro obs record`` keys the record kind ``bench-<tool>``
      off it.
    * ``config`` holds the knobs that shaped the run (corpus size,
      repeats, jobs) -- context, never trended.
    * ``metrics`` holds the measured numbers (arbitrarily nested;
      numeric leaves), the only part regression trending looks at.

    ``extra`` lands at the top level for artifact-specific payloads
    that other consumers address directly (e.g. ``trend=...``, which
    ``repro.fleet.aggregate.load_trend`` expects beside ``metrics``).
    """
    envelope = bench_payload(tool=tool, config=dict(config or {}),
                             metrics=dict(metrics or {}))
    envelope.update(extra)
    return envelope


def validate_bench_envelope(doc: dict) -> list[str]:
    """Schema check for a unified envelope; returns problem strings."""
    problems = []
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {BENCH_SCHEMA!r}")
    if not doc.get("tool") or not isinstance(doc.get("tool"), str):
        problems.append("missing or non-string 'tool'")
    for field in ("config", "metrics"):
        if not isinstance(doc.get(field), dict):
            problems.append(f"missing or non-dict {field!r}")

    def check_numeric(value, name: str) -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                check_numeric(sub, f"{name}.{key}")
        elif not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            problems.append(f"metrics leaf {name} is "
                            f"{type(value).__name__}, not numeric")

    if isinstance(doc.get("metrics"), dict):
        for key, value in doc["metrics"].items():
            check_numeric(value, key)
    return problems


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Write a benchmark payload as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
