"""Statistical code/data models: n-gram LM, data model, detectors."""

from .datamodel import (AsciiRun, DataByteModel, TableCandidate,
                        find_ascii_runs, find_jump_tables,
                        find_padding_runs)
from .ngram import NgramModel, token_of
from .scoring import StatisticalScorer, UNDECODABLE_SCORE
from .training import (Models, TRAINING_SEEDS, data_regions, default_models,
                       token_sequences, train_models)

__all__ = [
    "AsciiRun", "DataByteModel", "TableCandidate", "find_ascii_runs",
    "find_jump_tables", "find_padding_runs", "NgramModel", "token_of",
    "StatisticalScorer", "UNDECODABLE_SCORE", "Models", "TRAINING_SEEDS",
    "data_regions", "default_models", "token_sequences", "train_models",
]
