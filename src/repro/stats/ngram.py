"""Instruction-sequence n-gram language model.

Real machine code is extremely regular at the level of *normalized*
instructions: ``push rbp`` is followed by ``mov rbp, rsp`` far more often
than chance, ALU results feed stores, compares feed branches.  Byte
sequences that happen to decode (data, or mid-instruction starts)
produce token sequences with very low probability under a model trained
on real code.  This is the "statistical properties" half of the paper's
detector.

Tokens normalize away immediates, displacement values and exact
registers, keeping the mnemonic, coarse operand shapes, and width --
enough structure to be predictive, little enough to generalize.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from collections.abc import Iterable

from ..isa.instruction import Instruction
from ..isa.operands import ImmOp, MemOp, RegOp, RelOp

#: Pseudo-tokens marking sequence boundaries.
START = "<s>"
END = "</s>"


def token_of(instruction: Instruction) -> str:
    """Normalize an instruction to its model token."""
    shapes = []
    for operand in instruction.operands:
        if isinstance(operand, RegOp):
            shapes.append(f"r{operand.register.width}")
        elif isinstance(operand, ImmOp):
            shapes.append("i")
        elif isinstance(operand, MemOp):
            shapes.append("M" if operand.rip_relative else "m")
        elif isinstance(operand, RelOp):
            shapes.append("rel")
    return instruction.mnemonic + ":" + "".join(shapes)


class NgramModel:
    """An interpolated trigram model over instruction tokens.

    Probabilities interpolate trigram, bigram, unigram and a uniform
    floor so unseen sequences score low but never -inf.
    """

    def __init__(self, weights: tuple[float, float, float, float]
                 = (0.55, 0.30, 0.14, 0.01)) -> None:
        if abs(sum(weights) - 1.0) > 1e-9:
            raise ValueError("interpolation weights must sum to 1")
        self.weights = weights
        self.unigrams: Counter[str] = Counter()
        self.bigrams: Counter[tuple[str, str]] = Counter()
        self.trigrams: Counter[tuple[str, str, str]] = Counter()
        self.bigram_context: Counter[str] = Counter()
        self.trigram_context: Counter[tuple[str, str]] = Counter()
        self.total = 0
        # (token, context) -> log-prob memo.  Scoring a section queries
        # the same few thousand pairs hundreds of thousands of times
        # (overlapping fall-through chains), so this is a hot cache; it
        # is invalidated whenever counts change.
        self._log_prob_cache: dict[tuple[str, tuple[str, str]], float] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, sequences: Iterable[list[str]]) -> None:
        self._log_prob_cache.clear()
        for sequence in sequences:
            padded = [START, START] + list(sequence) + [END]
            for i in range(2, len(padded)):
                t1, t2, t3 = padded[i - 2], padded[i - 1], padded[i]
                self.unigrams[t3] += 1
                self.bigrams[(t2, t3)] += 1
                self.trigrams[(t1, t2, t3)] += 1
                self.bigram_context[t2] += 1
                self.trigram_context[(t1, t2)] += 1
                self.total += 1

    @property
    def vocabulary_size(self) -> int:
        return max(len(self.unigrams), 1)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def log_prob(self, token: str, context: tuple[str, str]) -> float:
        """log P(token | context) under the interpolated model (memoized)."""
        key = (token, context)
        cached = self._log_prob_cache.get(key)
        if cached is not None:
            return cached
        w3, w2, w1, w0 = self.weights
        t1, t2 = context
        p = w0 / self.vocabulary_size
        if self.total:
            p += w1 * self.unigrams.get(token, 0) / self.total
        c2 = self.bigram_context.get(t2, 0)
        if c2:
            p += w2 * self.bigrams.get((t2, token), 0) / c2
        c3 = self.trigram_context.get((t1, t2), 0)
        if c3:
            p += w3 * self.trigrams.get((t1, t2, token), 0) / c3
        result = math.log(p)
        self._log_prob_cache[key] = result
        return result

    def score_sequence(self, tokens: list[str]) -> float:
        """Total log-probability of a token sequence (without END)."""
        context = (START, START)
        total = 0.0
        for token in tokens:
            total += self.log_prob(token, context)
            context = (context[1], token)
        return total

    def score_instructions(self, instructions: list[Instruction]) -> float:
        return self.score_sequence([token_of(i) for i in instructions])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "weights": list(self.weights),
            "total": self.total,
            "unigrams": dict(self.unigrams),
            "bigrams": {f"{a}\t{b}": c
                        for (a, b), c in self.bigrams.items()},
            "trigrams": {f"{a}\t{b}\t{c}": n
                         for (a, b, c), n in self.trigrams.items()},
        })

    @classmethod
    def from_json(cls, text: str) -> NgramModel:
        raw = json.loads(text)
        model = cls(weights=tuple(raw["weights"]))
        model.total = raw["total"]
        model.unigrams = Counter(raw["unigrams"])
        for key, count in raw["bigrams"].items():
            a, b = key.split("\t")
            model.bigrams[(a, b)] = count
            model.bigram_context[a] += count
        for key, count in raw["trigrams"].items():
            a, b, c = key.split("\t")
            model.trigrams[(a, b, c)] = count
            model.trigram_context[(a, b)] += count
        return model
