"""Statistical models of *data*, and structural data detectors.

Two complementary mechanisms:

* :class:`DataByteModel` -- a smoothed byte-unigram distribution trained
  on true data regions.  Embedded data is dominated by a few byte
  populations (zero bytes of wide constants, printable ASCII, small
  offsets), so even a unigram model separates it well from the much more
  uniform byte distribution of code.

* Structure detectors -- :func:`find_jump_tables` and
  :func:`find_ascii_runs` locate the high-confidence shapes: runs of
  aligned pointers into the text section (absolute or self-relative
  jump/pointer tables) and printable-string runs.  Per the paper's key
  idea, a detected table is simultaneously strong *data* evidence for
  its own bytes and strong *code* evidence for its targets.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from collections.abc import Iterable


class DataByteModel:
    """Smoothed byte unigram distribution for data regions.

    The distribution is a mixture of the trained unigram and a uniform
    component.  The uniform share matters: embedded data includes
    high-entropy literal pools whose bytes are individually rare in the
    training data (which is dominated by zero-heavy pointer tables), and
    without the mixture such pools would look *less* data-like than
    code.
    """

    #: Weight of the uniform mixture component.
    UNIFORM_WEIGHT = 0.5

    def __init__(self) -> None:
        self.counts = [0] * 256
        self.total = 0

    def train(self, regions: Iterable[bytes]) -> None:
        for region in regions:
            for byte in region:
                self.counts[byte] += 1
            self.total += len(region)

    def log_prob_byte(self, byte: int) -> float:
        unigram = (self.counts[byte] + 1) / (self.total + 256)
        w = self.UNIFORM_WEIGHT
        return math.log((1 - w) * unigram + w / 256)

    def log_prob(self, blob: bytes) -> float:
        return sum(self.log_prob_byte(b) for b in blob)

    def to_json(self) -> str:
        return json.dumps({"counts": self.counts, "total": self.total})

    @classmethod
    def from_json(cls, text: str) -> DataByteModel:
        raw = json.loads(text)
        model = cls()
        model.counts = list(raw["counts"])
        model.total = raw["total"]
        return model


# ----------------------------------------------------------------------
# Structural detectors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableCandidate:
    """A detected jump/pointer table in the text section."""

    start: int
    end: int
    entry_size: int          # 8 (absolute) or 4 (self-relative)
    targets: tuple[int, ...]  # referenced text offsets

    @property
    def entry_count(self) -> int:
        return (self.end - self.start) // self.entry_size


def _read(blob: bytes, offset: int, size: int) -> int:
    return int.from_bytes(blob[offset:offset + size], "little")


def find_jump_tables(text: bytes, *, min_entries: int = 3,
                     is_plausible_target=None) -> list[TableCandidate]:
    """Detect runs of aligned pointers into the text section.

    Absolute tables: >= ``min_entries`` consecutive 8-byte little-endian
    values each inside [0, len(text)).  Self-relative tables: 4-byte
    values v such that start+v lies inside the section.  An optional
    ``is_plausible_target`` predicate (e.g. "decodes to a valid
    instruction") filters noise.

    Overlapping candidates are resolved greedily, longest-first.
    """
    limit = len(text)
    candidates: list[TableCandidate] = []

    def plausible(target: int) -> bool:
        if not 0 <= target < limit:
            return False
        return is_plausible_target is None or is_plausible_target(target)

    # Absolute 8-byte entries, 8-aligned.
    offset = 0
    while offset + 8 <= limit:
        if offset % 8:
            offset += 8 - offset % 8
            continue
        targets = []
        cursor = offset
        while cursor + 8 <= limit:
            value = _read(text, cursor, 8)
            if not plausible(value):
                break
            targets.append(value)
            cursor += 8
        if len(targets) >= min_entries:
            candidates.append(TableCandidate(offset, cursor, 8,
                                             tuple(targets)))
            offset = cursor
        else:
            offset += 8

    # Self-relative 4-byte entries, 4-aligned.
    offset = 0
    while offset + 4 <= limit:
        if offset % 4:
            offset += 4 - offset % 4
            continue
        table_base = offset
        targets = []
        cursor = offset
        while cursor + 4 <= limit:
            value = _read(text, cursor, 4)
            if value >= 2 ** 31:
                value -= 2 ** 32
            target = table_base + value
            # Self-relative entries of real tables are never tiny
            # positive values pointing inside the table itself.
            if not plausible(target) or table_base <= target < cursor + 4:
                break
            targets.append(target)
            cursor += 4
        if len(targets) >= min_entries:
            candidates.append(TableCandidate(offset, cursor, 4,
                                             tuple(targets)))
            offset = cursor
        else:
            offset += 4

    return _resolve_overlaps(candidates)


def _resolve_overlaps(candidates: list[TableCandidate]
                      ) -> list[TableCandidate]:
    chosen: list[TableCandidate] = []
    taken: set[int] = set()
    for candidate in sorted(candidates,
                            key=lambda c: (c.start - c.end, c.start)):
        span = range(candidate.start, candidate.end)
        if any(b in taken for b in span):
            continue
        taken.update(span)
        chosen.append(candidate)
    return sorted(chosen, key=lambda c: c.start)


@dataclass(frozen=True)
class AsciiRun:
    start: int
    end: int
    terminated: bool = False   # ends in a NUL byte (C-string shaped)

    @property
    def length(self) -> int:
        return self.end - self.start


def find_ascii_runs(text: bytes, *, min_length: int = 6) -> list[AsciiRun]:
    """Maximal printable-ASCII runs.

    Runs ending in a NUL byte are flagged ``terminated``: real code can
    contain printable byte runs (push sequences spell "UATAUAV"), but a
    NUL-terminated printable run is almost always a C string.
    """
    runs = []
    start = None
    for i, byte in enumerate(text):
        printable = 0x20 <= byte < 0x7F or byte in (0x09, 0x0A, 0x0D)
        if printable and start is None:
            start = i
        elif not printable and start is not None:
            terminated = byte == 0
            end = i + 1 if terminated else i   # include the terminator
            if end - start >= min_length:
                runs.append(AsciiRun(start, end, terminated=terminated))
            start = None
    if start is not None and len(text) - start >= min_length:
        runs.append(AsciiRun(start, len(text)))
    return runs


def find_padding_runs(text: bytes, *, min_length: int = 2,
                      padding_bytes: tuple[int, ...] = (0xCC, 0x00)
                      ) -> list[tuple[int, int]]:
    """Maximal runs of typical padding bytes (int3, zero)."""
    runs = []
    start = None
    current = None
    for i, byte in enumerate(text):
        if byte in padding_bytes:
            if start is None or byte != current:
                if start is not None and i - start >= min_length:
                    runs.append((start, i))
                start = i
                current = byte
        else:
            if start is not None and i - start >= min_length:
                runs.append((start, i))
            start = None
            current = None
    if start is not None and len(text) - start >= min_length:
        runs.append((start, len(text)))
    return runs
