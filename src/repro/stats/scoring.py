"""Per-offset statistical code-vs-data scoring.

For every superset candidate we compare two hypotheses for the bytes it
covers (together with its fall-through window): "this is real code"
(scored by the instruction n-gram model) versus "this is data" (scored
by the data byte model).  The per-byte log-likelihood ratio is the
paper's soft statistical evidence; large positive values say *code*,
large negative values say *data*.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..superset.superset import Superset
from .datamodel import AsciiRun, DataByteModel, find_ascii_runs
from .ngram import NgramModel, START, token_of

#: Score assigned to offsets with no valid candidate at all.
UNDECODABLE_SCORE = -10.0

#: Per-byte penalty applied inside NUL-terminated printable runs: a
#: C-string-shaped region is data no matter how well it decodes.
ASCII_PENALTY = 3.0


@functools.lru_cache(maxsize=16)
def terminated_ascii_runs(text: bytes) -> tuple[AsciiRun, ...]:
    """NUL-terminated printable runs of ``text`` (cached per section).

    Both :meth:`StatisticalScorer.score_offset` and
    :meth:`StatisticalScorer.score_all` consult these runs; scanning the
    whole section again for every scored offset would make per-offset
    scoring O(n^2), so the scan happens once per distinct text.
    """
    return tuple(run for run in find_ascii_runs(text) if run.terminated)


@dataclass
class StatisticalScorer:
    """Combines the code n-gram model and the data byte model."""

    code_model: NgramModel
    data_model: DataByteModel
    window: int = 6

    def score_offset(self, superset: Superset, offset: int) -> float:
        """Per-byte LLR of the candidate chain starting at ``offset``."""
        chain = superset.fallthrough_chain(offset, self.window)
        if not chain:
            return UNDECODABLE_SCORE
        span = chain[-1].end - offset
        code_lp = self.code_model.score_instructions(chain)
        data_lp = self.data_model.log_prob(superset.text[offset:offset + span])
        score = (code_lp - data_lp) / span
        for run in terminated_ascii_runs(superset.text):
            if run.start <= offset < run.end:
                score -= ASCII_PENALTY
                break
        return score

    def score_all(self, superset: Superset) -> np.ndarray:
        """Vector of per-offset scores for a whole section.

        Chains overlap heavily, so token and single-step scores are
        computed once per offset and chains walk precomputed arrays.
        """
        size = len(superset)
        tokens: list[str | None] = [None] * size
        for offset in superset.valid_offsets:
            tokens[offset] = token_of(superset.instructions[offset])

        data_lp_byte = np.array(
            [self.data_model.log_prob_byte(b) for b in superset.text])
        data_prefix = np.concatenate(([0.0], np.cumsum(data_lp_byte)))

        ascii_penalty = np.zeros(size)
        for run in terminated_ascii_runs(superset.text):
            ascii_penalty[run.start:run.end] = ASCII_PENALTY

        scores = np.full(size, UNDECODABLE_SCORE)
        for offset in superset.valid_offsets:
            chain = superset.fallthrough_chain(offset, self.window)
            context = (START, START)
            code_lp = 0.0
            for ins in chain:
                token = tokens[ins.offset]
                code_lp += self.code_model.log_prob(token, context)
                context = (context[1], token)
            span = chain[-1].end - offset
            data_lp = data_prefix[offset + span] - data_prefix[offset]
            scores[offset] = ((code_lp - data_lp) / span
                              - ascii_penalty[offset])
        return scores
