"""Per-offset statistical code-vs-data scoring.

For every superset candidate we compare two hypotheses for the bytes it
covers (together with its fall-through window): "this is real code"
(scored by the instruction n-gram model) versus "this is data" (scored
by the data byte model).  The per-byte log-likelihood ratio is the
paper's soft statistical evidence; large positive values say *code*,
large negative values say *data*.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..superset.superset import Superset
from .datamodel import AsciiRun, DataByteModel, find_ascii_runs
from .ngram import NgramModel, START, token_of

#: Score assigned to offsets with no valid candidate at all.
UNDECODABLE_SCORE = -10.0

#: Per-byte penalty applied inside NUL-terminated printable runs: a
#: C-string-shaped region is data no matter how well it decodes.
ASCII_PENALTY = 3.0


@functools.lru_cache(maxsize=16)
def terminated_ascii_runs(text: bytes) -> tuple[AsciiRun, ...]:
    """NUL-terminated printable runs of ``text`` (cached per section).

    Both :meth:`StatisticalScorer.score_offset` and
    :meth:`StatisticalScorer.score_all` consult these runs; scanning the
    whole section again for every scored offset would make per-offset
    scoring O(n^2), so the scan happens once per distinct text.
    """
    return tuple(run for run in find_ascii_runs(text) if run.terminated)


@dataclass
class StatisticalScorer:
    """Combines the code n-gram model and the data byte model."""

    code_model: NgramModel
    data_model: DataByteModel
    window: int = 6

    def score_offset(self, superset: Superset, offset: int) -> float:
        """Per-byte LLR of the candidate chain starting at ``offset``."""
        chain = superset.fallthrough_chain(offset, self.window)
        if not chain:
            return UNDECODABLE_SCORE
        span = chain[-1].end - offset
        code_lp = self.code_model.score_instructions(chain)
        data_lp = self.data_model.log_prob(superset.text[offset:offset + span])
        score = (code_lp - data_lp) / span
        for run in terminated_ascii_runs(superset.text):
            if run.start <= offset < run.end:
                score -= ASCII_PENALTY
                break
        return score

    def score_all(self, superset: Superset) -> np.ndarray:
        """Vector of per-offset scores for a whole section.

        Chains overlap heavily, so token and single-step scores are
        computed once per offset and chains walk precomputed arrays.
        """
        size = len(superset)
        tokens: list[str | None] = [None] * size
        for offset in superset.valid_offsets:
            tokens[offset] = token_of(superset.instructions[offset])

        data_lp_byte = self._data_lp_bytes(superset.text)
        ascii_penalty = self._ascii_penalty(superset.text)

        scores = np.full(size, UNDECODABLE_SCORE)
        for offset in superset.valid_offsets:
            scores[offset] = self._chain_score(superset, offset, tokens,
                                               data_lp_byte, ascii_penalty)
        return scores

    def rescore(self, superset: Superset, offsets, scores: np.ndarray
                ) -> None:
        """Recompute ``scores[o]`` in place for a subset of offsets.

        Incremental re-disassembly calls this for the offsets whose
        score support (decode window, fall-through chain, ASCII-run
        membership) touches changed bytes; every value written is
        bit-identical to what :meth:`score_all` would produce on the
        same superset, because both run the same per-offset body and
        the data-model term is summed per chain span (a span of
        unchanged bytes sums to the identical float either way).
        """
        data_lp_byte = self._data_lp_bytes(superset.text)
        ascii_penalty = self._ascii_penalty(superset.text)
        for offset in offsets:
            if superset.is_valid(offset):
                scores[offset] = self._chain_score(superset, offset, None,
                                                   data_lp_byte,
                                                   ascii_penalty)
            else:
                scores[offset] = UNDECODABLE_SCORE

    def _chain_score(self, superset: Superset, offset: int,
                     tokens: list | None, data_lp_byte: np.ndarray,
                     ascii_penalty: np.ndarray) -> float:
        """The shared per-offset scoring body (valid offsets only)."""
        chain = superset.fallthrough_chain(offset, self.window)
        context = (START, START)
        code_lp = 0.0
        for ins in chain:
            token = tokens[ins.offset] if tokens is not None \
                else token_of(ins)
            code_lp += self.code_model.log_prob(token, context)
            context = (context[1], token)
        span = chain[-1].end - offset
        data_lp = data_lp_byte[offset:offset + span].sum()
        return (code_lp - data_lp) / span - ascii_penalty[offset]

    def _data_lp_bytes(self, text: bytes) -> np.ndarray:
        return np.array(
            [self.data_model.log_prob_byte(b) for b in text])

    @staticmethod
    def _ascii_penalty(text: bytes) -> np.ndarray:
        penalty = np.zeros(len(text))
        for run in terminated_ascii_runs(text):
            penalty[run.start:run.end] = ASCII_PENALTY
        return penalty
