"""On-disk cache for trained statistical models.

Training the default models costs seconds of corpus generation and
counting per process; every worker of the parallel evaluation driver
would otherwise pay it again.  Models are therefore persisted as JSON
under a cache directory, keyed by a hash of everything that determines
the training result (corpus seeds, corpus size, model hyperparameters,
and a format version bumped whenever training or serialization
changes).  A stale or corrupt cache entry is simply retrained over.

Environment knobs:

* ``REPRO_CACHE_DIR`` -- cache root (default ``~/.cache/repro``).
* ``REPRO_NO_MODEL_CACHE=1`` -- bypass the disk cache entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .datamodel import DataByteModel
from .ngram import NgramModel

#: Bump when the training pipeline or the JSON format changes shape.
MODEL_FORMAT_VERSION = 1


def cache_dir() -> Path:
    """The cache root (not created until a model is saved)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro"


def cache_disabled() -> bool:
    return os.environ.get("REPRO_NO_MODEL_CACHE", "") not in ("", "0")


def stable_digest(payload: dict, *, length: int = 16) -> str:
    """Deterministic hex digest of a JSON-serializable payload.

    The shared keying primitive for every content-addressed cache in
    the project: the model cache below and the serving layer's result
    cache (:mod:`repro.serve.cache`) both derive their keys from it, so
    "same payload" means "same key" across processes and runs.
    """
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:length]


def training_key(seeds: tuple[int, ...], function_count: int,
                 ngram_weights: tuple[float, ...],
                 uniform_weight: float) -> str:
    """Stable hash of the full training configuration."""
    return stable_digest({
        "version": MODEL_FORMAT_VERSION,
        "seeds": list(seeds),
        "function_count": function_count,
        "ngram_weights": list(ngram_weights),
        "uniform_weight": uniform_weight,
    })


def model_path(key: str) -> Path:
    return cache_dir() / f"models-{key}.json"


def save_models(key: str, code: NgramModel, data: DataByteModel) -> Path:
    """Persist a model pair atomically (safe under concurrent workers)."""
    path = model_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps({
        "version": MODEL_FORMAT_VERSION,
        "code": json.loads(code.to_json()),
        "data": json.loads(data.to_json()),
    })
    # Write-then-rename so a concurrent reader never sees a torn file.
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_models(key: str) -> tuple[NgramModel, DataByteModel] | None:
    """Load a cached model pair; None on miss, staleness, or corruption."""
    path = model_path(key)
    try:
        raw = json.loads(path.read_text())
        if raw.get("version") != MODEL_FORMAT_VERSION:
            return None
        code = NgramModel.from_json(json.dumps(raw["code"]))
        data = DataByteModel.from_json(json.dumps(raw["data"]))
        return code, data
    except (OSError, ValueError, KeyError, TypeError):
        return None
