"""Model training from ground-truth-labeled binaries.

The paper's models are data driven: they are fit on binaries *other*
than those under evaluation.  Here the training corpus is generated with
dedicated seeds (:data:`TRAINING_SEEDS`) that the evaluation corpus
never uses, preserving the train/test separation.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..binary.loader import TestCase
from ..isa.decoder import try_decode
from .datamodel import DataByteModel
from .ngram import NgramModel, token_of

#: Seeds reserved for training binaries (evaluation uses small seeds).
TRAINING_SEEDS = (90001, 90002, 90003)

#: Function count per training binary of the standard corpus.
TRAINING_FUNCTIONS = 40


@dataclass
class Models:
    """The trained model pair used by the disassembler."""

    code: NgramModel
    data: DataByteModel


def token_sequences(case: TestCase) -> list[list[str]]:
    """Per-function normalized token sequences from ground truth."""
    text = case.text
    truth = case.truth
    starts = truth.instruction_starts
    sequences = []
    for function in truth.functions:
        tokens = []
        for offset in sorted(s for s in starts
                             if function.entry <= s < function.end):
            instruction = try_decode(text, offset)
            if instruction is not None:
                tokens.append(token_of(instruction))
        if tokens:
            sequences.append(tokens)
    return sequences


def data_regions(case: TestCase) -> list[bytes]:
    """Raw bytes of every ground-truth data region."""
    text = case.text
    return [text[start:end] for start, end in case.truth.data_regions()]


def train_models(cases: list[TestCase]) -> Models:
    """Fit the code n-gram model and data byte model on labeled cases."""
    code = NgramModel()
    data = DataByteModel()
    for case in cases:
        code.train(token_sequences(case))
        data.train(data_regions(case))
    if data.total == 0:
        # Clean training corpus: fall back to a mildly informative prior
        # (zeros and printable bytes are the dominant data populations).
        data.train([bytes(64), b" " * 16,
                    bytes(range(0x41, 0x7B)) * 2])
    return Models(code=code, data=data)


def default_training_key() -> str:
    """Disk-cache key of the standard training configuration."""
    from .cache import training_key

    return training_key(TRAINING_SEEDS, TRAINING_FUNCTIONS,
                        NgramModel().weights,
                        DataByteModel.UNIFORM_WEIGHT)


@functools.lru_cache(maxsize=1)
def default_models() -> Models:
    """Models trained on the standard training corpus.

    Cached twice over: in-process via ``lru_cache``, and on disk (see
    :mod:`repro.stats.cache`) so fresh processes -- in particular the
    workers of the parallel evaluation driver -- load in milliseconds
    instead of regenerating the training corpus.
    """
    from . import cache

    key = default_training_key()
    use_disk = not cache.cache_disabled()
    if use_disk:
        loaded = cache.load_models(key)
        if loaded is not None:
            return Models(code=loaded[0], data=loaded[1])

    # Imported here to avoid a package cycle (synth does not depend on
    # stats, but stats' default training data comes from synth).
    from ..synth.corpus import generate_corpus

    cases = generate_corpus(seeds=TRAINING_SEEDS,
                            function_count=TRAINING_FUNCTIONS)
    models = train_models(cases)
    if use_disk:
        try:
            cache.save_models(key, models.code, models.data)
        except OSError:
            pass   # read-only cache dir: still usable, just untrained-cached
    return models
