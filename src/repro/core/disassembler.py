"""The public disassembler: statistical + behavioral + prioritized correction.

:class:`Disassembler` is the library's primary API.  Given a stripped
binary (or raw text bytes), it produces a
:class:`~repro.result.DisassemblyResult` containing accepted
instructions, data regions, and function entries:

>>> from repro import Disassembler
>>> result = Disassembler().disassemble(binary)        # doctest: +SKIP
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ..analysis.behavior import BehaviorAnalyzer
from ..analysis.idioms import (PROLOGUE_THRESHOLD, likely_function_starts,
                               prologue_score)
from ..binary.container import Binary
from ..binary.image import MemoryImage
from ..binary.loader import TestCase
from ..obs.provenance import ProvenanceLog
from ..obs.trace import current_tracer, phase_span
from ..perf import PhaseTimings
from ..result import DisassemblyResult
from ..stats.datamodel import TableCandidate, find_jump_tables
from ..stats.scoring import StatisticalScorer
from ..stats.training import Models, default_models
from ..superset.superset import Superset, cached_superset
from .config import DEFAULT_CONFIG, DisassemblerConfig
from .engine import create_engine
from .functions import identify_functions

#: Minimum mean candidate score for a detected table's targets; tables
#: whose targets do not look like code are treated as spurious.
TARGET_SCORE_BAR = -1.0


@dataclass
class Disassembly:
    """Rich output: the result plus the intermediate state (for tooling)."""

    result: DisassemblyResult
    superset: Superset
    scores: np.ndarray
    tables: list[TableCandidate]
    log: list[str]
    noreturn_entries: set[int]
    resolved_tables: list = field(default_factory=list)   # engine's ResolvedTables
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Per-byte decision audit trail; None unless the run was made with
    #: ``DisassemblerConfig.record_provenance`` (see ``repro explain``).
    provenance: ProvenanceLog | None = None
    #: Raw statistical and behavioral score components (None when the
    #: config disables them).  Kept so incremental re-disassembly
    #: (:mod:`repro.core.engine.incremental`) can rescore only dirty
    #: offsets and recombine bit-identically.
    stat_scores: np.ndarray | None = None
    behavior_scores: np.ndarray | None = None
    #: Aligned prologue-idiom scan fed to the engine (kept for the
    #: same incremental-reuse reason as the score components).
    prologues: list[int] | None = None
    #: Derived region facts (why each region holds its classification);
    #: None under the legacy worklist engine.
    facts: object | None = None


class Disassembler:
    """Metadata-free disassembler for complex x86-64 binaries.

    Args:
        models: trained statistical models; defaults to models trained on
            the standard training corpus (cached process-wide).
        config: algorithm knobs (see :class:`DisassemblerConfig`).
    """

    def __init__(self, models: Models | None = None,
                 config: DisassemblerConfig = DEFAULT_CONFIG) -> None:
        self.models = models if models is not None else default_models()
        self.config = config
        self._scorer = StatisticalScorer(self.models.code, self.models.data,
                                         window=config.chain_window)
        self._analyzer = BehaviorAnalyzer(window=config.chain_window)

    # ------------------------------------------------------------------

    def disassemble(self, target: Binary | TestCase | bytes,
                    entry: int | None = None) -> DisassemblyResult:
        """Disassemble and return the result only."""
        return self.disassemble_rich(target, entry=entry).result

    def disassemble_rich(self, target: Binary | TestCase | bytes,
                         entry: int | None = None, *,
                         timings: PhaseTimings | None = None) -> Disassembly:
        """Disassemble and return the result plus intermediate state.

        ``timings`` lets a caller accumulate phase durations across
        many runs into one :class:`PhaseTimings` (the serving layer
        aggregates per-batch worker timings this way); by default each
        run gets a fresh timer.
        """
        text, entry, image = _extract(target, entry)
        config = self.config
        timings = timings if timings is not None else PhaseTimings()
        provenance = ProvenanceLog() if config.record_provenance else None

        with ExitStack() as stack:
            tracer = current_tracer()
            if tracer is not None:
                stack.enter_context(tracer.span("disassemble",
                                                bytes=len(text),
                                                entry=entry))

            with phase_span("superset", timings):
                superset = cached_superset(text)
            with phase_span("behavior", timings):
                behavior = (self._analyzer.score_all(superset)
                            if config.use_behavior else None)
            with phase_span("scoring", timings):
                stat = (self._scorer.score_all(superset)
                        if config.use_statistics else None)
                scores = combine_scores(config, superset, stat, behavior)
            return self._correct(text, entry, image, superset, stat,
                                 behavior, scores, timings, provenance)

    def _correct(self, text: bytes, entry: int, image: MemoryImage,
                 superset: Superset, stat: np.ndarray | None,
                 behavior: np.ndarray | None, scores: np.ndarray,
                 timings: PhaseTimings,
                 provenance: ProvenanceLog | None, *,
                 prologues: list[int] | None = None) -> Disassembly:
        """The correction tail shared by cold and incremental runs.

        Everything from here on consumes only the already-computed
        superset and score vectors, so incremental re-disassembly
        (:mod:`repro.core.engine.incremental`) patches those and then
        re-enters here for a bit-identical fixpoint.  ``prologues``
        (the aligned prologue-idiom scan, another pure function of a
        bounded byte window) may likewise be supplied pre-patched.
        """
        config = self.config
        engine = create_engine(superset, scores, config, image=image,
                               behavior_scores=behavior,
                               provenance=provenance)

        # Structural phase: detected tables are data, their targets
        # code.  Statistical detection is strong but not proof (a
        # literal pool can mimic a table), so its targets carry
        # STRUCTURAL priority: genuinely traced code (ANCHOR) may
        # override them, while dataflow-resolved tables found during
        # tracing stay ANCHOR.  The entry point (anchor) and aligned
        # prologues (idiom) ride in through the same ingestion step.
        with phase_span("tables", timings):
            tables = self._validated_tables(text, superset, scores)
            if prologues is None:
                prologues = likely_function_starts(
                    superset, alignment=config.alignment)
            engine.ingest(tables,
                          entry if 0 <= entry < len(text) else None,
                          prologues)

        with phase_span("correction", timings):
            engine.solve()
        with phase_span("gaps", timings):
            engine.finish()

        with phase_span("functions", timings):
            result = self._finalize(engine, superset, tables, entry)

        # Optional oracle-free feedback round: lint our own claim and
        # feed actionable diagnostics back as structural evidence.
        if config.use_lint_feedback:
            with phase_span("lint-feedback", timings):
                result = self._lint_refine(engine, superset, tables,
                                           entry, result)

        engine.log.extend(timings.log_lines())
        return Disassembly(result=result, superset=superset, scores=scores,
                           tables=tables, log=engine.log,
                           noreturn_entries=set(engine.noreturn_entries),
                           resolved_tables=list(engine.resolved_tables),
                           timings=timings, provenance=provenance,
                           stat_scores=stat, behavior_scores=behavior,
                           prologues=prologues, facts=engine.facts())

    # ------------------------------------------------------------------

    def _finalize(self, engine, superset: Superset,
                  tables: list[TableCandidate],
                  entry: int) -> DisassemblyResult:
        """Build a :class:`DisassemblyResult` from the engine's state."""
        state = engine.state
        instructions = {offset: superset.at(offset).length
                        for offset in state.instruction_starts()}
        # Resolved pointer tables point at functions by construction;
        # statistically detected 8-byte tables may be jump *or* pointer
        # tables, so their targets must additionally look like openings.
        pointer_targets = frozenset(
            t for table in engine.resolved_tables for t in table.targets
            if table.kind == "pointer")
        pointer_targets |= frozenset(
            t for table in tables for t in table.targets
            if table.entry_size == 8
            and prologue_score(superset, t) >= PROLOGUE_THRESHOLD)
        functions = identify_functions(
            superset, state, entry,
            pointer_table_targets=pointer_targets,
            alignment=self.config.alignment)
        return DisassemblyResult(
            tool="repro",
            instructions=instructions,
            data_regions=state.data_regions(),
            function_entries={span.entry for span in functions},
        )

    def _lint_refine(self, engine, superset: Superset,
                     tables: list[TableCandidate], entry: int,
                     result: DisassemblyResult) -> DisassemblyResult:
        """One oracle-free feedback round.

        Lints the first-pass result and converts actionable diagnostics
        (regions shaped like data accepted as code, branch targets that
        must be code) into structural evidence for the correction
        engine, then rebuilds the result.  The engine's priority rules
        still apply: lint evidence cannot displace anchored traces.
        """
        # Imported lazily: repro.lint imports core types, so a module-
        # level import here would create a cycle through core.__init__.
        from ..lint import diagnostics_to_evidence, lint_disassembly
        report = lint_disassembly(result, superset,
                                  provenance=engine.provenance)
        evidence = diagnostics_to_evidence(report)
        engine.log.append(f"lint-feedback: {len(report.diagnostics)} "
                          f"diagnostics, {len(evidence)} actionable")
        if not evidence:
            return result
        engine.feedback(evidence)
        return self._finalize(engine, superset, tables, entry)

    def _combined_scores(self, superset: Superset,
                         behavior: np.ndarray | None) -> np.ndarray:
        """Back-compat wrapper around :func:`combine_scores`."""
        stat = (self._scorer.score_all(superset)
                if self.config.use_statistics else None)
        return combine_scores(self.config, superset, stat, behavior)

    def _validated_tables(self, text: bytes, superset: Superset,
                          scores: np.ndarray) -> list[TableCandidate]:
        """Detected tables whose targets actually look like code."""
        tables = find_jump_tables(text,
                                  min_entries=self.config.min_table_entries,
                                  is_plausible_target=superset.is_valid)
        validated = []
        for table in tables:
            target_scores = [float(scores[t]) for t in table.targets]
            if np.mean(target_scores) >= TARGET_SCORE_BAR:
                validated.append(table)
        return validated


def combine_scores(config: DisassemblerConfig, superset: Superset,
                   stat: np.ndarray | None,
                   behavior: np.ndarray | None) -> np.ndarray:
    """Mix the statistical and behavioral components into one vector.

    A module-level function (not a method) so incremental
    re-disassembly recombines patched component arrays through the
    exact same floating-point expression as a cold run.
    """
    scores = np.zeros(len(superset))
    if config.use_statistics and stat is not None:
        scores += config.stat_weight * stat
    if config.use_behavior and behavior is not None:
        scores += config.behavior_weight * behavior
    if not config.use_statistics and not config.use_behavior:
        # Degenerate configuration: fall back to "decodes at all".
        for offset in superset.valid_offsets:
            scores[offset] = 0.1
    return scores


def _extract(target: Binary | TestCase | bytes,
             entry: int | None) -> tuple[bytes, int, MemoryImage]:
    if isinstance(target, TestCase):
        binary = target.binary
        text = target.text
        default_entry = binary.entry - binary.text.addr
        image = MemoryImage.from_binary(binary)
    elif isinstance(target, Binary):
        section = target.text
        text = section.data
        default_entry = target.entry - section.addr
        image = MemoryImage.from_binary(target)
    elif isinstance(target, (bytes, bytearray)):
        text = bytes(target)
        default_entry = 0
        image = MemoryImage.from_text(text)
    else:
        raise TypeError(f"cannot disassemble {type(target).__name__}")
    return text, entry if entry is not None else default_entry, image
