"""The public disassembler: statistical + behavioral + prioritized correction.

:class:`Disassembler` is the library's primary API.  Given a stripped
binary (or raw text bytes), it produces a
:class:`~repro.result.DisassemblyResult` containing accepted
instructions, data regions, and function entries:

>>> from repro import Disassembler
>>> result = Disassembler().disassemble(binary)        # doctest: +SKIP
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ..analysis.behavior import BehaviorAnalyzer
from ..analysis.idioms import (PROLOGUE_THRESHOLD, likely_function_starts,
                               prologue_score)
from ..binary.container import Binary
from ..binary.image import MemoryImage
from ..binary.loader import TestCase
from ..obs.provenance import ProvenanceLog
from ..obs.trace import current_tracer, phase_span
from ..perf import PhaseTimings
from ..result import DisassemblyResult
from ..stats.datamodel import TableCandidate, find_jump_tables
from ..stats.scoring import StatisticalScorer
from ..stats.training import Models, default_models
from ..superset.superset import Superset, cached_superset
from .config import DEFAULT_CONFIG, DisassemblerConfig
from .correction import CorrectionEngine
from .evidence import Evidence, Priority
from .functions import identify_functions

#: Minimum mean candidate score for a detected table's targets; tables
#: whose targets do not look like code are treated as spurious.
TARGET_SCORE_BAR = -1.0


@dataclass
class Disassembly:
    """Rich output: the result plus the intermediate state (for tooling)."""

    result: DisassemblyResult
    superset: Superset
    scores: np.ndarray
    tables: list[TableCandidate]
    log: list[str]
    noreturn_entries: set[int]
    resolved_tables: list = field(default_factory=list)   # engine's ResolvedTables
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Per-byte decision audit trail; None unless the run was made with
    #: ``DisassemblerConfig.record_provenance`` (see ``repro explain``).
    provenance: ProvenanceLog | None = None


class Disassembler:
    """Metadata-free disassembler for complex x86-64 binaries.

    Args:
        models: trained statistical models; defaults to models trained on
            the standard training corpus (cached process-wide).
        config: algorithm knobs (see :class:`DisassemblerConfig`).
    """

    def __init__(self, models: Models | None = None,
                 config: DisassemblerConfig = DEFAULT_CONFIG) -> None:
        self.models = models if models is not None else default_models()
        self.config = config
        self._scorer = StatisticalScorer(self.models.code, self.models.data,
                                         window=config.chain_window)
        self._analyzer = BehaviorAnalyzer(window=config.chain_window)

    # ------------------------------------------------------------------

    def disassemble(self, target: Binary | TestCase | bytes,
                    entry: int | None = None) -> DisassemblyResult:
        """Disassemble and return the result only."""
        return self.disassemble_rich(target, entry=entry).result

    def disassemble_rich(self, target: Binary | TestCase | bytes,
                         entry: int | None = None, *,
                         timings: PhaseTimings | None = None) -> Disassembly:
        """Disassemble and return the result plus intermediate state.

        ``timings`` lets a caller accumulate phase durations across
        many runs into one :class:`PhaseTimings` (the serving layer
        aggregates per-batch worker timings this way); by default each
        run gets a fresh timer.
        """
        text, entry, image = _extract(target, entry)
        config = self.config
        timings = timings if timings is not None else PhaseTimings()
        provenance = ProvenanceLog() if config.record_provenance else None

        with ExitStack() as stack:
            tracer = current_tracer()
            if tracer is not None:
                stack.enter_context(tracer.span("disassemble",
                                                bytes=len(text),
                                                entry=entry))

            with phase_span("superset", timings):
                superset = cached_superset(text)
            with phase_span("behavior", timings):
                behavior = (self._analyzer.score_all(superset)
                            if config.use_behavior else None)
            with phase_span("scoring", timings):
                scores = self._combined_scores(superset, behavior)
            engine = CorrectionEngine(superset, scores, config, image=image,
                                      behavior_scores=behavior,
                                      provenance=provenance)

            # Structural phase: detected tables are data, their targets
            # code.  Statistical detection is strong but not proof (a
            # literal pool can mimic a table), so its targets carry
            # STRUCTURAL priority: genuinely traced code (ANCHOR) may
            # override them, while dataflow-resolved tables found during
            # tracing stay ANCHOR.
            engine.pass_id = "tables"
            with phase_span("tables", timings):
                tables = self._validated_tables(text, superset, scores)
                for table in tables:
                    engine.state.mark_data(table.start, table.end,
                                           Priority.STRUCTURAL)
                    engine.log.append(f"table {table.start:#x}-{table.end:#x} "
                                      f"({table.entry_size}-byte entries)")
                    engine.note("mark-data", table.start, table.end,
                                source="jump-table",
                                priority=Priority.STRUCTURAL,
                                detail=f"detected {table.entry_size}-byte-"
                                       f"entry table with "
                                       f"{len(table.targets)} targets")
                    for target in sorted(set(table.targets)):
                        engine.push(Evidence("code", target, target,
                                             Priority.STRUCTURAL, 1.0,
                                             "table-target"))

            # Anchor phase: the program entry point.
            if 0 <= entry < len(text):
                engine.push(Evidence("code", entry, entry, Priority.ANCHOR,
                                     2.0, "entry-point"))

            # Idiom phase: aligned prologues.
            for offset in likely_function_starts(superset,
                                                 alignment=config.alignment):
                engine.push(Evidence("code", offset, offset, Priority.IDIOM,
                                     1.0, "prologue"))

            engine.pass_id = "correction"
            with phase_span("correction", timings):
                engine.drain()
            with phase_span("gaps", timings):
                engine.complete_gaps()

            with phase_span("functions", timings):
                result = self._finalize(engine, superset, tables, entry)

            # Optional oracle-free feedback round: lint our own claim and
            # feed actionable diagnostics back as structural evidence.
            if config.use_lint_feedback:
                engine.pass_id = "lint-feedback"
                with phase_span("lint-feedback", timings):
                    result = self._lint_refine(engine, superset, tables,
                                               entry, result)

        engine.log.extend(timings.log_lines())
        return Disassembly(result=result, superset=superset, scores=scores,
                           tables=tables, log=engine.log,
                           noreturn_entries=set(engine.noreturn_entries),
                           resolved_tables=list(engine.resolved_tables),
                           timings=timings, provenance=provenance)

    # ------------------------------------------------------------------

    def _finalize(self, engine: CorrectionEngine, superset: Superset,
                  tables: list[TableCandidate],
                  entry: int) -> DisassemblyResult:
        """Build a :class:`DisassemblyResult` from the engine's state."""
        state = engine.state
        instructions = {offset: superset.at(offset).length
                        for offset in state.instruction_starts()}
        # Resolved pointer tables point at functions by construction;
        # statistically detected 8-byte tables may be jump *or* pointer
        # tables, so their targets must additionally look like openings.
        pointer_targets = frozenset(
            t for table in engine.resolved_tables for t in table.targets
            if table.kind == "pointer")
        pointer_targets |= frozenset(
            t for table in tables for t in table.targets
            if table.entry_size == 8
            and prologue_score(superset, t) >= PROLOGUE_THRESHOLD)
        functions = identify_functions(
            superset, state, entry,
            pointer_table_targets=pointer_targets,
            alignment=self.config.alignment)
        return DisassemblyResult(
            tool="repro",
            instructions=instructions,
            data_regions=state.data_regions(),
            function_entries={span.entry for span in functions},
        )

    def _lint_refine(self, engine: CorrectionEngine, superset: Superset,
                     tables: list[TableCandidate], entry: int,
                     result: DisassemblyResult) -> DisassemblyResult:
        """One oracle-free feedback round.

        Lints the first-pass result and converts actionable diagnostics
        (regions shaped like data accepted as code, branch targets that
        must be code) into structural evidence for the correction
        engine, then rebuilds the result.  The engine's priority rules
        still apply: lint evidence cannot displace anchored traces.
        """
        # Imported lazily: repro.lint imports core types, so a module-
        # level import here would create a cycle through core.__init__.
        from ..lint import diagnostics_to_evidence, lint_disassembly
        report = lint_disassembly(result, superset,
                                  provenance=engine.provenance)
        evidence = diagnostics_to_evidence(report)
        engine.log.append(f"lint-feedback: {len(report.diagnostics)} "
                          f"diagnostics, {len(evidence)} actionable")
        if not evidence:
            return result
        for item in evidence:
            engine.push(item)
        engine.drain()
        engine.complete_gaps()
        return self._finalize(engine, superset, tables, entry)

    def _combined_scores(self, superset: Superset,
                         behavior: np.ndarray | None) -> np.ndarray:
        config = self.config
        scores = np.zeros(len(superset))
        if config.use_statistics:
            scores += config.stat_weight * self._scorer.score_all(superset)
        if config.use_behavior and behavior is not None:
            scores += config.behavior_weight * behavior
        if not config.use_statistics and not config.use_behavior:
            # Degenerate configuration: fall back to "decodes at all".
            for offset in superset.valid_offsets:
                scores[offset] = 0.1
        return scores

    def _validated_tables(self, text: bytes, superset: Superset,
                          scores: np.ndarray) -> list[TableCandidate]:
        """Detected tables whose targets actually look like code."""
        tables = find_jump_tables(text,
                                  min_entries=self.config.min_table_entries,
                                  is_plausible_target=superset.is_valid)
        validated = []
        for table in tables:
            target_scores = [float(scores[t]) for t in table.targets]
            if np.mean(target_scores) >= TARGET_SCORE_BAR:
                validated.append(table)
        return validated


def _extract(target: Binary | TestCase | bytes,
             entry: int | None) -> tuple[bytes, int, MemoryImage]:
    if isinstance(target, TestCase):
        binary = target.binary
        text = target.text
        default_entry = binary.entry - binary.text.addr
        image = MemoryImage.from_binary(binary)
    elif isinstance(target, Binary):
        section = target.text
        text = section.data
        default_entry = target.entry - section.addr
        image = MemoryImage.from_binary(target)
    elif isinstance(target, (bytes, bytearray)):
        text = bytes(target)
        default_entry = 0
        image = MemoryImage.from_text(text)
    else:
        raise TypeError(f"cannot disassemble {type(target).__name__}")
    return text, entry if entry is not None else default_entry, image
