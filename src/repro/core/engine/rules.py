"""The correction rules of the declarative fact/rule engine.

Each correction pass of the legacy worklist engine
(:mod:`repro.core.correction`) is re-expressed here as a :class:`Rule`
with a declared **stratum** (when it may fire) and an explicit set of
input relations (what makes it fire again).  The semi-naive driver in
:mod:`repro.core.engine.driver` consults per-relation version counters
so a rule never re-derives from an unchanged input set.

Strata (lower runs to fixpoint before higher starts):

==========  =====================================================
stratum 0   ingestion -- tables / entry / prologue facts seed the
            agenda (``TableRule``, ``EntryAnchorRule``,
            ``PrologueRule``)
stratum 1   propagation -- claims are traced, dispatch tables
            retried, call continuations released (``TraceRule``,
            ``DataRule``, ``DispatchRetryRule``,
            ``CallContinuationRule``)
stratum 2   gap completion (``GapRule``, ``GapSealRule``)
stratum 3   residue realignment (``RealignRule``)
==========  =====================================================

The rule bodies deliberately reimplement the legacy algorithms rather
than importing them: the worklist engine (``REPRO_ENGINE=worklist``)
stays a genuinely independent differential oracle, and the corpus-wide
equivalence suite (:mod:`tests.engine`) enforces that the two stay in
sync down to byte-identical results, logs, and provenance.
"""

from __future__ import annotations

from ...analysis.idioms import prologue_score
from ...analysis.noreturn import compute_returning
from ...isa.opcodes import FlowKind
from ...obs.metrics import REGISTRY
from ..evidence import Classification, Priority
from ..tables import (ResolvedTable, resolve_indirect_call,
                      resolve_indirect_jump)
from .facts import (CodeClaim, DataClaim, PendingCall, RegionFact,
                    TableFact, TraceResult)

#: Pipeline metrics.  Registration is get-or-create by name, so these
#: are the *same* counter objects the legacy engine increments -- the
#: dashboards cannot tell the backends apart.
_TRACES = REGISTRY.counter(
    "repro_traces_total",
    "Control-flow traces processed by the correction engine, by outcome")
_RECLASSIFIED = REGISTRY.counter(
    "repro_bytes_reclassified_total",
    "Bytes whose existing classification a correction pass overwrote")
_GAP_CANDIDATES = REGISTRY.counter(
    "repro_gap_candidates_total",
    "Gap-completion code candidates, by screening outcome")


class Rule:
    """Base class: a named inference rule bound to one engine."""

    name = "rule"
    stratum = 0

    def __init__(self, engine) -> None:
        self.engine = engine


# ----------------------------------------------------------------------
# Stratum 0: ingestion
# ----------------------------------------------------------------------

class TableRule(Rule):
    """TableFact(t) => data over t's bytes, CodeClaim for each target.

    Statistical detection is strong but not proof (a literal pool can
    mimic a table), so targets carry STRUCTURAL priority: traced code
    (ANCHOR) may override them.
    """

    name = "table"
    stratum = 0

    def fire(self, fact: TableFact) -> None:
        engine = self.engine
        engine.state.mark_data(fact.start, fact.end, Priority.STRUCTURAL)
        engine.store.bump("state")
        engine.store.add_region(RegionFact(
            fact.start, fact.end, "data", Priority.STRUCTURAL,
            "jump-table", self.name))
        engine.log.append(f"table {fact.start:#x}-{fact.end:#x} "
                          f"({fact.entry_size}-byte entries)")
        engine.note("mark-data", fact.start, fact.end,
                    source="jump-table", priority=Priority.STRUCTURAL,
                    detail=f"detected {fact.entry_size}-byte-"
                           f"entry table with "
                           f"{len(fact.targets)} targets")
        for target in sorted(set(fact.targets)):
            engine.push_claim(CodeClaim(target, Priority.STRUCTURAL,
                                        1.0, "table-target", self.name))


class EntryAnchorRule(Rule):
    """EntryFact(o) => CodeClaim(o) at ANCHOR priority."""

    name = "entry-anchor"
    stratum = 0

    def fire(self, offset: int) -> None:
        self.engine.push_claim(CodeClaim(offset, Priority.ANCHOR, 2.0,
                                         "entry-point", self.name))


class PrologueRule(Rule):
    """PrologueFact(o) => CodeClaim(o) at IDIOM priority."""

    name = "prologue"
    stratum = 0

    def fire(self, offset: int) -> None:
        self.engine.push_claim(CodeClaim(offset, Priority.IDIOM, 1.0,
                                         "prologue", self.name))


# ----------------------------------------------------------------------
# Stratum 1: propagation
# ----------------------------------------------------------------------

class DataRule(Rule):
    """DataClaim(r) + no stronger code over r => data over r."""

    name = "data-claim"
    stratum = 1

    def fire(self, claim: DataClaim) -> None:
        engine = self.engine
        if engine.state.can_mark_data(claim.start, claim.end,
                                      claim.priority):
            engine.state.mark_data(claim.start, claim.end, claim.priority)
            engine.store.bump("state")
            engine.store.add_region(RegionFact(
                claim.start, claim.end, "data", claim.priority,
                claim.source, self.name))
            engine.log.append(f"data {claim.start:#x}-{claim.end:#x}"
                              f" <- {claim.source}")
            engine.note("mark-data", claim.start, claim.end,
                        source=claim.source, priority=claim.priority,
                        detail=f"{claim.end - claim.start} bytes "
                               f"marked data")
        else:
            engine.log.append(f"rejected data {claim.start:#x} "
                              f"({claim.source}): stronger code there")
            engine.note("reject-data", claim.start, claim.end,
                        source=claim.source, priority=claim.priority,
                        detail="stronger code evidence already covers "
                               "the range")


class TraceRule(Rule):
    """CodeClaim(o) => instructions reachable from o, unless refuted.

    Follows fall-through and direct jumps, collects direct call targets
    as new ANCHOR claims, defers call continuations as PendingCall
    facts, and resolves dispatch tables along the way.  A trace that
    contradicts equal-or-stronger evidence near its seed is rolled back
    entirely (the error-correction heart of the paper).
    """

    name = "trace"
    stratum = 1

    def fire(self, claim: CodeClaim) -> None:
        engine = self.engine
        if engine.state.is_code_start(claim.offset):
            _TRACES.inc(outcome="joined")
            return
        result = self.derive(claim.offset, claim.priority, claim.source)
        if result.aborted:
            engine.log.append(f"aborted trace from {claim.offset:#x} "
                              f"({claim.source})")
            _TRACES.inc(outcome="refuted")
            if engine.provenance is not None:
                start, end = result.touched or (claim.offset,
                                                claim.offset + 1)
                derail = (result.derailed_at
                          if result.derailed_at is not None
                          else claim.offset)
                engine.note(
                    "refute-trace", start, end,
                    source=claim.source, priority=claim.priority,
                    detail=f"refuted {Priority(claim.priority).name} "
                           f"trace seeded at {claim.offset:#x} "
                           f"({claim.source} {claim.weight:.2f}): "
                           f"derailed at +{derail - claim.offset:#x} "
                           f"(depth {result.derail_depth}), "
                           f"{result.derail_hit}",
                    seed=claim.offset, weight=claim.weight,
                    derailed_at=derail, depth=result.derail_depth)
            return
        _TRACES.inc(outcome="accepted")
        if result.reclassified:
            _RECLASSIFIED.inc(result.reclassified,
                              pass_id=engine.pass_id)
        if result.accepted:
            engine.store.bump("state")
            start, end = result.touched or (claim.offset,
                                            claim.offset + 1)
            engine.store.add_region(RegionFact(
                start, end, "code", claim.priority, claim.source,
                self.name))
            if engine.provenance is not None:
                engine.note(
                    "accept-trace", start, end,
                    source=claim.source, priority=claim.priority,
                    detail=f"trace from {claim.offset:#x} accepted "
                           f"{len(result.accepted)} instruction(s)"
                           + (f", overwrote {result.reclassified} byte(s)"
                              if result.reclassified else ""),
                    seed=claim.offset, weight=claim.weight,
                    instructions=len(result.accepted),
                    reclassified=result.reclassified)
        # Derived claims: direct call targets found in confirmed code
        # are anchors themselves.
        for target in sorted(result.call_targets):
            if not engine.state.is_code_start(target):
                engine.push_claim(CodeClaim(
                    target, Priority.ANCHOR, 1.0,
                    f"call-target@{claim.offset:#x}", self.name))
        # Resolved dispatch tables: their bytes are data (when in
        # text), their targets are code.
        for table in result.resolved_tables:
            apply_resolved_table(engine, table)
        for offset in sorted(result.unresolved_dispatches):
            engine.store.add_unresolved_dispatch(offset)

    def derive(self, seed: int, priority: Priority,
               source: str) -> TraceResult:
        """The traversal itself (the rule body's premise evaluation)."""
        engine = self.engine
        result = TraceResult()
        state = engine.state
        undo: dict[int, tuple[int, int]] = {}
        worklist: list[tuple[int, int]] = [(seed, 0)]
        visited: set[int] = set()
        # Soft seeds have no corroborating evidence, so for them *any*
        # contradiction refutes the whole trace; stronger seeds keep
        # the strict-depth window (genuine code may legitimately abut
        # older wrong decisions far from the seed).
        strict_everywhere = priority <= Priority.SOFT
        strict_depth = engine.config.strict_depth

        def contradiction(depth: int) -> bool:
            return strict_everywhere or depth <= strict_depth

        while worklist:
            offset, depth = worklist.pop()
            if offset in visited:
                continue
            visited.add(offset)
            if state.is_code_start(offset):
                continue   # joins already-confirmed code
            instruction = engine.superset.at(offset)
            if instruction is None or \
                    not state.can_mark_instruction(offset,
                                                   instruction.length
                                                   if instruction else 1,
                                                   priority):
                if contradiction(depth):
                    for o, (label, prio) in undo.items():
                        state.labels[o] = label
                        state.priorities[o] = prio
                    result.aborted = True
                    result.derailed_at = offset
                    result.derail_depth = depth
                    result.derail_hit = describe_conflict(
                        engine, offset, instruction, priority)
                    if undo:
                        result.touched = (min(min(undo), seed),
                                          max(undo) + 1)
                    else:
                        result.touched = (min(seed, offset),
                                          max(seed, offset) + 1)
                    return result
                continue   # prune this path only

            for i in range(offset, min(offset + instruction.length,
                                       state.size)):
                if i not in undo:
                    undo[i] = (state.labels[i], state.priorities[i])
                    if state.labels[i]:   # non-UNKNOWN: a real overwrite
                        result.reclassified += 1
            state.mark_instruction(offset, instruction.length, priority)
            result.accepted.add(offset)

            if instruction.rip_target is not None \
                    and 0 <= instruction.rip_target < state.size:
                result.rip_references.add(instruction.rip_target)

            if instruction.flow is FlowKind.CALL:
                target = instruction.branch_target
                if target is not None and 0 <= target < state.size:
                    result.call_targets.add(target)
                    # Defer the continuation: traced only once the
                    # callee is known to return.
                    result.pending_calls.append((instruction.end,
                                                 target))
                    continue
            elif instruction.flow in (FlowKind.JUMP, FlowKind.CJUMP):
                target = instruction.branch_target
                if target is not None:
                    if 0 <= target < state.size:
                        worklist.append((target, depth + 1))
                    else:
                        result.jump_targets_outside.add(target)
            elif instruction.flow is FlowKind.IJUMP \
                    and engine.config.use_table_resolution:
                table = resolve_indirect_jump(engine.superset,
                                              engine.image,
                                              state.is_code_start,
                                              instruction)
                if table is not None:
                    result.resolved_tables.append(table)
                else:
                    result.unresolved_dispatches.add(offset)
            elif instruction.flow is FlowKind.ICALL \
                    and engine.config.use_table_resolution:
                table = resolve_indirect_call(engine.superset,
                                              engine.image,
                                              state.is_code_start,
                                              instruction)
                if table is not None:
                    result.resolved_tables.append(table)
                else:
                    result.unresolved_dispatches.add(offset)

            if instruction.flow is FlowKind.TRAP:
                continue   # padding trap: execution never proceeds here
            if instruction.falls_through and instruction.end < state.size:
                worklist.append((instruction.end, depth + 1))

        if undo:
            result.touched = (min(min(undo), seed), max(undo) + 1)
        engine.resolved_tables.extend(result.resolved_tables)
        for fall, target in result.pending_calls:
            engine.store.add_pending_call(PendingCall(fall, target))
        return result


def describe_conflict(engine, offset: int, instruction,
                      priority: Priority) -> str:
    """Why marking ``offset`` failed, for the audit trail."""
    if instruction is None:
        return f"undecodable byte at {offset:#x}"
    state = engine.state
    for i in range(offset, min(offset + instruction.length,
                               state.size)):
        label = Classification(state.labels[i])
        if label == Classification.UNKNOWN:
            continue
        existing = Priority(state.priorities[i]).name \
            if state.priorities[i] else "unset"
        if label == Classification.DATA and \
                state.priorities[i] >= priority:
            return (f"contradicts {existing} data at {i:#x}")
        if i > offset and label == Classification.CODE_START and \
                state.priorities[i] >= priority:
            return (f"would straddle {existing} instruction "
                    f"start at {i:#x}")
        if i == offset and label == Classification.CODE_INTERIOR \
                and state.priorities[i] >= priority:
            return (f"joins {existing} code mid-instruction "
                    f"at {i:#x}")
    return f"conflict with equal-or-stronger evidence at {offset:#x}"


def apply_resolved_table(engine, table: ResolvedTable) -> None:
    """Dataflow-resolved table => data bytes + ANCHOR target claims."""
    if table.in_text and engine.state.can_mark_data(
            table.address, table.end, Priority.STRUCTURAL):
        engine.state.mark_data(table.address, table.end,
                               Priority.STRUCTURAL)
        engine.store.bump("state")
        engine.store.add_region(RegionFact(
            table.address, table.end, "data", Priority.STRUCTURAL,
            f"{table.kind}-table", "dispatch-resolve"))
        engine.log.append(f"resolved {table.kind} table "
                          f"{table.address:#x}-{table.end:#x}")
    for target in sorted(set(table.targets)):
        if not engine.state.is_code_start(target):
            engine.push_claim(CodeClaim(target, Priority.ANCHOR, 1.0,
                                        f"{table.kind}-table-target",
                                        "dispatch-resolve"))


class DispatchRetryRule(Rule):
    """Unresolved dispatch + new confirmed code => retry resolution.

    Worklist order can visit a dispatch before its defining
    instructions, leaving the backward dataflow without context; once
    surrounding code is confirmed, resolution usually succeeds.
    Semi-naive: skipped outright unless the classification state or the
    dispatch set changed since the last barren attempt.
    """

    name = "dispatch-retry"
    stratum = 1

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._barren_at: tuple[int, int] | None = None

    def fire(self) -> bool:
        engine = self.engine
        if not engine.config.use_table_resolution:
            return False
        store = engine.store
        key = (store.versions["state"], store.versions["dispatches"])
        if key == self._barren_at:
            return False
        progressed = False
        for offset in sorted(store.unresolved_dispatches):
            instruction = engine.superset.at(offset)
            if instruction is None or \
                    not engine.state.is_code_start(offset):
                continue
            if instruction.flow is FlowKind.IJUMP:
                table = resolve_indirect_jump(engine.superset,
                                              engine.image,
                                              engine.state.is_code_start,
                                              instruction)
            else:
                table = resolve_indirect_call(engine.superset,
                                              engine.image,
                                              engine.state.is_code_start,
                                              instruction)
            if table is not None:
                store.unresolved_dispatches.discard(offset)
                store.bump("dispatches")
                engine.resolved_tables.append(table)
                store.bump("resolved")
                apply_resolved_table(engine, table)
                progressed = True
        if not progressed:
            self._barren_at = key
        return progressed


class CallContinuationRule(Rule):
    """PendingCall(fall, t) + t returns => CodeClaim(fall).

    A call's fall-through is only traced once its (fully traced)
    callee is known to return, so data placed after noreturn calls is
    never swallowed as code.  Continuations of provably-noreturn
    callees stay pending; if nothing ever proves them returning, their
    bytes are left to gap completion (i.e. data).  Semi-naive: skipped
    unless the state, the pending set, or the resolved-table set
    changed since the last barren attempt.
    """

    name = "call-continuation"
    stratum = 1

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._barren_at: tuple[int, int, int] | None = None

    def fire(self) -> bool:
        engine = self.engine
        store = engine.store
        if not store.pending_calls:
            return False
        key = (store.versions["state"], store.versions["pending_calls"],
               store.versions["resolved"])
        if key == self._barren_at:
            return False
        targets = {fact.target for fact in store.pending_calls}
        resolved_jumps = {table.dispatch: table.targets
                          for table in engine.resolved_tables
                          if table.kind == "jump" and table.dispatch >= 0}
        # The verdict only changes when the target set or the resolved
        # dispatch map changes; resolution rounds are frequent, so cache.
        cache_key = (frozenset(targets), len(resolved_jumps))
        if engine._returning_cache_key == cache_key:
            returning = engine._returning_cache
        else:
            returning = compute_returning(
                engine.superset, targets, resolved_jumps=resolved_jumps,
                resolve_dispatch=engine.speculative_dispatch_targets)
            engine._returning_cache_key = cache_key
            engine._returning_cache = returning
        engine.noreturn_entries = {t for t, ok in returning.items()
                                   if not ok}
        still_pending = []
        pushed = False
        for fact in store.pending_calls:
            if not engine.state.is_code_start(fact.target):
                # Callee not traced yet: no verdict is possible, and
                # releasing now would lose the continuation forever.
                still_pending.append(fact)
                continue
            if not returning.get(fact.target, True):
                still_pending.append(fact)
                continue
            if not engine.state.is_code_start(fact.fall):
                engine.push_claim(CodeClaim(
                    fact.fall, Priority.ANCHOR, 1.0,
                    f"call-fallthrough@{fact.target:#x}", self.name))
                pushed = True
        if len(still_pending) != len(store.pending_calls):
            store.bump("pending_calls")
        store.pending_calls = still_pending
        engine.noreturn_fall_sites = {fact.fall for fact in still_pending}
        if not pushed:
            self._barren_at = (store.versions["state"],
                               store.versions["pending_calls"],
                               store.versions["resolved"])
        return pushed


# ----------------------------------------------------------------------
# Stratum 2: gap completion
# ----------------------------------------------------------------------

class GapRule(Rule):
    """Unknown gap + surviving scored candidate => SOFT CodeClaim.

    Each round scores all gap candidates and accepts them best-first
    (a confident gap decision can create call-target anchors that
    settle weaker gaps before their own soft scores are consulted),
    at most one acceptance per gap per round.
    """

    name = "gap"
    stratum = 2

    def run_rounds(self) -> None:
        engine = self.engine
        from ...obs.trace import current_tracer
        tracer = current_tracer()
        for round_index in range(engine.config.gap_rounds):
            gaps = engine.state.unknown_gaps()
            if not gaps:
                break
            engine.pass_id = f"gaps-{round_index + 1}"
            round_span = (tracer.start(engine.pass_id, gaps=len(gaps))
                          if tracer is not None else None)
            candidates = []
            for gap_id, (start, end) in enumerate(gaps):
                for score, offset in self.candidates(start, end):
                    candidates.append((score, offset, gap_id))
            progressed = False
            settled_gaps: set[int] = set()
            for score, offset, gap_id in sorted(candidates, reverse=True):
                if gap_id in settled_gaps:
                    continue
                if not engine.state.is_unknown(offset):
                    settled_gaps.add(gap_id)
                    continue   # an earlier trace already settled it
                engine.push_claim(CodeClaim(offset, Priority.SOFT,
                                            score, "gap-score",
                                            self.name))
                engine.drain()
                if engine.state.is_code_start(offset):
                    progressed = True
                    settled_gaps.add(gap_id)
            if round_span is not None and tracer is not None:
                tracer.finish(round_span, candidates=len(candidates),
                              progressed=progressed)
            if not progressed:
                # No acceptable code candidate anywhere: everything
                # left is data.
                break

    def run_single_pass(self) -> None:
        """Ablation path: gaps decided once, in address order."""
        engine = self.engine
        for start, end in engine.state.unknown_gaps():
            for score, offset in self.candidates(start, end):
                if not engine.state.is_unknown(offset):
                    break
                engine.push_claim(CodeClaim(offset, Priority.SOFT,
                                            score, "gap-score",
                                            self.name))
                engine.drain()
                if engine.state.is_code_start(offset):
                    break

    def candidates(self, start: int, end: int) -> list[tuple[float, int]]:
        """Code-like candidate starts within a gap, best first."""
        engine = self.engine
        if start in engine.noreturn_fall_sites:
            # The gap is the continuation of a call to a proven-
            # noreturn function: unreachable by construction, hence
            # data.  (Any real code in it would be a branch target, and
            # branch targets are traced as anchors before gaps are
            # scored.)
            engine.note("reject-candidate", start, end,
                        source="noreturn-continuation",
                        detail=f"gap at {start:#x} is the continuation "
                               f"of a call to a proven-noreturn function; "
                               f"unreachable, no candidates scored")
            _GAP_CANDIDATES.inc(outcome="noreturn-continuation")
            return []
        ranked = []
        vetoed = below = unclean = 0
        recording = engine.provenance is not None
        for offset in self.candidate_offsets(start, end):
            if not engine.superset.is_valid(offset):
                continue
            if engine.behavior_scores is not None and \
                    engine.behavior_scores[offset] <= \
                    engine.config.behavior_veto:
                vetoed += 1
                if recording:
                    engine.note("reject-candidate", offset, offset + 1,
                                source="behavior-veto",
                                detail=f"behavioral score "
                                       f"{float(engine.behavior_scores[offset]):.2f}"
                                       f" <= veto floor "
                                       f"{engine.config.behavior_veto:.2f}",
                                score=float(engine.behavior_scores[offset]))
                continue   # behavioral veto: behaves like data
            score = float(engine.scores[offset])
            score += 0.5 * prologue_score(engine.superset, offset)
            if score <= engine.config.code_threshold:
                below += 1
                if recording:
                    engine.note("reject-candidate", offset, offset + 1,
                                source="gap-score",
                                detail=f"gap-score {score:.2f} <= "
                                       f"threshold "
                                       f"{engine.config.code_threshold:.2f}",
                                score=score)
                continue
            if not self.chain_terminates_cleanly(offset):
                unclean += 1
                if recording:
                    engine.note("reject-candidate", offset, offset + 1,
                                source="chain-termination",
                                detail=f"refuted SOFT trace seeded at "
                                       f"{offset:#x} (gap-score "
                                       f"{score:.2f}): its decode chain "
                                       f"does not terminate cleanly (runs "
                                       f"into padding, data, or a "
                                       f"mid-instruction join) -- strict "
                                       f"soft-trace gate",
                                score=score)
                continue
            ranked.append((score, offset))
        if vetoed:
            _GAP_CANDIDATES.inc(vetoed, outcome="behavior-veto")
        if below:
            _GAP_CANDIDATES.inc(below, outcome="below-threshold")
        if unclean:
            _GAP_CANDIDATES.inc(unclean, outcome="unclean-termination")
        if ranked:
            _GAP_CANDIDATES.inc(len(ranked), outcome="ranked")
        return sorted(ranked, reverse=True)

    def chain_terminates_cleanly(self, offset: int) -> bool:
        """Hard gate for soft gap candidates.

        Real leftover code (jump-table case blocks, indirect-only
        functions) either ends at a control-flow terminator or flows
        into confirmed code *at an instruction boundary*.  Data that
        happens to decode runs into padding traps, undecodable bytes,
        classified data, or mid-instruction joins instead.
        """
        engine = self.engine
        state = engine.state
        current = offset
        for _ in range(engine.config.chain_limit):
            instruction = engine.superset.at(current)
            if instruction is None:
                return False
            if instruction.flow in (FlowKind.TRAP, FlowKind.HALT):
                return False     # real code does not fall into padding
            for i in range(current, min(instruction.end, state.size)):
                if state.is_data(i) and \
                        state.priorities[i] > Priority.SOFT:
                    return False
                if i > current and state.is_code(i):
                    # Overlaps confirmed code mid-instruction: the
                    # "join" would straddle an existing instruction
                    # start, which real leftover code never does.
                    return False
            if not instruction.falls_through:
                return True
            nxt = instruction.end
            if nxt >= state.size:
                return False
            if state.is_code_start(nxt):
                return True
            if state.is_code(nxt):
                return False     # joins confirmed code mid-instruction
            current = nxt
        return True

    def candidate_offsets(self, start: int, end: int) -> list[int]:
        engine = self.engine
        padding = engine.store.padding
        offsets = set()
        cursor = start
        while cursor < end and padding[cursor]:
            cursor += 1
        # Every offset in the first bytes after leading padding: gaps
        # usually begin exactly at a real instruction, but misdecoded
        # neighbors can shift the boundary by a few bytes.
        offsets.update(range(start, min(end, start + 2)))
        offsets.update(range(cursor, min(end, cursor + 12)))
        alignment = engine.config.alignment
        aligned = start + (-start % alignment)
        for candidate in range(aligned, min(end, aligned + 4 * alignment),
                               alignment):
            offsets.add(candidate)
        return sorted(o for o in offsets if start <= o < end)


class GapSealRule(Rule):
    """Unknown gap + no surviving candidate => SOFT data."""

    name = "gap-seal"
    stratum = 2

    def fire(self) -> None:
        engine = self.engine
        for start, end in engine.state.unknown_gaps():
            engine.state.mark_data(start, end, Priority.SOFT)
            engine.store.bump("state")
            engine.store.add_region(RegionFact(
                start, end, "data", Priority.SOFT, "gap-completion",
                self.name))
            engine.note("gap-data", start, end, source="gap-completion",
                        priority=Priority.SOFT,
                        detail=f"no surviving code candidate in the "
                               f"{end - start}-byte gap; classified data")


# ----------------------------------------------------------------------
# Stratum 3: residue realignment
# ----------------------------------------------------------------------

class RealignRule(Rule):
    """Tiny soft-data residue that tiles cleanly into code => code.

    A wrong early decision sometimes leaves a short unclaimed residue
    directly in front of confirmed code (x86 decoding self-synchronizes
    after a few bytes).  When the residue decodes as a clean
    instruction run ending exactly at the following confirmed
    instruction, the correct fix is to accept it as code.
    """

    name = "realign"
    stratum = 3

    def fire(self) -> None:
        engine = self.engine
        engine.pass_id = "realign"
        max_size = engine.config.realign_max_size
        for start, end in engine.state.data_regions():
            if end - start > max_size:
                continue
            if end >= engine.state.size or \
                    not engine.state.is_code_start(end):
                continue
            if engine.store.is_pure_padding(start, end):
                # A pure padding run in front of a function entry is
                # data by convention; int3/nop bytes always tile
                # cleanly, so without this guard they'd be "realigned"
                # into code.
                engine.note("skip-realign", start, end,
                            source="padding-guard",
                            detail=f"residue {start:#x}-{end:#x} is a pure "
                                   f"int3/nop/zero padding run kept as "
                                   f"data (padding-as-code guard); "
                                   f"padding always tiles cleanly, so "
                                   f"realignment would misclassify it")
                continue
            if any(fall <= start < fall + 32
                   for fall in engine.noreturn_fall_sites):
                # Unreachable continuation of a noreturn call.
                engine.note("skip-realign", start, end,
                            source="noreturn-continuation",
                            detail=f"residue {start:#x}-{end:#x} sits in "
                                   f"the unreachable continuation of a "
                                   f"proven-noreturn call")
                continue
            if any(engine.state.priorities[i] > Priority.SOFT
                   for i in range(start, end)):
                engine.note("skip-realign", start, end,
                            source="priority-guard",
                            detail=f"residue {start:#x}-{end:#x} carries "
                                   f"stronger-than-SOFT data evidence; "
                                   f"realignment only overrides soft "
                                   f"decisions")
                continue
            run = self._clean_tile(start, end)
            if run is None:
                continue
            for offset, length in run:
                engine.state.mark_instruction(offset, length,
                                              Priority.SOFT)
            engine.store.bump("state")
            engine.store.add_region(RegionFact(
                start, end, "code", Priority.SOFT, "clean-tile",
                self.name))
            engine.log.append(f"realigned residue {start:#x}-{end:#x}")
            engine.note("realign", start, end, source="clean-tile",
                        priority=Priority.SOFT,
                        detail=f"residue {start:#x}-{end:#x} decodes as "
                               f"{len(run)} instruction(s) tiling exactly "
                               f"to the confirmed code at {end:#x}; "
                               f"accepted as code")

    def _clean_tile(self, start: int, end: int
                    ) -> list[tuple[int, int]] | None:
        """Instructions exactly tiling [start, end), or None."""
        engine = self.engine
        run = []
        cursor = start
        while cursor < end:
            instruction = engine.superset.at(cursor)
            if instruction is None or instruction.end > end:
                return None
            if not instruction.falls_through and instruction.end != end:
                return None
            run.append((cursor, instruction.length))
            cursor = instruction.end
        return run if cursor == end else None
