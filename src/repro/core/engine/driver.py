"""The semi-naive fixpoint driver of the fact/rule correction engine.

:class:`FactEngine` is a drop-in replacement for the legacy
:class:`repro.core.correction.CorrectionEngine` (selected through
:func:`repro.core.engine.create_engine`).  Instead of hand-sequenced
``drain()`` / ``_retry_dispatches()`` loops, it runs a stratified
fixpoint over typed facts:

* Claims (derived code/data assertions) queue on a prioritized
  **agenda** and are consumed strongest-first -- the agenda order is
  the legacy evidence-heap order, bit for bit, so the two engines make
  identical decisions in identical order.
* Set-valued rules (dispatch retry, call continuations) fire only when
  one of their input relations has changed since their last barren
  attempt -- the semi-naive property, tracked through the fact store's
  per-relation version counters instead of being recomputed every
  quiescence check.
* Every rule firing records its own provenance and region facts, so
  the PR-5 audit trail and the lint cross-check are products of the
  inference itself rather than hand-placed hooks.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ...binary.image import MemoryImage
from ...obs.provenance import ProvenanceLog
from ...superset.superset import Superset
from ..config import DisassemblerConfig
from ..evidence import ClassificationState, Evidence, Priority
from ..tables import ResolvedTable, resolve_indirect_jump
from .facts import (CodeClaim, DataClaim, EntryFact, FactExport, FactStore,
                    PrologueFact, TableFact)
from .rules import (CallContinuationRule, DataRule, DispatchRetryRule,
                    EntryAnchorRule, GapRule, GapSealRule, PrologueRule,
                    RealignRule, TableRule, TraceRule)


class FactEngine:
    """Stratified fact/rule engine over one text section."""

    backend = "facts"

    def __init__(self, superset: Superset, scores: np.ndarray,
                 config: DisassemblerConfig,
                 image: MemoryImage | None = None,
                 behavior_scores: np.ndarray | None = None,
                 provenance: ProvenanceLog | None = None) -> None:
        self.superset = superset
        self.scores = scores
        self.behavior_scores = behavior_scores
        self.config = config
        self.image = image if image is not None \
            else MemoryImage.from_text(superset.text)
        self.state = ClassificationState(len(superset))
        self.store = FactStore(superset.text)
        self.resolved_tables: list[ResolvedTable] = []
        self.log: list[str] = []
        self.provenance = provenance
        #: Rule stratum currently executing, for provenance tagging.
        self.pass_id = "correction"
        self.noreturn_entries: set[int] = set()
        self.noreturn_fall_sites: set[int] = set()
        self._sequence = itertools.count()
        self._agenda: list[tuple] = []
        self._returning_cache_key = None
        self._returning_cache: dict[int, bool] = {}
        self._speculative_cache: dict[int, tuple[int, ...] | None] = {}
        # The rule library, by stratum.
        self.table_rule = TableRule(self)
        self.entry_rule = EntryAnchorRule(self)
        self.prologue_rule = PrologueRule(self)
        self.trace_rule = TraceRule(self)
        self.data_rule = DataRule(self)
        self.dispatch_rule = DispatchRetryRule(self)
        self.calls_rule = CallContinuationRule(self)
        self.gap_rule = GapRule(self)
        self.seal_rule = GapSealRule(self)
        self.realign_rule = RealignRule(self)
        self.rules = [self.table_rule, self.entry_rule, self.prologue_rule,
                      self.trace_rule, self.data_rule, self.dispatch_rule,
                      self.calls_rule, self.gap_rule, self.seal_rule,
                      self.realign_rule]

    # ------------------------------------------------------------------
    # Agenda
    # ------------------------------------------------------------------

    def push_claim(self, claim: CodeClaim | DataClaim) -> None:
        """Queue a derived claim, strongest-(priority, weight) first."""
        weight = claim.weight
        heapq.heappush(self._agenda, (-int(claim.priority), -weight,
                                      next(self._sequence), claim))

    def push(self, evidence: Evidence) -> None:
        """Legacy-typed entry point: converts Evidence into a claim.

        Kept so external evidence producers (lint feedback) need not
        know which engine is active.
        """
        if evidence.kind == "data":
            self.push_claim(DataClaim(evidence.offset, evidence.end,
                                      evidence.priority, evidence.weight,
                                      evidence.source, "external"))
        else:
            self.push_claim(CodeClaim(evidence.offset, evidence.priority,
                                      evidence.weight, evidence.source,
                                      "external"))

    def _pop(self) -> CodeClaim | DataClaim | None:
        if not self._agenda:
            return None
        return heapq.heappop(self._agenda)[-1]

    def note(self, action: str, start: int, end: int, *,
             source: str = "", priority: Priority | None = None,
             detail: str = "", **attrs) -> None:
        """Record a provenance event if the audit trail is enabled."""
        if self.provenance is None:
            return
        self.provenance.record(
            action, start, end, pass_id=self.pass_id, source=source,
            priority=Priority(priority).name if priority is not None
            else "", detail=detail, **attrs)

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Run stratum 1 to fixpoint.

        Claims first; when the agenda is empty, the set-valued rules
        get one firing opportunity each, in priority order (dispatch
        retry before call continuations: returning-ness verdicts depend
        on resolved switch targets).  Quiescence is reached when no
        rule finds a changed input relation.
        """
        while True:
            claim = self._pop()
            if claim is not None:
                if type(claim) is DataClaim:
                    self.data_rule.fire(claim)
                else:
                    self.trace_rule.fire(claim)
                continue
            if self.dispatch_rule.fire():
                continue
            if self.calls_rule.fire():
                continue
            return

    # ------------------------------------------------------------------
    # Driver protocol (shared with CorrectionEngine)
    # ------------------------------------------------------------------

    def ingest(self, tables, entry: int | None, prologues) -> None:
        """Stratum 0: record base facts and fire the ingestion rules."""
        self.pass_id = "tables"
        for table in tables:
            fact = TableFact(table.start, table.end, table.entry_size,
                             tuple(table.targets))
            self.store.add_table(fact)
            self.table_rule.fire(fact)
        if entry is not None:
            self.store.add_entry(EntryFact(entry))
            self.entry_rule.fire(entry)
        for offset in prologues:
            self.store.add_prologue(PrologueFact(offset))
            self.prologue_rule.fire(offset)

    def solve(self) -> None:
        """Stratum 1 to fixpoint."""
        self.pass_id = "correction"
        self.drain()

    def finish(self) -> None:
        """Strata 2 and 3: settle gaps, seal leftovers, realign."""
        if not self.config.use_prioritized_correction:
            # Ablation path: one address-order pass, no realignment,
            # sealed under the same pass id (matches the oracle).
            self.pass_id = "gaps-single-pass"
            self.gap_rule.run_single_pass()
            self.seal_rule.fire()
            return
        self.gap_rule.run_rounds()
        self.pass_id = "gaps-final"
        self.seal_rule.fire()
        self.realign_rule.fire()

    def feedback(self, evidence: list[Evidence]) -> None:
        """One lint-feedback round: queue diagnostics, re-solve."""
        self.pass_id = "lint-feedback"
        for item in evidence:
            self.push(item)
        self.drain()
        self.finish()

    def facts(self) -> FactExport:
        """The derived region facts (consumed by ``repro lint``)."""
        return self.store.export()

    # ------------------------------------------------------------------
    # Shared premise helpers
    # ------------------------------------------------------------------

    def speculative_dispatch_targets(self, offset: int
                                     ) -> tuple[int, ...] | None:
        """Resolve a dispatch for verdict purposes only.

        Returning-ness verdicts must not depend on how far tracing has
        progressed, so the backward dataflow here accepts any decodable
        predecessor (not just confirmed ones).  Results feed the
        noreturn analysis, never the classification state.
        """
        if not self.config.use_table_resolution:
            return None
        cache = self._speculative_cache
        if offset in cache:
            return cache[offset]
        instruction = self.superset.at(offset)
        targets = None
        if instruction is not None:
            def permissive(candidate: int) -> bool:
                return (self.state.is_code_start(candidate)
                        or self.superset.is_valid(candidate))

            table = resolve_indirect_jump(self.superset, self.image,
                                          permissive, instruction)
            if table is not None:
                targets = table.targets
        cache[offset] = targets
        return targets
