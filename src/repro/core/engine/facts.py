"""Typed facts and the fact store of the declarative correction engine.

The fact/rule engine models the correction algorithm as inference over
a store of **facts** instead of hand-sequenced control flow.  Facts
come in two shapes:

* **Discrete facts** -- frozen dataclasses (one instance per detected
  table, entry point, prologue idiom, claim, pending call).  Each
  carries a *support interval*: the byte range of the text section its
  truth depends on.  Incremental re-disassembly retracts exactly the
  facts whose support touches changed bytes.
* **Columnar relations** -- per-offset numpy arrays (soft statistical
  scores, behavioral scores, the padding-byte mask).  A columnar
  relation is logically one fact per offset; storing it as an array
  keeps the per-offset "facts" as cheap as the legacy engine's score
  vectors, and its support is per-offset by construction.

Derived facts (claims, region classifications) record the rule that
produced them, so the provenance trail and the lint cross-check fall
out of the store instead of hand-placed hooks.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from ..evidence import Priority

#: Bytes treated as padding by the padding relation (int3 / nop / zero).
PADDING_BYTES = frozenset({0xCC, 0x90, 0x00})


# ----------------------------------------------------------------------
# Extensional (base) facts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableFact:
    """A statistically detected jump/pointer table."""

    start: int
    end: int
    entry_size: int
    targets: tuple[int, ...]

    @property
    def support(self) -> tuple[int, int]:
        return (self.start, self.end)


@dataclass(frozen=True)
class EntryFact:
    """The program entry point (the strongest anchor)."""

    offset: int

    @property
    def support(self) -> tuple[int, int]:
        return (self.offset, self.offset + 1)


@dataclass(frozen=True)
class PrologueFact:
    """A prologue idiom recognized at an aligned offset."""

    offset: int

    @property
    def support(self) -> tuple[int, int]:
        return (self.offset, self.offset + 1)


# ----------------------------------------------------------------------
# Derived facts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CodeClaim:
    """A derived claim that ``offset`` starts an instruction.

    Claims are what the legacy engine called code ``Evidence``: they
    queue on the agenda and are consumed strongest-first by the trace
    rule.  ``rule`` names the deriving rule for provenance.
    """

    offset: int
    priority: Priority
    weight: float
    source: str
    rule: str = ""


@dataclass(frozen=True)
class DataClaim:
    """A derived claim that ``[start, end)`` is data."""

    start: int
    end: int
    priority: Priority
    weight: float
    source: str
    rule: str = ""


@dataclass(frozen=True)
class PendingCall:
    """A deferred call continuation: traced once the callee returns."""

    fall: int
    target: int


@dataclass
class TraceResult:
    """Everything one TraceRule firing derived from its seed claim."""

    accepted: set[int] = field(default_factory=set)
    call_targets: set[int] = field(default_factory=set)
    jump_targets_outside: set[int] = field(default_factory=set)
    rip_references: set[int] = field(default_factory=set)
    resolved_tables: list = field(default_factory=list)
    #: Deferred call continuations: (fall-through offset, callee entry).
    pending_calls: list[tuple[int, int]] = field(default_factory=list)
    unresolved_dispatches: set[int] = field(default_factory=set)
    aborted: bool = False
    derailed_at: int | None = None
    derail_depth: int = -1
    derail_hit: str = ""
    #: [min, max) byte range the firing touched before its verdict.
    touched: tuple[int, int] | None = None
    #: Bytes whose previous non-UNKNOWN classification it overwrote.
    reclassified: int = 0


@dataclass(frozen=True)
class RegionFact:
    """An output fact: why a byte region holds its classification.

    The store keeps one per projection (mark-code / mark-data); the
    linter's ``rule-disagreement`` check reads these instead of
    recomputing evidence.
    """

    start: int
    end: int
    label: str                  # "code" | "data"
    priority: Priority
    source: str
    rule: str


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class FactStore:
    """Typed fact relations plus delta counters for semi-naive firing.

    Every mutating operation bumps a per-relation *version*; rules
    remember the versions they last fired against and re-fire only when
    an input relation has a non-empty delta (the semi-naive property:
    no rule re-derives from an unchanged input set).
    """

    def __init__(self, text: bytes) -> None:
        self.text = text
        self.tables: list[TableFact] = []
        self.entries: list[EntryFact] = []
        self.prologues: list[PrologueFact] = []
        self.pending_calls: list[PendingCall] = []
        self.unresolved_dispatches: set[int] = set()
        self.region_facts: list[RegionFact] = []
        #: Columnar relation: True where the byte is padding.
        self.padding: np.ndarray = np.frombuffer(
            text, dtype=np.uint8) if text else np.zeros(0, dtype=np.uint8)
        self.padding = np.isin(self.padding,
                               np.array(sorted(PADDING_BYTES),
                                        dtype=np.uint8))
        #: Per-relation version counters (semi-naive deltas).
        self.versions: dict[str, int] = {
            "tables": 0, "entries": 0, "prologues": 0,
            "pending_calls": 0, "dispatches": 0, "resolved": 0,
            "state": 0,
        }

    # -- mutation ------------------------------------------------------

    def bump(self, relation: str) -> None:
        self.versions[relation] = self.versions.get(relation, 0) + 1

    def add_table(self, fact: TableFact) -> None:
        self.tables.append(fact)
        self.bump("tables")

    def add_entry(self, fact: EntryFact) -> None:
        self.entries.append(fact)
        self.bump("entries")

    def add_prologue(self, fact: PrologueFact) -> None:
        self.prologues.append(fact)
        self.bump("prologues")

    def add_pending_call(self, fact: PendingCall) -> None:
        self.pending_calls.append(fact)
        self.bump("pending_calls")

    def add_unresolved_dispatch(self, offset: int) -> None:
        if offset not in self.unresolved_dispatches:
            self.unresolved_dispatches.add(offset)
            self.bump("dispatches")

    def add_region(self, fact: RegionFact) -> None:
        self.region_facts.append(fact)

    # -- queries -------------------------------------------------------

    def is_pure_padding(self, start: int, end: int) -> bool:
        """True when every byte of [start, end) is a padding byte."""
        return bool(self.padding[start:end].all())

    def export(self) -> FactExport:
        """A read-only snapshot of the output region facts for lint."""
        return FactExport(sorted(self.region_facts,
                                 key=lambda f: (f.start, f.end)))


class FactExport:
    """Sorted region facts with interval lookup (the lint-facing view)."""

    def __init__(self, regions: list[RegionFact]) -> None:
        self.regions = regions
        self._starts = [region.start for region in regions]

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def covering(self, start: int, end: int) -> list[RegionFact]:
        """Region facts overlapping [start, end), latest-written last.

        Later facts overwrite earlier ones byte-wise, so the last
        overlapping fact is the one that finally classified the range.
        """
        index = bisect_right(self._starts, start)
        # Walk left past regions that start before ``start`` but reach
        # into the queried range, then scan right through the overlap.
        lo = max(0, index - 64)
        hits = [region for region in self.regions[lo:]
                if region.start < end and start < region.end]
        return hits

    def classifier_of(self, start: int, end: int) -> RegionFact | None:
        """The final (strongest-surviving) fact covering the range."""
        hits = self.covering(start, end)
        return hits[-1] if hits else None
