"""Declarative fact/rule correction engine with a legacy-oracle seam.

The disassembler obtains its correction engine through
:func:`create_engine`.  By default that is :class:`FactEngine` -- the
stratified fact/rule engine with a semi-naive fixpoint driver
(:mod:`repro.core.engine.driver`).  Setting ``REPRO_ENGINE=worklist``
in the environment selects the legacy hand-sequenced worklist engine
(:class:`repro.core.correction.CorrectionEngine`) instead, which is
kept -- unchanged -- as the differential-testing oracle: the two must
produce byte-identical results corpus-wide (enforced by
``tests/engine`` and the CI ``engine`` job), mirroring the
``REPRO_DECODER=interp`` seam of :mod:`repro.isa.decoder`.
"""

from __future__ import annotations

import os

from .driver import FactEngine
from .facts import (CodeClaim, DataClaim, EntryFact, FactExport, FactStore,
                    PendingCall, PrologueFact, RegionFact, TableFact)
from .incremental import FactBase, diff_spans, disassemble_incremental

_BACKEND = "facts"
if os.environ.get("REPRO_ENGINE", "facts").strip().lower() \
        in ("worklist", "legacy"):
    _BACKEND = "worklist"


def engine_backend() -> str:
    """The active correction backend: ``"facts"`` or ``"worklist"``."""
    return _BACKEND


def create_engine(superset, scores, config, *, image=None,
                  behavior_scores=None, provenance=None):
    """The correction engine selected by ``REPRO_ENGINE``.

    Both backends implement the same driver protocol
    (``ingest`` / ``solve`` / ``finish`` / ``feedback`` / ``facts``)
    plus the shared surface the toolchain reads afterwards
    (``state``, ``log``, ``resolved_tables``, ``noreturn_entries``).
    """
    if _BACKEND == "worklist":
        from ..correction import CorrectionEngine
        return CorrectionEngine(superset, scores, config, image=image,
                                behavior_scores=behavior_scores,
                                provenance=provenance)
    return FactEngine(superset, scores, config, image=image,
                      behavior_scores=behavior_scores,
                      provenance=provenance)


__all__ = [
    "CodeClaim", "DataClaim", "EntryFact", "FactBase", "FactEngine",
    "FactExport", "FactStore", "PendingCall", "PrologueFact",
    "RegionFact", "TableFact", "create_engine", "diff_spans",
    "disassemble_incremental", "engine_backend",
]
