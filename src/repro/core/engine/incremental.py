"""Incremental re-disassembly: retract only what changed bytes support.

A :class:`FactBase` snapshots the byte-supported inputs of one
disassembly -- the text, the superset candidates, and the raw
statistical/behavioral score components.  Given a near-identical
resubmission (patch workflows, rewrite round-trips, serve ``base``
requests), :func:`disassemble_incremental` diffs the bytes, retracts
exactly the per-offset facts whose support window touches a changed
span, recomputes those through the same per-offset code paths a cold
run uses, and re-enters the correction fixpoint.

The support windows are conservative byte bounds:

* a superset candidate at ``o`` reads at most ``_RUN_FAST_WINDOW``
  bytes ahead of ``o`` (the PR-6 decode-window bound);
* a statistical or behavioral score at ``o`` examines a fall-through
  chain of at most ``chain_window`` instructions plus one decode
  window -- ``chain_window * MAX_INSTRUCTION_LENGTH +
  _RUN_FAST_WINDOW`` bytes;
* ASCII-run membership can shift far from a patch (a new NUL
  terminates a long printable run), so penalty arrays of old and new
  text are compared directly and differing offsets are retracted too.

Everything retained is bit-identical to what a cold run would compute
(same objects, or values produced by the same float expressions over
unchanged bytes), so the correction phase -- re-run in full on the
patched inputs -- yields a byte-identical result.  The Hypothesis
property suite asserts exactly that for random byte patches.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ...isa.tables import MAX_INSTRUCTION_LENGTH
from ...obs.metrics import REGISTRY
from ...obs.provenance import ProvenanceLog
from ...obs.trace import current_tracer, phase_span
from ...perf import PhaseTimings
from ...superset import superset as superset_mod
from ...superset.superset import _RUN_FAST_WINDOW, Superset
from ..config import DisassemblerConfig

_INCREMENTAL = REGISTRY.counter(
    "repro_incremental_total",
    "Incremental re-disassembly attempts, by outcome")


@dataclass
class FactBase:
    """The byte-supported inputs of one disassembly, kept for reuse."""

    text: bytes
    superset: Superset
    stat_scores: np.ndarray | None
    behavior_scores: np.ndarray | None
    config: DisassemblerConfig
    prologues: list[int] | None = None

    @classmethod
    def from_run(cls, disassembly, config: DisassemblerConfig) -> FactBase:
        """Snapshot a finished :class:`~repro.core.Disassembly`."""
        return cls(text=disassembly.superset.text,
                   superset=disassembly.superset,
                   stat_scores=disassembly.stat_scores,
                   behavior_scores=disassembly.behavior_scores,
                   config=config,
                   prologues=disassembly.prologues)


@dataclass
class IncrementalStats:
    """What an incremental run reused versus recomputed."""

    total: int
    cold: bool = False
    reason: str = ""
    changed_bytes: int = 0
    spans: int = 0
    redecoded: int = 0
    stat_rescored: int = 0
    behavior_rescored: int = 0
    dirty_ranges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def reused_fraction(self) -> float:
        """Fraction of superset candidates carried over unchanged."""
        if self.cold or not self.total:
            return 0.0
        return 1.0 - self.redecoded / self.total

    def as_dict(self) -> dict:
        return {"cold": self.cold, "reason": self.reason,
                "total": self.total, "changed_bytes": self.changed_bytes,
                "spans": self.spans, "redecoded": self.redecoded,
                "stat_rescored": self.stat_rescored,
                "behavior_rescored": self.behavior_rescored,
                "reused_fraction": round(self.reused_fraction, 4)}


def diff_spans(old: bytes, new: bytes) -> list[tuple[int, int]]:
    """Maximal [start, end) spans where the two texts differ."""
    if len(old) != len(new):
        raise ValueError("diff_spans requires equal-length texts")
    if not old:
        return []
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    changed = np.flatnonzero(a != b)
    if changed.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(changed) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [changed.size - 1]))
    return [(int(changed[s]), int(changed[e]) + 1)
            for s, e in zip(starts, ends)]


def _dirty_ranges(spans: list[tuple[int, int]], back: int,
                  size: int) -> list[tuple[int, int]]:
    """Widen each changed span ``back`` bytes left, then merge overlaps."""
    merged: list[tuple[int, int]] = []
    for start, end in spans:
        lo, hi = max(0, start - back), min(end, size)
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _range_offsets(ranges: list[tuple[int, int]]):
    for start, end in ranges:
        yield from range(start, end)


def _grow(array: np.ndarray, size: int) -> np.ndarray:
    """A writable copy of ``array`` zero-extended to ``size`` entries.

    The extension is always inside a dirty range (the grown tail is a
    changed span), so its placeholder values are fully recomputed.
    """
    out = np.zeros(size, dtype=array.dtype)
    out[:len(array)] = array
    return out


def _patch_prologues(old: list[int], superset: Superset,
                     ranges: list[tuple[int, int]],
                     alignment: int) -> list[int]:
    """Re-test the prologue idiom only at dirty aligned offsets.

    ``prologue_score`` reads a fall-through chain of at most four
    instructions (< one score dirty window), so aligned offsets
    outside ``ranges`` keep their old verdict.
    """
    from ...analysis.idioms import PROLOGUE_THRESHOLD, prologue_score
    dirty: set[int] = set()
    for start, end in ranges:
        first = max(0, start - start % alignment)
        dirty.update(range(first, end, alignment))
    kept = [o for o in old if o not in dirty]
    kept.extend(o for o in sorted(dirty)
                if o < len(superset) and superset.is_valid(o)
                and prologue_score(superset, o) >= PROLOGUE_THRESHOLD)
    return sorted(kept)


def _patch_superset(old: Superset, text: bytes,
                    spans: list[tuple[int, int]],
                    stats: IncrementalStats) -> Superset:
    """Re-decode only offsets whose decode window touches a change.

    Candidates outside the windows are carried over by reference:
    their bytes are identical, and decoding is a pure function of the
    bounded byte window.  The decoder is looked up through the superset
    module so the ``REPRO_DECODER`` seam (and test doubles) apply.
    """
    instructions = list(old.instructions)
    if len(text) > len(instructions):
        instructions.extend([None] * (len(text) - len(instructions)))
    decode = superset_mod.try_decode
    for start, end in _dirty_ranges(spans, _RUN_FAST_WINDOW - 1,
                                    len(text)):
        for offset in range(start, end):
            instructions[offset] = decode(text, offset)
            stats.redecoded += 1
    return Superset(text=text, instructions=instructions)


def disassemble_incremental(disassembler, base: FactBase, target,
                            entry: int | None = None, *,
                            timings: PhaseTimings | None = None):
    """Re-disassemble ``target`` reusing ``base`` where bytes agree.

    Returns ``(disassembly, stats)``.  Falls back to a full cold run
    (and says so in ``stats.reason``) when the snapshot cannot be
    reused exactly: different config, a shrunk text, or a snapshot
    missing a score component the config needs.  A *grown* text is
    handled incrementally (the extension is treated as changed bytes).
    """
    from ..disassembler import _extract, combine_scores
    config = disassembler.config
    text, resolved_entry, image = _extract(target, entry)
    stats = IncrementalStats(total=len(text))

    def cold(reason: str):
        stats.cold = True
        stats.reason = reason
        _INCREMENTAL.inc(outcome=f"cold-{reason}")
        disassembly = disassembler.disassemble_rich(target, entry=entry,
                                                    timings=timings)
        return disassembly, stats

    if config != base.config:
        return cold("config")
    if len(text) < len(base.text):
        return cold("shrunk")
    if config.use_statistics and base.stat_scores is None:
        return cold("no-stat-snapshot")
    if config.use_behavior and base.behavior_scores is None:
        return cold("no-behavior-snapshot")

    # A grown text (rewrite round-trips: the pinned-data layout keeps
    # the original image as a prefix and appends relocated code) is the
    # equal-length case plus one changed span covering the extension.
    prefix = len(base.text)
    spans = diff_spans(base.text, text[:prefix])
    if len(text) > prefix:
        spans.append((prefix, len(text)))
    stats.spans = len(spans)
    stats.changed_bytes = sum(end - start for start, end in spans)
    _INCREMENTAL.inc(outcome="incremental")

    timings = timings if timings is not None else PhaseTimings()
    provenance = ProvenanceLog() if config.record_provenance else None
    score_back = (config.chain_window * MAX_INSTRUCTION_LENGTH
                  + _RUN_FAST_WINDOW)
    score_ranges = _dirty_ranges(spans, score_back, len(text))
    stats.dirty_ranges = score_ranges

    with ExitStack() as stack:
        tracer = current_tracer()
        if tracer is not None:
            stack.enter_context(tracer.span(
                "disassemble", bytes=len(text), entry=resolved_entry,
                incremental=True, changed=stats.changed_bytes))

        with phase_span("superset", timings):
            superset = (_patch_superset(base.superset, text, spans, stats)
                        if spans else base.superset)
            prologues = None
            if base.prologues is not None:
                prologues = _patch_prologues(base.prologues, superset,
                                             score_ranges,
                                             config.alignment)

        with phase_span("behavior", timings):
            behavior = None
            if config.use_behavior:
                behavior = _grow(base.behavior_scores, len(text))
                offsets = list(_range_offsets(score_ranges))
                disassembler._analyzer.rescore(superset, offsets, behavior)
                stats.behavior_rescored = len(offsets)

        with phase_span("scoring", timings):
            stat = None
            if config.use_statistics:
                stat = _grow(base.stat_scores, len(text))
                dirty = set(_range_offsets(score_ranges))
                # ASCII-run membership can flip far from the patch
                # (terminators appear or vanish); retract every offset
                # whose penalty differs between the two texts.
                scorer = disassembler._scorer
                old_penalty = scorer._ascii_penalty(base.text)
                new_penalty = scorer._ascii_penalty(text)
                dirty.update(
                    int(o) for o in
                    np.flatnonzero(old_penalty != new_penalty[:prefix]))
                offsets = sorted(dirty)
                scorer.rescore(superset, offsets, stat)
                stats.stat_rescored = len(offsets)
            scores = combine_scores(config, superset, stat, behavior)

        return disassembler._correct(text, resolved_entry, image,
                                     superset, stat, behavior, scores,
                                     timings, provenance,
                                     prologues=prologues), stats
