"""The paper's contribution: prioritized error-correcting disassembly."""

from .config import ABLATION_CONFIGS, DEFAULT_CONFIG, DisassemblerConfig
from .correction import CorrectionEngine, TraceOutcome
from .disassembler import Disassembler, Disassembly
from .engine import (FactBase, FactEngine, create_engine,
                     disassemble_incremental, engine_backend)
from .evidence import (Classification, ClassificationState, Evidence,
                       Priority)
from .functions import FunctionSpan, identify_functions

__all__ = [
    "ABLATION_CONFIGS", "DEFAULT_CONFIG", "DisassemblerConfig",
    "CorrectionEngine", "TraceOutcome", "Disassembler", "Disassembly",
    "Classification", "ClassificationState", "Evidence", "FactBase",
    "FactEngine", "Priority", "FunctionSpan", "create_engine",
    "disassemble_incremental", "engine_backend", "identify_functions",
]
