"""Jump/pointer-table resolution by local backward dataflow.

When tracing confirms an indirect jump or call, the surrounding
instructions usually reveal the dispatch table:

* ``jmp [T + idx*8]``                      -- absolute table at T;
* ``lea B, [rip -> T]`` / ``mov B, T`` ... ``movsxd S, [B + idx*4]`` ...
  ``add S, B`` ... ``jmp S``               -- self-relative table at T;
* ``mov R, [T + idx*8]`` ... ``call R``    -- pointer (function) table.

The table bound comes from the guarding ``cmp idx, N-1`` when one is
found in the short backward instruction chain; otherwise entries are
read while they remain plausible code addresses.  Resolved targets are
definitive code evidence, and tables living inside the text section are
definitive data evidence -- the strongest correction signals the
algorithm has.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binary.image import MemoryImage
from ..isa.instruction import Instruction
from ..isa.operands import ImmOp, MemOp, RegOp
from ..superset.superset import Superset

#: Hard cap on entries read when no cmp bound is found.
MAX_UNBOUNDED_ENTRIES = 64

#: How many confirmed instructions the backward walk may cross.
BACKWARD_WINDOW = 8


@dataclass(frozen=True)
class ResolvedTable:
    """One successfully resolved dispatch table."""

    address: int            # absolute address of the first entry
    entry_size: int         # 8 (absolute) or 4 (self-relative)
    targets: tuple[int, ...]
    in_text: bool           # table bytes live inside the text section
    kind: str               # "jump" or "pointer"
    dispatch: int = -1      # offset of the dispatching instruction

    @property
    def end(self) -> int:
        return self.address + self.entry_size * len(self.targets)


def backward_chain(superset: Superset, accepted, offset: int,
                   limit: int = BACKWARD_WINDOW) -> list[Instruction]:
    """Confirmed instructions linearly preceding ``offset``, nearest first.

    ``accepted`` is a predicate over offsets (is this an accepted
    instruction start?).  The walk follows exact end-to-start adjacency,
    which holds within a basic block.
    """
    chain: list[Instruction] = []
    current = offset
    while len(chain) < limit:
        previous = None
        for back in range(1, 16):
            candidate = current - back
            if candidate < 0:
                break
            if accepted(candidate):
                ins = superset.at(candidate)
                if ins is not None and ins.end == current:
                    previous = ins
                break
        if previous is None:
            break
        chain.append(previous)
        current = previous.offset
    return chain


def _bound_from_cmp(chain: list[Instruction]) -> int | None:
    """Entry count from a guarding ``cmp idx, N-1`` in the chain."""
    for ins in chain:
        if ins.mnemonic == "cmp" and len(ins.operands) == 2 \
                and isinstance(ins.operands[1], ImmOp):
            bound = ins.operands[1].value + 1
            if 1 <= bound <= 4096:
                return bound
    return None


def _indexed_table_operand(ins: Instruction) -> MemOp | None:
    """The [T + idx*k] operand of a dispatch, if it has that shape."""
    for operand in ins.operands:
        if isinstance(operand, MemOp) and operand.base is None \
                and operand.index is not None and not operand.rip_relative:
            return operand
    return None


def _read_absolute_entries(image: MemoryImage, address: int,
                           text_size: int, superset: Superset,
                           bound: int | None) -> tuple[int, ...]:
    limit = bound if bound is not None else MAX_UNBOUNDED_ENTRIES
    targets: list[int] = []
    for i in range(limit):
        value = image.read_u64(address + 8 * i)
        if value is None or not 0 <= value < text_size \
                or not superset.is_valid(value):
            if bound is not None:
                return ()   # a bounded table must be fully plausible
            break
        targets.append(value)
    return tuple(targets)


def _read_relative_entries(image: MemoryImage, address: int,
                           text_size: int, superset: Superset,
                           bound: int | None) -> tuple[int, ...]:
    # Entries are relative to the table start; for in-text tables the
    # table address is also the table's text offset, so the same
    # arithmetic applies in both placements.
    limit = bound if bound is not None else MAX_UNBOUNDED_ENTRIES
    targets: list[int] = []
    for i in range(limit):
        value = image.read_i32(address + 4 * i)
        target = address + value if value is not None else None
        if target is None or not 0 <= target < text_size \
                or not superset.is_valid(target):
            if bound is not None:
                return ()
            break
        targets.append(target)
    return tuple(targets)


def resolve_indirect_jump(superset: Superset, image: MemoryImage,
                          accepted, dispatch: Instruction
                          ) -> ResolvedTable | None:
    """Resolve ``jmp [T + idx*8]`` or the lea/movsxd/add/jmp-reg idiom."""
    text_size = len(superset)
    chain = backward_chain(superset, accepted, dispatch.offset)
    bound = _bound_from_cmp(chain)

    operand = _indexed_table_operand(dispatch)
    if operand is not None and operand.scale == 8:
        address = operand.disp & 0xFFFFFFFF
        targets = _read_absolute_entries(image, address, text_size,
                                         superset, bound)
        if len(targets) >= 2:
            return ResolvedTable(address=address, entry_size=8,
                                 targets=targets,
                                 in_text=image.in_text(address),
                                 kind="jump", dispatch=dispatch.offset)
        return None

    # jmp reg: look for movsxd S, [B + idx*4] and the definition of B.
    if not dispatch.operands or not isinstance(dispatch.operands[0], RegOp):
        return None
    table_base = _relative_table_base(chain)
    if table_base is None:
        return None
    targets = _read_relative_entries(image, table_base, text_size,
                                     superset, bound)
    if len(targets) >= 2:
        return ResolvedTable(address=table_base, entry_size=4,
                             targets=targets,
                             in_text=image.in_text(table_base),
                             kind="jump", dispatch=dispatch.offset)
    return None


def _relative_table_base(chain: list[Instruction]) -> int | None:
    """Find B's value from ``lea B, [rip->T]`` or ``mov B, imm``."""
    base_register: int | None = None
    for ins in chain:
        if ins.mnemonic == "movsxd" and len(ins.operands) == 2 \
                and isinstance(ins.operands[1], MemOp) \
                and ins.operands[1].scale == 4 \
                and ins.operands[1].base is not None:
            base_register = ins.operands[1].base.family
            continue
        if base_register is None:
            continue
        if not ins.operands or not isinstance(ins.operands[0], RegOp) \
                or ins.operands[0].register.family != base_register:
            continue
        if ins.mnemonic == "lea" and ins.rip_target is not None:
            return ins.rip_target
        if ins.mnemonic == "mov" and len(ins.operands) == 2 \
                and isinstance(ins.operands[1], ImmOp):
            return ins.operands[1].value
    return None


def resolve_indirect_call(superset: Superset, image: MemoryImage,
                          accepted, dispatch: Instruction
                          ) -> ResolvedTable | None:
    """Resolve ``mov R, [T + idx*8] ... call R`` pointer tables."""
    if not dispatch.operands or not isinstance(dispatch.operands[0], RegOp):
        return None
    register = dispatch.operands[0].register.family
    chain = backward_chain(superset, accepted, dispatch.offset)
    bound = _bound_from_cmp(chain)
    for ins in chain:
        if ins.mnemonic != "mov" or len(ins.operands) != 2:
            continue
        dst, src = ins.operands
        if not isinstance(dst, RegOp) or dst.register.family != register:
            continue
        if not isinstance(src, MemOp) or src.base is not None \
                or src.index is None or src.rip_relative or src.scale != 8:
            continue
        address = src.disp & 0xFFFFFFFF
        targets = _read_absolute_entries(image, address, len(superset),
                                         superset, bound)
        if len(targets) >= 2:
            return ResolvedTable(address=address, entry_size=8,
                                 targets=targets,
                                 in_text=image.in_text(address),
                                 kind="pointer",
                                 dispatch=dispatch.offset)
        return None
    return None
