"""Function-boundary identification over the final classification.

Entry candidates come from four sources: the program entry point,
direct call targets observed in accepted code, targets of resolved
pointer (function) tables, and prologue idioms at aligned offsets that
no predecessor falls through into.  Extents follow the standard
contiguous-layout assumption (a function spans from its entry to the
next entry).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.idioms import PROLOGUE_THRESHOLD, prologue_score
from ..isa.opcodes import FlowKind
from ..superset.superset import Superset
from .evidence import ClassificationState


@dataclass(frozen=True)
class FunctionSpan:
    entry: int
    end: int


def _falls_into(superset: Superset, state: ClassificationState,
                offset: int) -> bool:
    """Does confirmed code fall through into ``offset``?

    Padding instructions (nop runs, int3) between functions are skipped:
    a nop sled that "falls into" a function start does not make the
    start an internal label.
    """
    current = offset
    while current > 0:
        previous = None
        for back in range(1, 16):
            candidate = current - back
            if candidate < 0:
                break
            if state.is_code_start(candidate):
                ins = superset.at(candidate)
                if ins is not None and ins.end == current:
                    previous = ins
                break
        if previous is None:
            return False           # preceded by data/padding bytes
        if previous.is_nop or previous.flow is FlowKind.TRAP:
            current = previous.offset
            continue
        return previous.falls_through
    return False


def identify_functions(superset: Superset, state: ClassificationState,
                       entry: int, *,
                       pointer_table_targets: frozenset[int] = frozenset(),
                       alignment: int = 16) -> list[FunctionSpan]:
    """Derive function entries and extents from accepted code."""
    starts = state.instruction_starts()
    entries: set[int] = set()
    if entry in starts:
        entries.add(entry)

    # Direct call targets, and tail-jump targets that open like functions.
    for offset in starts:
        instruction = superset.at(offset)
        if instruction is None:
            continue
        target = instruction.branch_target
        if target not in starts:
            continue
        if instruction.flow is FlowKind.CALL:
            entries.add(target)
        elif instruction.flow is FlowKind.JUMP \
                and target % alignment == 0 \
                and prologue_score(superset, target) >= PROLOGUE_THRESHOLD:
            entries.add(target)    # likely tail call

    # Pointer (function) tables point at function entries by definition.
    for target in pointer_table_targets:
        if target in starts:
            entries.add(target)

    # Aligned prologues that nothing falls through into.
    for offset in starts:
        if offset % alignment:
            continue
        if prologue_score(superset, offset) < PROLOGUE_THRESHOLD:
            continue
        if _falls_into(superset, state, offset):
            continue
        entries.add(offset)

    ordered = sorted(entries)
    spans = []
    for i, fn_entry in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else state.size
        spans.append(FunctionSpan(entry=fn_entry, end=end))
    return spans
