"""Classification state and evidence types for prioritized correction.

The correction engine maintains a per-byte classification with the
priority of the evidence that produced it.  Stronger evidence may
overwrite weaker decisions (that is the "error correction"); equal or
weaker evidence that contradicts an existing decision is rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Classification(enum.IntEnum):
    UNKNOWN = 0
    CODE_START = 1
    CODE_INTERIOR = 2
    DATA = 3


class Priority(enum.IntEnum):
    """Evidence strength classes, strongest last."""

    SOFT = 1         # statistical / behavioral scores
    IDIOM = 2        # prologue patterns at aligned offsets
    STRUCTURAL = 3   # detected tables, long padding runs
    ANCHOR = 4       # the entry point and propagation from anchors


@dataclass(frozen=True)
class Evidence:
    """One piece of evidence about a byte range.

    ``kind`` is ``"code"`` (offset is an instruction start) or ``"data"``
    (the [offset, end) range is data).  ``weight`` orders evidence within
    one priority class; ``source`` names the producing analysis for
    explainability.
    """

    kind: str
    offset: int
    end: int
    priority: Priority
    weight: float
    source: str

    def __post_init__(self) -> None:
        if self.kind not in ("code", "data"):
            raise ValueError(f"bad evidence kind: {self.kind}")
        if self.end < self.offset:
            raise ValueError("evidence range is inverted")


class ConflictError(Exception):
    """Internal signal: an assertion contradicts stronger evidence."""


class ClassificationState:
    """Per-byte labels plus the priority that fixed each byte."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.labels = bytearray(size)        # Classification values
        self.priorities = bytearray(size)    # Priority values (0 = none)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def classification(self, offset: int) -> Classification:
        return Classification(self.labels[offset])

    def is_unknown(self, offset: int) -> bool:
        return self.labels[offset] == Classification.UNKNOWN

    def is_code_start(self, offset: int) -> bool:
        return self.labels[offset] == Classification.CODE_START

    def is_code(self, offset: int) -> bool:
        return self.labels[offset] in (Classification.CODE_START,
                                       Classification.CODE_INTERIOR)

    def is_data(self, offset: int) -> bool:
        return self.labels[offset] == Classification.DATA

    def priority_at(self, offset: int) -> int:
        return self.priorities[offset]

    def instruction_starts(self) -> set[int]:
        return {i for i, label in enumerate(self.labels)
                if label == Classification.CODE_START}

    def unknown_gaps(self) -> list[tuple[int, int]]:
        """Maximal [start, end) runs still unclassified."""
        gaps = []
        start = None
        for i, label in enumerate(self.labels):
            if label == Classification.UNKNOWN and start is None:
                start = i
            elif label != Classification.UNKNOWN and start is not None:
                gaps.append((start, i))
                start = None
        if start is not None:
            gaps.append((start, self.size))
        return gaps

    def data_regions(self) -> list[tuple[int, int]]:
        regions = []
        start = None
        for i, label in enumerate(self.labels):
            if label == Classification.DATA and start is None:
                start = i
            elif label != Classification.DATA and start is not None:
                regions.append((start, i))
                start = None
        if start is not None:
            regions.append((start, self.size))
        return regions

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def can_mark_instruction(self, offset: int, length: int,
                             priority: Priority) -> bool:
        """Would marking this instruction contradict stronger evidence?"""
        end = min(offset + length, self.size)
        if self.labels[offset] == Classification.CODE_INTERIOR \
                and self.priorities[offset] >= priority:
            return False
        for i in range(offset, end):
            label = self.labels[i]
            if label == Classification.DATA \
                    and self.priorities[i] >= priority:
                return False
            if i > offset and label == Classification.CODE_START \
                    and self.priorities[i] >= priority:
                return False
        return True

    def mark_instruction(self, offset: int, length: int,
                         priority: Priority) -> None:
        """Record an accepted instruction; caller checked for conflicts."""
        end = min(offset + length, self.size)
        self.labels[offset] = Classification.CODE_START
        self.priorities[offset] = max(self.priorities[offset], priority)
        for i in range(offset + 1, end):
            self.labels[i] = Classification.CODE_INTERIOR
            self.priorities[i] = max(self.priorities[i], priority)

    def can_mark_data(self, start: int, end: int,
                      priority: Priority) -> bool:
        for i in range(start, min(end, self.size)):
            if self.labels[i] in (Classification.CODE_START,
                                  Classification.CODE_INTERIOR) \
                    and self.priorities[i] >= priority:
                return False
        return True

    def mark_data(self, start: int, end: int, priority: Priority) -> None:
        for i in range(start, min(end, self.size)):
            self.labels[i] = Classification.DATA
            self.priorities[i] = max(self.priorities[i], priority)

    def erase(self, offsets: set[int]) -> None:
        """Roll back tentative marks (used when a trace is aborted)."""
        for i in offsets:
            self.labels[i] = Classification.UNKNOWN
            self.priorities[i] = 0
