"""Configuration of the prioritized disassembler.

Every knob that the ablation study (T4) or the sensitivity sweep (F4)
varies lives here, so experiment code can express variants as config
values rather than by monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DisassemblerConfig:
    """Knobs of the prioritized error-correction disassembler.

    Attributes:
        use_statistics: include the n-gram/data-model LLR in candidate
            scoring (ablation: statistical component).
        use_behavior: include behavioral chain scores (ablation:
            behavioral component).
        use_prioritized_correction: process gap decisions through the
            priority queue (strongest evidence first, corrections
            propagate).  When False, gaps are decided in a single
            address-order pass (ablation: prioritization).
        use_table_resolution: resolve jump/pointer tables from dispatch
            idioms during tracing (ablation: structural analysis).
        code_threshold: combined score above which a gap candidate is
            accepted as code (F4 sweeps this).
        behavior_veto: when behavioral analysis is enabled, gap
            candidates whose behavioral score falls at or below this
            floor are rejected outright, regardless of how code-like
            their bytes look statistically ("behavioral properties of
            code to flag data").
        stat_weight / behavior_weight: mixing weights of the two soft
            scores.
        chain_window: instruction window for statistical and behavioral
            chain scoring.
        min_table_entries: minimum run length for jump-table detection.
        min_padding_run: minimum padding-run length treated as
            structural padding evidence.
        alignment: function alignment assumed for prologue scanning.
        use_lint_feedback: run the oracle-free verifier
            (:mod:`repro.lint`) over the first-pass result and feed its
            actionable diagnostics back through the correction engine
            as structural evidence.  Off by default so published
            evaluation tables are unchanged.
        record_provenance: record a per-byte decision audit trail
            (:class:`repro.obs.ProvenanceLog`) during correction,
            surfaced by ``repro explain``.  Strictly observational --
            results are identical either way -- but off by default
            because the trail grows with decision count (overhead
            budget measured in ``benchmarks/bench_obs.py``).
        strict_depth: a trace hitting a contradiction within this many
            BFS steps of its seed is refuted and rolled back (beyond
            it, only SOFT seeds stay strict).  Historically the
            module constant ``STRICT_DEPTH``; now sweepable data.
        gap_rounds: maximum gap-completion rounds before everything
            left is sealed as data.
        realign_max_size: largest soft-data residue the realignment
            pass will consider converting back into code.
        chain_limit: instruction budget of the clean-termination gate
            applied to soft gap candidates.
    """

    use_statistics: bool = True
    use_behavior: bool = True
    use_prioritized_correction: bool = True
    use_table_resolution: bool = True
    use_lint_feedback: bool = False
    record_provenance: bool = False
    code_threshold: float = 0.0
    behavior_veto: float = 0.0
    stat_weight: float = 1.0
    behavior_weight: float = 1.0
    chain_window: int = 6
    min_table_entries: int = 3
    min_padding_run: int = 4
    alignment: int = 16
    strict_depth: int = 8
    gap_rounds: int = 25
    realign_max_size: int = 15
    chain_limit: int = 40


DEFAULT_CONFIG = DisassemblerConfig()

#: Ablation variants evaluated by experiment T4.
ABLATION_CONFIGS: dict[str, DisassemblerConfig] = {
    "full": DEFAULT_CONFIG,
    "stat-only": DisassemblerConfig(use_behavior=False),
    "behavior-only": DisassemblerConfig(use_statistics=False),
    "no-priority": DisassemblerConfig(use_prioritized_correction=False),
    "no-table-resolution": DisassemblerConfig(use_table_resolution=False),
    # Prioritization shows its value when structural anchors are scarce:
    # without resolved tables, soft evidence must carry the whole load.
    "no-priority+no-tables": DisassemblerConfig(
        use_prioritized_correction=False, use_table_resolution=False),
}
