"""The prioritized error-correction algorithm.

Evidence items are processed strongest-first through a priority queue:

1. **Anchors** -- the program entry point; code reached from confirmed
   code via direct calls/jumps and fall-through ("tracing").
2. **Structural** -- detected jump/pointer tables (data evidence whose
   *targets* are simultaneously code evidence) and long padding runs.
3. **Idioms** -- prologue patterns at aligned offsets.
4. **Soft** -- statistical + behavioral scores deciding leftover gaps.

Stronger evidence may overwrite decisions made by weaker evidence (the
"error correction"); a trace that contradicts equal-or-stronger evidence
near its seed is rolled back entirely, because a wrong seed typically
derails within a few instructions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..analysis.idioms import prologue_score
from ..analysis.noreturn import compute_returning
from ..binary.image import MemoryImage
from ..isa.opcodes import FlowKind
from ..obs.metrics import REGISTRY
from ..obs.provenance import ProvenanceLog
from ..superset.superset import Superset
from .config import DisassemblerConfig
from .evidence import (Classification, ClassificationState, Evidence,
                       Priority)
from .tables import (ResolvedTable, resolve_indirect_call,
                     resolve_indirect_jump)

#: Pipeline metrics (process-global; see :mod:`repro.obs.metrics`).
_TRACES = REGISTRY.counter(
    "repro_traces_total",
    "Control-flow traces processed by the correction engine, by outcome")
_RECLASSIFIED = REGISTRY.counter(
    "repro_bytes_reclassified_total",
    "Bytes whose existing classification a correction pass overwrote")
_GAP_CANDIDATES = REGISTRY.counter(
    "repro_gap_candidates_total",
    "Gap-completion code candidates, by screening outcome")

#: A trace that hits a contradiction within this many BFS steps of its
#: seed is considered refuted and rolled back.  Kept as the historical
#: default; the live value is ``DisassemblerConfig.strict_depth``.
STRICT_DEPTH = 8

#: Bytes treated as padding when searching gap candidates.
_PADDING_BYTES = frozenset({0xCC, 0x90, 0x00})


@dataclass
class TraceOutcome:
    """Result of tracing control flow from one seed."""

    accepted: set[int] = field(default_factory=set)
    call_targets: set[int] = field(default_factory=set)
    jump_targets_outside: set[int] = field(default_factory=set)
    rip_references: set[int] = field(default_factory=set)
    resolved_tables: list[ResolvedTable] = field(default_factory=list)
    #: Deferred call continuations: (fall-through offset, callee entry).
    pending_calls: list[tuple[int, int]] = field(default_factory=list)
    #: Indirect dispatches whose table resolution failed (retried later,
    #: once more of the surrounding code is confirmed).
    unresolved_dispatches: set[int] = field(default_factory=set)
    aborted: bool = False
    #: Where and why the trace derailed (aborted traces only).
    derailed_at: int | None = None
    derail_depth: int = -1
    derail_hit: str = ""
    #: [min, max] byte range the trace touched before its verdict.
    touched: tuple[int, int] | None = None
    #: Bytes whose previous non-UNKNOWN classification this trace
    #: overwrote (the "error correction" volume, for metrics).
    reclassified: int = 0


class CorrectionEngine:
    """Runs prioritized error correction over one text section."""

    def __init__(self, superset: Superset, scores: np.ndarray,
                 config: DisassemblerConfig,
                 image: MemoryImage | None = None,
                 behavior_scores: np.ndarray | None = None,
                 provenance: ProvenanceLog | None = None) -> None:
        self.superset = superset
        self.scores = scores
        self.behavior_scores = behavior_scores
        self.config = config
        self.image = image if image is not None \
            else MemoryImage.from_text(superset.text)
        self.state = ClassificationState(len(superset))
        self.resolved_tables: list[ResolvedTable] = []
        self.log: list[str] = []
        #: Opt-in per-byte decision audit trail (None = not recording).
        self.provenance = provenance
        #: Correction pass currently executing, for provenance tagging.
        self.pass_id = "correction"
        self._sequence = itertools.count()
        self._heap: list[tuple] = []
        self._pending_calls: list[tuple[int, int]] = []
        self._unresolved_dispatches: set[int] = set()
        self.noreturn_entries: set[int] = set()
        self.noreturn_fall_sites: set[int] = set()

    # ------------------------------------------------------------------
    # Driver protocol (shared with repro.core.engine.FactEngine)
    # ------------------------------------------------------------------

    def ingest(self, tables, entry: int | None, prologues) -> None:
        """Seed the engine with the structural/anchor/idiom evidence."""
        self.pass_id = "tables"
        for table in tables:
            self.state.mark_data(table.start, table.end,
                                 Priority.STRUCTURAL)
            self.log.append(f"table {table.start:#x}-{table.end:#x} "
                            f"({table.entry_size}-byte entries)")
            self.note("mark-data", table.start, table.end,
                      source="jump-table",
                      priority=Priority.STRUCTURAL,
                      detail=f"detected {table.entry_size}-byte-"
                             f"entry table with "
                             f"{len(table.targets)} targets")
            for target in sorted(set(table.targets)):
                self.push(Evidence("code", target, target,
                                   Priority.STRUCTURAL, 1.0,
                                   "table-target"))
        if entry is not None:
            self.push(Evidence("code", entry, entry, Priority.ANCHOR,
                               2.0, "entry-point"))
        for offset in prologues:
            self.push(Evidence("code", offset, offset, Priority.IDIOM,
                               1.0, "prologue"))

    def solve(self) -> None:
        """Run the correction fixpoint over the seeded evidence."""
        self.pass_id = "correction"
        self.drain()

    def finish(self) -> None:
        """Settle remaining gaps and realign residues."""
        self.complete_gaps()

    def feedback(self, evidence: list[Evidence]) -> None:
        """One lint-feedback round: queue diagnostics, re-solve."""
        self.pass_id = "lint-feedback"
        for item in evidence:
            self.push(item)
        self.drain()
        self.complete_gaps()

    def facts(self):
        """The legacy engine derives no fact store (see repro.core.engine)."""
        return None

    # ------------------------------------------------------------------
    # Evidence queue
    # ------------------------------------------------------------------

    def note(self, action: str, start: int, end: int, *,
             source: str = "", priority: Priority | None = None,
             detail: str = "", **attrs) -> None:
        """Record a provenance event if the audit trail is enabled."""
        if self.provenance is None:
            return
        self.provenance.record(
            action, start, end, pass_id=self.pass_id, source=source,
            priority=Priority(priority).name if priority is not None
            else "", detail=detail, **attrs)

    def push(self, evidence: Evidence) -> None:
        heapq.heappush(self._heap, (-int(evidence.priority),
                                    -evidence.weight,
                                    next(self._sequence), evidence))

    def _pop(self) -> Evidence | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[-1]

    def drain(self) -> None:
        """Process queued evidence to quiescence.

        Alternates between emptying the priority queue and resolving
        deferred call continuations: a call's fall-through is only
        traced once its (fully traced) callee is known to return, so
        data placed after noreturn calls is never swallowed as code.
        """
        while True:
            evidence = self._pop()
            if evidence is not None:
                self._apply(evidence)
                continue
            # Retry unresolved dispatch tables before judging pending
            # call continuations: returning-ness verdicts depend on
            # resolved switch targets (a panic handler with a pending
            # switch would otherwise be presumed returning).
            if self._retry_dispatches():
                continue
            if not self._resolve_pending_calls():
                return

    def _resolve_pending_calls(self) -> bool:
        """Release continuations of calls whose callees return.

        Returns True when new evidence was queued (the drain loop must
        continue).  Continuations of provably-noreturn callees are kept
        pending; if nothing ever proves them returning, their
        fall-through bytes are left to gap completion (i.e. data).
        """
        if not self._pending_calls:
            return False
        targets = {target for _, target in self._pending_calls}
        resolved_jumps = {table.dispatch: table.targets
                          for table in self.resolved_tables
                          if table.kind == "jump" and table.dispatch >= 0}
        # The fixpoint only changes when the target set or the resolved
        # dispatch map changes; resolution rounds are frequent, so cache.
        cache_key = (frozenset(targets), len(resolved_jumps))
        if getattr(self, "_returning_cache_key", None) == cache_key:
            returning = self._returning_cache
        else:
            returning = compute_returning(
                self.superset, targets, resolved_jumps=resolved_jumps,
                resolve_dispatch=self._speculative_dispatch_targets)
            self._returning_cache_key = cache_key
            self._returning_cache = returning
        self.noreturn_entries = {t for t, ok in returning.items()
                                 if not ok}
        still_pending = []
        pushed = False
        for fall, target in self._pending_calls:
            if not self.state.is_code_start(target):
                # Callee not traced yet: no verdict is possible, and
                # releasing now would lose the continuation forever.
                still_pending.append((fall, target))
                continue
            if not returning.get(target, True):
                still_pending.append((fall, target))
                continue
            if not self.state.is_code_start(fall):
                self.push(Evidence("code", fall, fall, Priority.ANCHOR,
                                   1.0, f"call-fallthrough@{target:#x}"))
                pushed = True
        self._pending_calls = still_pending
        self.noreturn_fall_sites = {fall for fall, _ in still_pending}
        return pushed

    def _apply(self, evidence: Evidence) -> None:
        if evidence.kind == "data":
            if self.state.can_mark_data(evidence.offset, evidence.end,
                                        evidence.priority):
                self.state.mark_data(evidence.offset, evidence.end,
                                     evidence.priority)
                self.log.append(f"data {evidence.offset:#x}-{evidence.end:#x}"
                                f" <- {evidence.source}")
                self.note("mark-data", evidence.offset, evidence.end,
                          source=evidence.source,
                          priority=evidence.priority,
                          detail=f"{evidence.end - evidence.offset} bytes "
                                 f"marked data")
            else:
                self.log.append(f"rejected data {evidence.offset:#x} "
                                f"({evidence.source}): stronger code there")
                self.note("reject-data", evidence.offset, evidence.end,
                          source=evidence.source,
                          priority=evidence.priority,
                          detail="stronger code evidence already covers "
                                 "the range")
            return

        if self.state.is_code_start(evidence.offset):
            _TRACES.inc(outcome="joined")
            return
        outcome = self.trace(evidence.offset, evidence.priority,
                             evidence.source)
        if outcome.aborted:
            self.log.append(f"aborted trace from {evidence.offset:#x} "
                            f"({evidence.source})")
            _TRACES.inc(outcome="refuted")
            if self.provenance is not None:
                start, end = outcome.touched or (evidence.offset,
                                                 evidence.offset + 1)
                derail = (outcome.derailed_at
                          if outcome.derailed_at is not None
                          else evidence.offset)
                self.note(
                    "refute-trace", start, end,
                    source=evidence.source, priority=evidence.priority,
                    detail=f"refuted {Priority(evidence.priority).name} "
                           f"trace seeded at {evidence.offset:#x} "
                           f"({evidence.source} {evidence.weight:.2f}): "
                           f"derailed at +{derail - evidence.offset:#x} "
                           f"(depth {outcome.derail_depth}), "
                           f"{outcome.derail_hit}",
                    seed=evidence.offset, weight=evidence.weight,
                    derailed_at=derail, depth=outcome.derail_depth)
            return
        _TRACES.inc(outcome="accepted")
        if outcome.reclassified:
            _RECLASSIFIED.inc(outcome.reclassified,
                              pass_id=self.pass_id)
        if self.provenance is not None and outcome.accepted:
            start, end = outcome.touched or (evidence.offset,
                                             evidence.offset + 1)
            self.note(
                "accept-trace", start, end,
                source=evidence.source, priority=evidence.priority,
                detail=f"trace from {evidence.offset:#x} accepted "
                       f"{len(outcome.accepted)} instruction(s)"
                       + (f", overwrote {outcome.reclassified} byte(s)"
                          if outcome.reclassified else ""),
                seed=evidence.offset, weight=evidence.weight,
                instructions=len(outcome.accepted),
                reclassified=outcome.reclassified)
        # Propagate: direct call targets found in confirmed code are
        # anchors themselves.
        for target in sorted(outcome.call_targets):
            if not self.state.is_code_start(target):
                self.push(Evidence("code", target, target, Priority.ANCHOR,
                                   1.0, f"call-target@{evidence.offset:#x}"))
        # Resolved dispatch tables: their bytes are data (when in text),
        # their targets are code.
        for table in outcome.resolved_tables:
            self._apply_resolved_table(table)
        self._unresolved_dispatches |= outcome.unresolved_dispatches

    def _apply_resolved_table(self, table: ResolvedTable) -> None:
        if table.in_text and self.state.can_mark_data(
                table.address, table.end, Priority.STRUCTURAL):
            self.state.mark_data(table.address, table.end,
                                 Priority.STRUCTURAL)
            self.log.append(f"resolved {table.kind} table "
                            f"{table.address:#x}-{table.end:#x}")
        for target in sorted(set(table.targets)):
            if not self.state.is_code_start(target):
                self.push(Evidence("code", target, target,
                                   Priority.ANCHOR, 1.0,
                                   f"{table.kind}-table-target"))

    def _speculative_dispatch_targets(self, offset: int
                                      ) -> tuple[int, ...] | None:
        """Resolve a dispatch for verdict purposes only.

        Returning-ness verdicts must not depend on how far tracing has
        progressed, so the backward dataflow here accepts any decodable
        predecessor (not just confirmed ones).  Results feed the
        noreturn analysis, never the classification state.
        """
        if not self.config.use_table_resolution:
            return None
        cache = getattr(self, "_speculative_cache", None)
        if cache is None:
            cache = self._speculative_cache = {}
        if offset in cache:
            return cache[offset]
        instruction = self.superset.at(offset)
        targets = None
        if instruction is not None:
            def permissive(candidate: int) -> bool:
                return (self.state.is_code_start(candidate)
                        or self.superset.is_valid(candidate))

            table = resolve_indirect_jump(self.superset, self.image,
                                          permissive, instruction)
            if table is not None:
                targets = table.targets
        cache[offset] = targets
        return targets

    def _retry_dispatches(self) -> bool:
        """Re-attempt table resolution for dispatches that failed.

        Worklist order can visit a dispatch before its defining
        instructions (a branch target popped early), leaving the
        backward dataflow without context; once the surrounding code is
        confirmed, resolution usually succeeds.
        """
        if not self.config.use_table_resolution:
            return False
        progressed = False
        for offset in sorted(self._unresolved_dispatches):
            instruction = self.superset.at(offset)
            if instruction is None or not self.state.is_code_start(offset):
                continue
            if instruction.flow is FlowKind.IJUMP:
                table = resolve_indirect_jump(self.superset, self.image,
                                              self.state.is_code_start,
                                              instruction)
            else:
                table = resolve_indirect_call(self.superset, self.image,
                                              self.state.is_code_start,
                                              instruction)
            if table is not None:
                self._unresolved_dispatches.discard(offset)
                self.resolved_tables.append(table)
                self._apply_resolved_table(table)
                progressed = True
        return progressed

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def trace(self, seed: int, priority: Priority,
              source: str) -> TraceOutcome:
        """Recursive traversal from a seed, marking reached instructions.

        Follows fall-through and direct jump targets; collects direct
        call targets for the caller to enqueue.  Contradictions with
        equal-or-stronger existing evidence near the seed abort and roll
        back the whole trace.
        """
        outcome = TraceOutcome()
        state = self.state
        undo: dict[int, tuple[int, int]] = {}
        worklist: list[tuple[int, int]] = [(seed, 0)]
        visited: set[int] = set()
        # Soft seeds have no corroborating evidence: random data that
        # happens to decode typically derails eventually, not always
        # within STRICT_DEPTH, so for them *any* contradiction refutes
        # the whole trace.  Stronger seeds keep the depth window --
        # genuine code may legitimately abut older wrong decisions far
        # from the seed, and aborting there would lose real coverage.
        strict_everywhere = priority <= Priority.SOFT
        strict_depth = self.config.strict_depth

        def contradiction(depth: int) -> bool:
            """Returns True when the trace must be aborted."""
            return strict_everywhere or depth <= strict_depth

        while worklist:
            offset, depth = worklist.pop()
            if offset in visited:
                continue
            visited.add(offset)
            if state.is_code_start(offset):
                continue   # joins already-confirmed code
            instruction = self.superset.at(offset)
            if instruction is None or \
                    not state.can_mark_instruction(offset,
                                                   instruction.length
                                                   if instruction else 1,
                                                   priority):
                if contradiction(depth):
                    self._rollback(undo)
                    outcome.aborted = True
                    outcome.derailed_at = offset
                    outcome.derail_depth = depth
                    outcome.derail_hit = self._describe_conflict(
                        offset, instruction, priority)
                    if undo:
                        outcome.touched = (min(min(undo), seed),
                                           max(undo) + 1)
                    else:
                        outcome.touched = (min(seed, offset),
                                           max(seed, offset) + 1)
                    return outcome
                continue   # prune this path only

            for i in range(offset, min(offset + instruction.length,
                                       state.size)):
                if i not in undo:
                    undo[i] = (state.labels[i], state.priorities[i])
                    if state.labels[i]:   # non-UNKNOWN: a real overwrite
                        outcome.reclassified += 1
            state.mark_instruction(offset, instruction.length, priority)
            outcome.accepted.add(offset)

            if instruction.rip_target is not None \
                    and 0 <= instruction.rip_target < state.size:
                outcome.rip_references.add(instruction.rip_target)

            if instruction.flow is FlowKind.CALL:
                target = instruction.branch_target
                if target is not None and 0 <= target < state.size:
                    outcome.call_targets.add(target)
                    # Defer the continuation: traced only once the
                    # callee is known to return.
                    outcome.pending_calls.append((instruction.end,
                                                  target))
                    continue
            elif instruction.flow in (FlowKind.JUMP, FlowKind.CJUMP):
                target = instruction.branch_target
                if target is not None:
                    if 0 <= target < state.size:
                        worklist.append((target, depth + 1))
                    else:
                        outcome.jump_targets_outside.add(target)
            elif instruction.flow is FlowKind.IJUMP \
                    and self.config.use_table_resolution:
                table = resolve_indirect_jump(self.superset, self.image,
                                              state.is_code_start,
                                              instruction)
                if table is not None:
                    outcome.resolved_tables.append(table)
                else:
                    outcome.unresolved_dispatches.add(offset)
            elif instruction.flow is FlowKind.ICALL \
                    and self.config.use_table_resolution:
                table = resolve_indirect_call(self.superset, self.image,
                                              state.is_code_start,
                                              instruction)
                if table is not None:
                    outcome.resolved_tables.append(table)
                else:
                    outcome.unresolved_dispatches.add(offset)

            if instruction.flow is FlowKind.TRAP:
                continue   # padding trap: execution never proceeds here
            if instruction.falls_through and instruction.end < state.size:
                worklist.append((instruction.end, depth + 1))

        if undo:
            outcome.touched = (min(min(undo), seed), max(undo) + 1)
        self.resolved_tables.extend(outcome.resolved_tables)
        self._pending_calls.extend(outcome.pending_calls)
        return outcome

    def _describe_conflict(self, offset: int, instruction,
                           priority: Priority) -> str:
        """Why marking ``offset`` failed, for the audit trail."""
        if instruction is None:
            return f"undecodable byte at {offset:#x}"
        state = self.state
        for i in range(offset, min(offset + instruction.length,
                                   state.size)):
            label = Classification(state.labels[i])
            if label == Classification.UNKNOWN:
                continue
            existing = Priority(state.priorities[i]).name \
                if state.priorities[i] else "unset"
            if label == Classification.DATA and \
                    state.priorities[i] >= priority:
                return (f"contradicts {existing} data at {i:#x}")
            if i > offset and label == Classification.CODE_START and \
                    state.priorities[i] >= priority:
                return (f"would straddle {existing} instruction "
                        f"start at {i:#x}")
            if i == offset and label == Classification.CODE_INTERIOR \
                    and state.priorities[i] >= priority:
                return (f"joins {existing} code mid-instruction "
                        f"at {i:#x}")
        return f"conflict with equal-or-stronger evidence at {offset:#x}"

    def _rollback(self, undo: dict[int, tuple[int, int]]) -> None:
        for offset, (label, priority) in undo.items():
            self.state.labels[offset] = label
            self.state.priorities[offset] = priority

    # ------------------------------------------------------------------
    # Gap completion
    # ------------------------------------------------------------------

    def complete_gaps(self, *, max_rounds: int | None = None) -> None:
        """Classify every remaining unknown byte.

        With prioritized correction, each round scores all gap
        candidates, accepts them best-first (so a confident gap decision
        can create call-target anchors that settle weaker gaps before
        their own soft scores are consulted), and marks hopeless gaps as
        data.  Without it (ablation), gaps are decided once, in address
        order.
        """
        if max_rounds is None:
            max_rounds = self.config.gap_rounds
        if not self.config.use_prioritized_correction:
            self.pass_id = "gaps-single-pass"
            self._complete_gaps_single_pass()
            return

        from ..obs.trace import current_tracer
        tracer = current_tracer()
        for round_index in range(max_rounds):
            gaps = self.state.unknown_gaps()
            if not gaps:
                break
            self.pass_id = f"gaps-{round_index + 1}"
            round_span = (tracer.start(self.pass_id, gaps=len(gaps))
                          if tracer is not None else None)
            candidates = []
            for gap_id, (start, end) in enumerate(gaps):
                for score, offset in self._gap_candidates(start, end):
                    candidates.append((score, offset, gap_id))
            # Best-first within the round: a confident gap decision is
            # traced (and its call targets drained) before weaker gap
            # candidates are considered, so anchors settle weak gaps
            # before their own soft scores would have to.  At most one
            # acceptance per gap per round: once a gap is touched, its
            # residue is re-scored next round rather than strip-mined
            # with stale candidates.
            progressed = False
            settled_gaps: set[int] = set()
            for score, offset, gap_id in sorted(candidates, reverse=True):
                if gap_id in settled_gaps:
                    continue
                if not self.state.is_unknown(offset):
                    settled_gaps.add(gap_id)
                    continue   # an earlier trace already settled it
                self.push(Evidence("code", offset, offset, Priority.SOFT,
                                   score, "gap-score"))
                self.drain()
                if self.state.is_code_start(offset):
                    progressed = True
                    settled_gaps.add(gap_id)
            if round_span is not None and tracer is not None:
                tracer.finish(round_span, candidates=len(candidates),
                              progressed=progressed)
            if not progressed:
                # No acceptable code candidate anywhere: everything
                # left is data.
                break
        self.pass_id = "gaps-final"
        for start, end in self.state.unknown_gaps():
            self.state.mark_data(start, end, Priority.SOFT)
            self.note("gap-data", start, end, source="gap-completion",
                      priority=Priority.SOFT,
                      detail=f"no surviving code candidate in the "
                             f"{end - start}-byte gap; classified data")
        self.realign_residues()

    def _complete_gaps_single_pass(self) -> None:
        for start, end in self.state.unknown_gaps():
            for score, offset in self._gap_candidates(start, end):
                if not self.state.is_unknown(offset):
                    break
                self.push(Evidence("code", offset, offset, Priority.SOFT,
                                   score, "gap-score"))
                self.drain()
                if self.state.is_code_start(offset):
                    break
        for start, end in self.state.unknown_gaps():
            self.state.mark_data(start, end, Priority.SOFT)
            self.note("gap-data", start, end, source="gap-completion",
                      priority=Priority.SOFT,
                      detail=f"no surviving code candidate in the "
                             f"{end - start}-byte gap; classified data")

    def _gap_candidates(self, start: int, end: int
                        ) -> list[tuple[float, int]]:
        """Code-like candidate starts within a gap, best first."""
        if start in self.noreturn_fall_sites:
            # The gap is the continuation of a call to a proven-noreturn
            # function: unreachable by construction, hence data.  (Any
            # real code in it would be a branch target, and branch
            # targets are traced as anchors before gaps are scored.)
            self.note("reject-candidate", start, end,
                      source="noreturn-continuation",
                      detail=f"gap at {start:#x} is the continuation "
                             f"of a call to a proven-noreturn function; "
                             f"unreachable, no candidates scored")
            _GAP_CANDIDATES.inc(outcome="noreturn-continuation")
            return []
        ranked = []
        vetoed = below = unclean = 0
        recording = self.provenance is not None
        for offset in self._gap_candidate_offsets(start, end):
            if not self.superset.is_valid(offset):
                continue
            if self.behavior_scores is not None and \
                    self.behavior_scores[offset] <= \
                    self.config.behavior_veto:
                vetoed += 1
                if recording:
                    self.note("reject-candidate", offset, offset + 1,
                              source="behavior-veto",
                              detail=f"behavioral score "
                                     f"{float(self.behavior_scores[offset]):.2f}"
                                     f" <= veto floor "
                                     f"{self.config.behavior_veto:.2f}",
                              score=float(self.behavior_scores[offset]))
                continue   # behavioral veto: behaves like data
            score = float(self.scores[offset])
            score += 0.5 * prologue_score(self.superset, offset)
            if score <= self.config.code_threshold:
                below += 1
                if recording:
                    self.note("reject-candidate", offset, offset + 1,
                              source="gap-score",
                              detail=f"gap-score {score:.2f} <= "
                                     f"threshold "
                                     f"{self.config.code_threshold:.2f}",
                              score=score)
                continue
            if not self._chain_terminates_cleanly(offset):
                unclean += 1
                if recording:
                    self.note("reject-candidate", offset, offset + 1,
                              source="chain-termination",
                              detail=f"refuted SOFT trace seeded at "
                                     f"{offset:#x} (gap-score "
                                     f"{score:.2f}): its decode chain "
                                     f"does not terminate cleanly (runs "
                                     f"into padding, data, or a "
                                     f"mid-instruction join) -- strict "
                                     f"soft-trace gate",
                              score=score)
                continue
            ranked.append((score, offset))
        if vetoed:
            _GAP_CANDIDATES.inc(vetoed, outcome="behavior-veto")
        if below:
            _GAP_CANDIDATES.inc(below, outcome="below-threshold")
        if unclean:
            _GAP_CANDIDATES.inc(unclean, outcome="unclean-termination")
        if ranked:
            _GAP_CANDIDATES.inc(len(ranked), outcome="ranked")
        return sorted(ranked, reverse=True)

    def _chain_terminates_cleanly(self, offset: int, *,
                                  limit: int | None = None) -> bool:
        """Hard gate for soft gap candidates.

        Real leftover code (jump-table case blocks, indirect-only
        functions) either ends at a control-flow terminator or flows
        into confirmed code *at an instruction boundary*.  Data that
        happens to decode runs into padding traps, undecodable bytes,
        classified data, or mid-instruction joins instead.
        """
        if limit is None:
            limit = self.config.chain_limit
        state = self.state
        current = offset
        for _ in range(limit):
            instruction = self.superset.at(current)
            if instruction is None:
                return False
            if instruction.flow in (FlowKind.TRAP, FlowKind.HALT):
                return False     # real code does not fall into padding
            for i in range(current, min(instruction.end, state.size)):
                if state.is_data(i) and \
                        state.priorities[i] > Priority.SOFT:
                    return False
                if i > current and state.is_code(i):
                    # Overlaps confirmed code mid-instruction: the
                    # "join" would straddle an existing instruction
                    # start, which real leftover code never does.
                    return False
            if not instruction.falls_through:
                return True
            nxt = instruction.end
            if nxt >= state.size:
                return False
            if state.is_code_start(nxt):
                return True
            if state.is_code(nxt):
                return False     # joins confirmed code mid-instruction
            current = nxt
        return True

    def _gap_candidate_offsets(self, start: int, end: int) -> list[int]:
        text = self.superset.text
        offsets = set()
        cursor = start
        while cursor < end and text[cursor] in _PADDING_BYTES:
            cursor += 1
        # Every offset in the first bytes after leading padding: gaps
        # usually begin exactly at a real instruction, but misdecoded
        # neighbors can shift the boundary by a few bytes.
        offsets.update(range(start, min(end, start + 2)))
        offsets.update(range(cursor, min(end, cursor + 12)))
        alignment = self.config.alignment
        aligned = start + (-start % alignment)
        for candidate in range(aligned, min(end, aligned + 4 * alignment),
                               alignment):
            offsets.add(candidate)
        return sorted(o for o in offsets if start <= o < end)

    # ------------------------------------------------------------------
    # Residue realignment
    # ------------------------------------------------------------------

    def realign_residues(self, *, max_size: int | None = None) -> None:
        """Convert tiny soft-data residues that tile cleanly into code.

        A wrong early decision sometimes leaves a short unclaimed
        residue directly in front of confirmed code (x86 decoding
        self-synchronizes after a few bytes).  When the residue decodes
        as a clean instruction run ending exactly at the following
        confirmed instruction, the correct fix is to accept it as code.
        """
        if max_size is None:
            max_size = self.config.realign_max_size
        text = self.superset.text
        self.pass_id = "realign"
        for start, end in self.state.data_regions():
            if end - start > max_size:
                continue
            if end >= self.state.size or not self.state.is_code_start(end):
                continue
            if all(text[i] in _PADDING_BYTES for i in range(start, end)):
                # A pure padding run in front of a function entry is
                # data by convention; int3/nop bytes always tile
                # cleanly, so without this guard they'd be "realigned"
                # into code.
                self.note("skip-realign", start, end,
                          source="padding-guard",
                          detail=f"residue {start:#x}-{end:#x} is a pure "
                                 f"int3/nop/zero padding run kept as "
                                 f"data (padding-as-code guard); "
                                 f"padding always tiles cleanly, so "
                                 f"realignment would misclassify it")
                continue
            if any(fall <= start < fall + 32
                   for fall in self.noreturn_fall_sites):
                # Unreachable continuation of a noreturn call.
                self.note("skip-realign", start, end,
                          source="noreturn-continuation",
                          detail=f"residue {start:#x}-{end:#x} sits in "
                                 f"the unreachable continuation of a "
                                 f"proven-noreturn call")
                continue
            if any(self.state.priorities[i] > Priority.SOFT
                   for i in range(start, end)):
                self.note("skip-realign", start, end,
                          source="priority-guard",
                          detail=f"residue {start:#x}-{end:#x} carries "
                                 f"stronger-than-SOFT data evidence; "
                                 f"realignment only overrides soft "
                                 f"decisions")
                continue
            run = self._clean_tile(start, end)
            if run is None:
                continue
            for offset, length in run:
                self.state.mark_instruction(offset, length, Priority.SOFT)
            self.log.append(f"realigned residue {start:#x}-{end:#x}")
            self.note("realign", start, end, source="clean-tile",
                      priority=Priority.SOFT,
                      detail=f"residue {start:#x}-{end:#x} decodes as "
                             f"{len(run)} instruction(s) tiling exactly "
                             f"to the confirmed code at {end:#x}; "
                             f"accepted as code")

    def priority_of_region(self, start: int, end: int) -> int:
        return max((self.state.priorities[i] for i in range(start, end)),
                   default=0)

    def _clean_tile(self, start: int, end: int
                    ) -> list[tuple[int, int]] | None:
        """Instructions exactly tiling [start, end), or None."""
        run = []
        cursor = start
        while cursor < end:
            instruction = self.superset.at(cursor)
            if instruction is None or instruction.end > end:
                return None
            if not instruction.falls_through and instruction.end != end:
                return None
            run.append((cursor, instruction.length))
            cursor = instruction.end
        return run if cursor == end else None
