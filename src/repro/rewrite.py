"""Static binary rewriting on top of the disassembler.

Accurate disassembly is the prerequisite for binary instrumentation --
the application that motivates the paper.  This module closes the loop:
given a disassembled binary it produces a *rewritten* binary in which

* every instruction is relocated (direct branches re-encoded as near
  forms, RIP-relative displacements re-anchored),
* jump/pointer tables are moved and their entries retargeted,
* data and padding are preserved,
* and, optionally, every function entry is instrumented with a
  profiling counter (``inc qword [rip -> counter]``).

Correctness is checkable end to end: the rewritten binary can be
disassembled again and *executed* in :mod:`repro.emulator`, where it
must behave identically to the original (same return value, same path)
while the counters record function call counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .binary.container import Binary, Section
from .core.disassembler import Disassembly
from .core.evidence import Priority
from .isa.decoder import try_decode
from .isa.instruction import Instruction
from .isa.opcodes import FlowKind
from .isa.operands import ImmOp, MemOp

#: Where the counters section of an instrumented binary is placed.
COUNTERS_BASE = 0x400000

#: The near-branch encodings used for all re-emitted direct branches.
_NEAR_JMP_LENGTH = 5     # e9 rel32
_NEAR_JCC_LENGTH = 6     # 0f 8x rel32
_NEAR_CALL_LENGTH = 5    # e8 rel32

#: inc qword [rip+disp32] -- the entry-counter instrumentation.
_COUNTER_STUB_LENGTH = 7   # 48 ff 05 disp32


class RewriteError(RuntimeError):
    """The binary cannot be rewritten from this disassembly."""


def _align16(value: int) -> int:
    return (value + 15) & ~15


@dataclass
class RewrittenBinary:
    """Result of a rewrite: the new binary plus the address maps."""

    binary: Binary
    address_map: dict[int, int]          # old instruction start -> new
    counters: dict[int, int]             # function entry -> counter addr

    @property
    def text(self) -> bytes:
        return self.binary.text.data


@dataclass
class _Piece:
    """One relocatable unit of the original text section."""

    kind: str                 # "insn" | "data" | "counter"
    old_offset: int
    old_length: int
    new_offset: int = 0
    new_length: int = 0
    instruction: Instruction | None = None
    table_entry_size: int = 0          # for retargeted table pieces
    counter_address: int = 0
    #: Copy the piece's bytes untouched (speculative-code pinning).
    verbatim: bool = False


class Rewriter:
    """Relocates one disassembled text section."""

    def __init__(self, disassembly: Disassembly, binary: Binary, *,
                 instrument_entries: bool = True) -> None:
        self.disassembly = disassembly
        self.binary = binary
        self.instrument = instrument_entries
        self.result = disassembly.result
        self.text = binary.text.data
        # Tables we know how to retarget: statistically detected plus
        # resolved-at-trace-time ones, keyed by start offset.
        self.tables: dict[int, tuple[int, int]] = {}
        for table in disassembly.tables:
            self.tables[table.start] = (table.entry_size, table.end)
        for table in (disassembly.resolved_tables or []):
            if table.in_text:
                self.tables.setdefault(table.address,
                                       (table.entry_size, table.end))
        self.pinned = self._speculative_code_ranges()

    # ------------------------------------------------------------------

    def _speculative_code_ranges(self) -> list[tuple[int, int]]:
        """Ranges of SOFT-priority code to be copied byte-for-byte.

        Gap completion and residue realignment accept code
        *speculatively*: no trace from an anchor ever reached those
        bytes.  When the speculation is wrong, the bytes are really
        data -- a string such as ``"warning"`` decodes as short
        conditional branches (``0x77 'w'``, ``0x72 'r'``) -- and
        re-encoding those "branches" as near forms corrupts it for
        whatever reads it through a leaked pointer.  Verbatim emission
        preserves behavior both ways: misread data survives exactly,
        and real-but-unreachable code keeps the bytes it had.

        A range is only pinned when no accepted instruction *outside*
        it branches into it and it contains no identified function
        entry, so everything the rewriter must retarget stays on the
        re-encoding path.  Requires the fact engine's region facts;
        under the legacy worklist engine (no facts) nothing is pinned.
        """
        facts = getattr(self.disassembly, "facts", None)
        if facts is None:
            return []
        candidates = [f for f in facts
                      if f.label == "code"
                      and f.priority <= Priority.SOFT
                      and facts.classifier_of(f.start, f.end) is f]
        if not candidates:
            return []
        edges = []
        for offset in self.result.instructions:
            instruction = try_decode(self.text, offset)
            if instruction is not None and \
                    instruction.branch_target is not None:
                edges.append((offset, instruction.branch_target))
        entries = self.result.function_entries
        ranges = []
        for fact in candidates:
            if any(fact.start <= t < fact.end for o, t in edges
                   if not fact.start <= o < fact.end):
                continue
            if any(fact.start <= e < fact.end for e in entries):
                continue
            ranges.append((fact.start, fact.end))
        return sorted(ranges)

    def _is_pinned(self, offset: int) -> bool:
        import bisect
        index = bisect.bisect_right(self.pinned, (offset, len(self.text))) - 1
        return index >= 0 and \
            self.pinned[index][0] <= offset < self.pinned[index][1]

    def rewrite(self) -> RewrittenBinary:
        pieces = self._collect_pieces()
        self._layout(pieces)
        address_map = {p.old_offset: p.new_offset for p in pieces
                       if p.kind == "insn"}
        data_map = {}
        for p in pieces:
            if p.kind != "counter":
                data_map.setdefault(p.old_offset, p.new_offset)
        counters = {p.old_offset: p.counter_address for p in pieces
                    if p.kind == "counter"}
        # Branch targets at instrumented entries must hit the counter
        # stub first.
        for p in pieces:
            if p.kind == "counter":
                address_map[p.old_offset] = p.new_offset
        map_target = self._build_map(pieces, address_map, data_map)
        blob = self._emit(pieces, map_target)
        sections = [Section(".text", 0, blob, executable=True)]
        sections += [self._patch_section(s, map_target)
                     for s in self.binary.sections if not s.executable]
        if counters:
            size = 8 * len(counters)
            sections.append(Section(".counters", COUNTERS_BASE,
                                    bytes(size)))
        new_entry = address_map.get(self.binary.entry, 0)
        rewritten = Binary(sections=sections, entry=new_entry)
        return RewrittenBinary(binary=rewritten, address_map=address_map,
                               counters=counters)

    # ------------------------------------------------------------------

    def _collect_pieces(self) -> list[_Piece]:
        pieces: list[_Piece] = []
        instructions = self.result.instructions
        entries = self.result.function_entries
        data_regions = dict(self.result.data_regions)
        counter_index = 0

        offset = 0
        size = len(self.text)
        while offset < size:
            if offset in entries and self.instrument:
                pieces.append(_Piece(
                    kind="counter", old_offset=offset, old_length=0,
                    new_length=_COUNTER_STUB_LENGTH,
                    counter_address=COUNTERS_BASE + 8 * counter_index))
                counter_index += 1
            if offset in instructions:
                instruction = try_decode(self.text, offset)
                if instruction is None:
                    raise RewriteError(
                        f"accepted instruction at {offset:#x} "
                        f"does not decode")
                pinned = self._is_pinned(offset)
                pieces.append(_Piece(
                    kind="insn", old_offset=offset,
                    old_length=instruction.length,
                    new_length=(instruction.length if pinned
                                else self._new_length(instruction)),
                    instruction=instruction, verbatim=pinned))
                offset = instruction.end
                continue
            if offset in data_regions:
                end = data_regions[offset]
                for start, stop, entry_size in self._split_region(offset,
                                                                  end):
                    pieces.append(_Piece(
                        kind="data", old_offset=start,
                        old_length=stop - start, new_length=stop - start,
                        table_entry_size=entry_size))
                offset = end
                continue
            # Unclassified byte (shouldn't happen): copy verbatim.
            pieces.append(_Piece(kind="data", old_offset=offset,
                                 old_length=1, new_length=1))
            offset += 1
        return pieces

    def _split_region(self, start: int, end: int
                      ) -> list[tuple[int, int, int]]:
        """Split a data region at known table boundaries.

        Alignment padding often precedes an inline table inside one
        maximal data region; entry retargeting must begin exactly at the
        table's first entry.
        """
        marks = sorted(t for t in self.tables
                       if start <= t < end)
        segments: list[tuple[int, int, int]] = []
        cursor = start
        for table_start in marks:
            if table_start > cursor:
                segments.append((cursor, table_start, 0))
                cursor = table_start
            entry_size, table_end = self.tables[table_start]
            table_end = min(table_end, end)
            if table_end > cursor:
                segments.append((cursor, table_end, entry_size))
                cursor = table_end
        if cursor < end:
            segments.append((cursor, end, 0))
        return segments

    def _new_length(self, instruction: Instruction) -> int:
        """Re-emitted size: branches become near forms, rest verbatim."""
        target = instruction.branch_target
        if target is None:
            return instruction.length
        if not 0 <= target < len(self.text):
            # A misclassified byte sequence branching nowhere sensible;
            # copied verbatim (it is unreachable in practice).
            return instruction.length
        if instruction.flow is FlowKind.CJUMP:
            if instruction.mnemonic.startswith("j."):
                return _NEAR_JCC_LENGTH
            return instruction.length        # loop/jrcxz: keep rel8
        if instruction.flow is FlowKind.JUMP:
            return _NEAR_JMP_LENGTH
        if instruction.flow is FlowKind.CALL:
            return _NEAR_CALL_LENGTH
        return instruction.length

    def _layout(self, pieces: list[_Piece]) -> None:
        """Pinned-data layout: data never moves, code moves en bloc.

        Programs may *leak* data addresses into observable state (return
        a pointer to a string, compare pointers numerically); relocating
        data then changes behavior even when every reference is
        faithfully retargeted.  So data, padding, and speculative
        verbatim code keep their exact original offsets, while
        re-encoded instructions and counter stubs are laid out
        sequentially in an appendix after the original image.  The
        holes left behind by moved code are filled with ``0xCC`` at
        emission (stray control flow into them traps instead of
        executing stale bytes).
        """
        cursor = _align16(len(self.text))
        for piece in pieces:
            if piece.kind == "data" or piece.verbatim:
                piece.new_offset = piece.old_offset
            else:
                piece.new_offset = cursor
                cursor += piece.new_length
        for section in self.binary.sections:
            if not section.executable and section.addr < cursor and \
                    section.addr >= len(self.text):
                raise RewriteError(
                    f"code appendix (ends {cursor:#x}) would overlap "
                    f"section {section.name} at {section.addr:#x}")

    # ------------------------------------------------------------------

    @staticmethod
    def _build_map(pieces: list[_Piece], address_map: dict[int, int],
                   data_map: dict[int, int]):
        """The old-offset -> new-offset mapping used everywhere.

        Exact instruction starts map through ``address_map`` (with
        counter-stub redirects); other offsets fall back to a range map
        (data pieces keep their length, so intra-piece offsets are
        preserved).
        """
        import bisect

        spans = sorted((p.old_offset, p.old_offset + p.old_length,
                        p.new_offset)
                       for p in pieces if p.kind != "counter")
        starts = [s[0] for s in spans]

        def map_target(old: int) -> int:
            if old in address_map:
                return address_map[old]
            if old in data_map:
                return data_map[old]
            index = bisect.bisect_right(starts, old) - 1
            if index >= 0:
                old_start, old_end, new_start = spans[index]
                if old_start <= old < old_end:
                    return new_start + (old - old_start)
            raise RewriteError(f"unmapped target {old:#x}")

        return map_target

    def _patch_section(self, section: Section, map_target) -> Section:
        """Retarget out-of-text dispatch tables living in this section.

        Out-of-text jump tables hold self-relative entries and pointer
        tables hold absolute text addresses; both must follow the moved
        code.
        """
        tables = [t for t in (self.disassembly.resolved_tables or [])
                  if not t.in_text
                  and section.addr <= t.address < section.end]
        if not tables:
            return section
        data = bytearray(section.data)
        for table in tables:
            base = table.address - section.addr
            for i in range(len(table.targets)):
                position = base + i * table.entry_size
                if table.entry_size == 8:
                    old = int.from_bytes(data[position:position + 8],
                                         "little")
                    if self._inside_text(old):
                        data[position:position + 8] = map_target(
                            old).to_bytes(8, "little")
                else:
                    old_value = int.from_bytes(
                        data[position:position + 4], "little",
                        signed=True)
                    old_target = table.address + old_value
                    if self._inside_text(old_target):
                        new_value = map_target(old_target) - table.address
                        data[position:position + 4] = (
                            new_value & 0xFFFFFFFF).to_bytes(4, "little")
        return Section(section.name, section.addr, bytes(data),
                       section.executable)

    def _emit(self, pieces: list[_Piece], map_target) -> bytes:
        size = max((p.new_offset + p.new_length for p in pieces),
                   default=0)
        out = bytearray(b"\xcc" * size)
        for piece in pieces:
            if piece.kind == "counter":
                disp = piece.counter_address - (piece.new_offset
                                                + _COUNTER_STUB_LENGTH)
                blob = b"\x48\xff\x05" + (disp & 0xFFFFFFFF).to_bytes(
                    4, "little")
            elif piece.kind == "insn":
                blob = self._emit_instruction(piece, map_target)
            else:
                blob = self._emit_data(piece, map_target)
            if len(blob) != piece.new_length:
                raise RewriteError(
                    f"layout mismatch at old {piece.old_offset:#x}")
            out[piece.new_offset:piece.new_offset + len(blob)] = blob
        return bytes(out)

    def _emit_instruction(self, piece: _Piece, map_target) -> bytes:
        instruction = piece.instruction
        if piece.verbatim:
            return instruction.raw
        target = instruction.branch_target
        if target is not None:
            return self._emit_branch(piece, map_target)

        raw = bytearray(instruction.raw)
        rip_operand = next((o for o in instruction.operands
                            if isinstance(o, MemOp) and o.rip_relative),
                           None)
        if rip_operand is not None:
            self._patch_rip(raw, piece, rip_operand, map_target)
        self._patch_absolute(raw, instruction, map_target)
        return bytes(raw)

    def _emit_branch(self, piece: _Piece, map_target) -> bytes:
        instruction = piece.instruction
        if not 0 <= instruction.branch_target < len(self.text):
            return instruction.raw
        new_target = map_target(instruction.branch_target)
        end = piece.new_offset + piece.new_length
        delta = (new_target - end) & 0xFFFFFFFF

        if instruction.flow is FlowKind.CALL:
            return b"\xe8" + delta.to_bytes(4, "little")
        if instruction.flow is FlowKind.JUMP:
            return b"\xe9" + delta.to_bytes(4, "little")
        # Conditional branches.
        if instruction.mnemonic.startswith("j."):
            cc = int(instruction.mnemonic.split(".")[1])
            return bytes([0x0F, 0x80 | cc]) + delta.to_bytes(4, "little")
        # loop/loope/loopne/jrcxz keep their rel8 form; the target must
        # stay in range after relocation.
        short_delta = new_target - end
        if not -128 <= short_delta <= 127:
            raise RewriteError(
                f"rel8-only branch at {piece.old_offset:#x} "
                f"out of range after relocation")
        return instruction.raw[:-1] + (short_delta & 0xFF).to_bytes(
            1, "little")

    def _patch_rip(self, raw: bytearray, piece: _Piece,
                   operand: MemOp, map_target) -> None:
        """Re-anchor a RIP-relative displacement."""
        instruction = piece.instruction
        imm_bytes = sum(o.width // 8 for o in instruction.operands
                        if isinstance(o, ImmOp))
        disp_position = instruction.length - imm_bytes - 4
        old_target = operand.target
        if self._inside_text(old_target):
            new_target = map_target(old_target)
        else:
            new_target = old_target          # other sections stay put
        new_end = piece.new_offset + piece.new_length
        new_disp = (new_target - new_end) & 0xFFFFFFFF
        raw[disp_position:disp_position + 4] = new_disp.to_bytes(
            4, "little")

    def _patch_absolute(self, raw: bytearray, instruction: Instruction,
                        map_target) -> None:
        """Retarget absolute disp32 references into the text section
        (jump-table dispatch, pointer-table loads)."""
        for operand in instruction.operands:
            if not isinstance(operand, MemOp) or operand.rip_relative \
                    or operand.base is not None:
                continue
            if not self._inside_text(operand.disp):
                continue
            new_disp = map_target(operand.disp)
            # Encoding layout is modrm, sib, disp32, imm: the disp field
            # sits immediately before any immediate bytes.
            imm_bytes = sum(o.width // 8 for o in instruction.operands
                            if isinstance(o, ImmOp))
            position = instruction.length - imm_bytes - 4
            raw[position:position + 4] = (new_disp & 0xFFFFFFFF).to_bytes(
                4, "little")

    def _emit_data(self, piece: _Piece, map_target) -> bytes:
        blob = self.text[piece.old_offset:piece.old_offset
                         + piece.old_length]
        if piece.table_entry_size == 8:
            return self._retarget_abs64(blob, map_target)
        if piece.table_entry_size == 4:
            return self._retarget_rel32(piece, blob, map_target)
        return blob

    def _retarget_abs64(self, blob: bytes, map_target) -> bytes:
        out = bytearray()
        for i in range(0, len(blob) - len(blob) % 8, 8):
            value = int.from_bytes(blob[i:i + 8], "little")
            if self._inside_text(value):
                value = map_target(value)
            out += value.to_bytes(8, "little")
        out += blob[len(out):]
        return bytes(out)

    def _retarget_rel32(self, piece: _Piece, blob: bytes,
                        map_target) -> bytes:
        out = bytearray()
        for i in range(0, len(blob) - len(blob) % 4, 4):
            value = int.from_bytes(blob[i:i + 4], "little", signed=True)
            old_target = piece.old_offset + value
            if self._inside_text(old_target):
                new_value = map_target(old_target) - piece.new_offset
            else:
                new_value = value
            out += (new_value & 0xFFFFFFFF).to_bytes(4, "little")
        out += blob[len(out):]
        return bytes(out)

    def _inside_text(self, address: int | None) -> bool:
        return address is not None and 0 <= address < len(self.text)


def rewrite_binary(disassembly: Disassembly, binary: Binary, *,
                   instrument_entries: bool = True) -> RewrittenBinary:
    """Relocate (and optionally instrument) a disassembled binary."""
    return Rewriter(disassembly, binary,
                    instrument_entries=instrument_entries).rewrite()
