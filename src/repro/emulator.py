"""A small x86-64 emulator for dynamic validation of disassembly.

Static disassembly claims a set of instruction starts; actually
*executing* the binary produces ground truth no static tool can argue
with.  The emulator interprets the subset of x86-64 the synthetic
compiler emits (moves, ALU, flags, branches, calls through registers
and tables) and records every offset it executes, enabling the dynamic
cross-check::

    executed offsets  ⊆  ground-truth instruction starts   (generator ok)
    executed offsets  ⊆  predicted instruction starts      (tool recall)

Values are deterministic: uninitialized memory reads produce zero, the
arguments of the entry function are fixed, so a run is reproducible.

The emulator is deliberately strict: an instruction outside the
supported subset raises :class:`EmulationError` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .binary.container import Binary
from .binary.image import MemoryImage
from .binary.loader import TestCase
from .isa.decoder import try_decode
from .isa.instruction import Instruction
from .isa.operands import ImmOp, MemOp, RegOp, RelOp
from .isa.registers import (ARGUMENT_REGISTERS, RAX, RBP, RCX, RDX, RSP)

MASK64 = (1 << 64) - 1

#: Initial stack pointer (well above any section).
STACK_TOP = 0x7FF0_0000

#: Return address sentinel: a ``ret`` to this address ends the run.
EXIT_SENTINEL = 0xDEAD_0000


class EmulationError(RuntimeError):
    """Unsupported instruction or invalid machine state."""


@dataclass
class Flags:
    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False
    pf: bool = False

    def condition(self, cc: int) -> bool:
        if cc == 0:
            return self.of
        if cc == 1:
            return not self.of
        if cc == 2:
            return self.cf
        if cc == 3:
            return not self.cf
        if cc == 4:
            return self.zf
        if cc == 5:
            return not self.zf
        if cc == 6:
            return self.cf or self.zf
        if cc == 7:
            return not (self.cf or self.zf)
        if cc == 8:
            return self.sf
        if cc == 9:
            return not self.sf
        if cc == 10:
            return self.pf
        if cc == 11:
            return not self.pf
        if cc == 12:
            return self.sf != self.of
        if cc == 13:
            return self.sf == self.of
        if cc == 14:
            return self.zf or (self.sf != self.of)
        if cc == 15:
            return not self.zf and (self.sf == self.of)
        raise EmulationError(f"bad condition code {cc}")


class Memory:
    """Sections as backing store, with a sparse write overlay.

    Reads of unmapped, unwritten addresses yield zero bytes, which keeps
    runs deterministic without modeling an OS.
    """

    def __init__(self, image: MemoryImage) -> None:
        self._image = image
        self._overlay: dict[int, int] = {}

    def read(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            a = addr + i
            if a in self._overlay:
                byte = self._overlay[a]
            else:
                raw = self._image.read(a, 1)
                byte = raw[0] if raw else 0
            value |= byte << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self._overlay[addr + i] = (value >> (8 * i)) & 0xFF


@dataclass
class RunResult:
    """Outcome of one emulation run."""

    executed: list[int]                 # offsets in execution order
    stop_reason: str                    # "exit" | "halt" | "trap" | ...
    steps: int
    return_value: int

    @property
    def executed_set(self) -> set[int]:
        return set(self.executed)


class Emulator:
    """Interprets the generated x86-64 subset over a memory image."""

    def __init__(self, target: Binary | TestCase | bytes) -> None:
        if isinstance(target, TestCase):
            target = target.binary
        if isinstance(target, (bytes, bytearray)):
            self.image = MemoryImage.from_text(bytes(target))
            self.text = bytes(target)
        else:
            self.image = MemoryImage.from_binary(target)
            self.text = target.text.data
        self.memory = Memory(self.image)
        self.regs = [0] * 16
        self.flags = Flags()
        self.rip = 0

    # ------------------------------------------------------------------
    # Register/operand access
    # ------------------------------------------------------------------

    def read_reg(self, operand: RegOp) -> int:
        register = operand.register
        value = self.regs[register.family]
        if register.high_byte:
            return (value >> 8) & 0xFF
        if register.width == 64:
            return value
        return value & ((1 << register.width) - 1)

    def write_reg(self, operand: RegOp, value: int) -> None:
        register = operand.register
        family = register.family
        if register.high_byte:
            self.regs[family] = (self.regs[family] & ~0xFF00) \
                | ((value & 0xFF) << 8)
        elif register.width == 64:
            self.regs[family] = value & MASK64
        elif register.width == 32:
            # 32-bit writes zero-extend, per the architecture.
            self.regs[family] = value & 0xFFFFFFFF
        else:
            mask = (1 << register.width) - 1
            self.regs[family] = (self.regs[family] & ~mask) \
                | (value & mask)

    def address_of(self, operand: MemOp) -> int:
        if operand.rip_relative:
            if operand.target is None:
                raise EmulationError("unresolved rip-relative operand")
            return operand.target
        addr = operand.disp
        if operand.base is not None:
            addr += self.regs[operand.base.family]
        if operand.index is not None:
            addr += self.regs[operand.index.family] * operand.scale
        return addr & MASK64

    def read_operand(self, operand, width: int) -> int:
        if isinstance(operand, RegOp):
            return self.read_reg(operand)
        if isinstance(operand, ImmOp):
            return operand.value & ((1 << width) - 1)
        if isinstance(operand, MemOp):
            return self.memory.read(self.address_of(operand), width // 8)
        raise EmulationError(f"cannot read operand {operand}")

    def write_operand(self, operand, value: int, width: int) -> None:
        if isinstance(operand, RegOp):
            self.write_reg(operand, value)
            return
        if isinstance(operand, MemOp):
            self.memory.write(self.address_of(operand), value, width // 8)
            return
        raise EmulationError(f"cannot write operand {operand}")

    @staticmethod
    def _width_of(instruction: Instruction) -> int:
        for operand in instruction.operands:
            if isinstance(operand, RegOp):
                return operand.register.width
            if isinstance(operand, MemOp) and operand.width:
                return operand.width
        return 64

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------

    def push(self, value: int) -> None:
        self.regs[RSP] = (self.regs[RSP] - 8) & MASK64
        self.memory.write(self.regs[RSP], value, 8)

    def pop(self) -> int:
        value = self.memory.read(self.regs[RSP], 8)
        self.regs[RSP] = (self.regs[RSP] + 8) & MASK64
        return value

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------

    def _set_result_flags(self, result: int, width: int) -> None:
        mask = (1 << width) - 1
        result &= mask
        self.flags.zf = result == 0
        self.flags.sf = bool(result >> (width - 1))
        self.flags.pf = bin(result & 0xFF).count("1") % 2 == 0

    def _flags_add(self, a: int, b: int, width: int) -> int:
        mask = (1 << width) - 1
        a &= mask
        b &= mask
        result = a + b
        self.flags.cf = result > mask
        result &= mask
        sign = 1 << (width - 1)
        self.flags.of = bool((~(a ^ b) & (a ^ result)) & sign)
        self._set_result_flags(result, width)
        return result

    def _flags_sub(self, a: int, b: int, width: int) -> int:
        mask = (1 << width) - 1
        a &= mask
        b &= mask
        result = (a - b) & mask
        self.flags.cf = b > a
        sign = 1 << (width - 1)
        self.flags.of = bool(((a ^ b) & (a ^ result)) & sign)
        self._set_result_flags(result, width)
        return result

    def _flags_logic(self, result: int, width: int) -> int:
        result &= (1 << width) - 1
        self.flags.cf = False
        self.flags.of = False
        self._set_result_flags(result, width)
        return result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: int = 0, *, max_steps: int = 500_000,
            args: tuple[int, ...] = (3, 7, 1, 2, 5, 11)) -> RunResult:
        """Execute from ``entry`` until exit, halt or the step limit."""
        self.rip = entry
        self.regs[RSP] = STACK_TOP
        for register, value in zip(ARGUMENT_REGISTERS, args):
            self.regs[register] = value
        self.push(EXIT_SENTINEL)

        executed: list[int] = []
        steps = 0
        stop_reason = "steps"
        while steps < max_steps:
            if self.rip == EXIT_SENTINEL:
                stop_reason = "exit"
                break
            instruction = try_decode(self.text, self.rip)
            if instruction is None:
                stop_reason = "undecodable"
                break
            executed.append(self.rip)
            steps += 1
            try:
                stop = self._execute(instruction)
            except EmulationError:
                stop_reason = "unsupported"
                break
            if stop is not None:
                stop_reason = stop
                break
        return RunResult(executed=executed, stop_reason=stop_reason,
                         steps=steps, return_value=self.regs[RAX])

    def _execute(self, ins: Instruction) -> str | None:
        """Execute one instruction; returns a stop reason or None."""
        mnemonic = ins.mnemonic
        operands = ins.operands
        width = self._width_of(ins)
        next_rip = ins.end
        handled = True

        if mnemonic == "nop" or mnemonic.startswith("hint"):
            pass
        elif mnemonic == "mov":
            value = self.read_operand(operands[1], width)
            self.write_operand(operands[0], value, width)
        elif mnemonic in ("movzx", "movsx", "movsxd"):
            src = operands[1]
            src_width = (src.register.width if isinstance(src, RegOp)
                         else src.width or 32)
            value = self.read_operand(src, src_width)
            if mnemonic != "movzx":
                sign = 1 << (src_width - 1)
                if value & sign:
                    value |= MASK64 ^ ((1 << src_width) - 1)
            self.write_operand(operands[0], value,
                               operands[0].register.width)
        elif mnemonic == "lea":
            self.write_operand(operands[0], self.address_of(operands[1]),
                               operands[0].register.width)
        elif mnemonic in ("add", "adc"):
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            carry = self.flags.cf if mnemonic == "adc" else 0
            result = self._flags_add(a, b + carry, width)
            self.write_operand(operands[0], result, width)
        elif mnemonic in ("sub", "sbb"):
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            borrow = self.flags.cf if mnemonic == "sbb" else 0
            result = self._flags_sub(a, b + borrow, width)
            self.write_operand(operands[0], result, width)
        elif mnemonic == "cmp":
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            self._flags_sub(a, b, width)
        elif mnemonic in ("and", "or", "xor"):
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            result = {"and": a & b, "or": a | b, "xor": a ^ b}[mnemonic]
            result = self._flags_logic(result, width)
            self.write_operand(operands[0], result, width)
        elif mnemonic == "test":
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            self._flags_logic(a & b, width)
        elif mnemonic == "inc":
            carry = self.flags.cf
            result = self._flags_add(
                self.read_operand(operands[0], width), 1, width)
            self.flags.cf = carry     # inc preserves CF
            self.write_operand(operands[0], result, width)
        elif mnemonic == "dec":
            carry = self.flags.cf
            result = self._flags_sub(
                self.read_operand(operands[0], width), 1, width)
            self.flags.cf = carry
            self.write_operand(operands[0], result, width)
        elif mnemonic == "neg":
            result = self._flags_sub(0, self.read_operand(operands[0],
                                                          width), width)
            self.write_operand(operands[0], result, width)
        elif mnemonic == "not":
            value = self.read_operand(operands[0], width)
            self.write_operand(operands[0], ~value, width)
        elif mnemonic == "imul":
            if len(operands) == 3:
                a = self.read_operand(operands[1], width)
                b = self.read_operand(operands[2], width)
            else:
                a = self.read_operand(operands[0], width)
                b = self.read_operand(operands[1], width)
            product = _signed(a, width) * _signed(b, width)
            fits = -(1 << (width - 1)) <= product < (1 << (width - 1))
            self.flags.cf = self.flags.of = not fits
            result = product & ((1 << width) - 1)
            self._set_result_flags(result, width)
            self.write_operand(operands[0], result, width)
        elif mnemonic in ("shl", "shr", "sar"):
            a = self.read_operand(operands[0], width)
            count = (self.read_operand(operands[1], 8)
                     if len(operands) > 1 else self.regs[RCX]) & 0x3F
            if width != 64:
                count &= 0x1F
            if mnemonic == "shl":
                result = a << count
                self.flags.cf = bool(result >> width & 1) if count else \
                    self.flags.cf
            elif mnemonic == "shr":
                self.flags.cf = bool(a >> (count - 1) & 1) if count else \
                    self.flags.cf
                result = a >> count
            else:
                signed = _signed(a, width)
                self.flags.cf = bool(signed >> (count - 1) & 1) \
                    if count else self.flags.cf
                result = signed >> count
            result &= (1 << width) - 1
            if count:
                self._set_result_flags(result, width)
            self.write_operand(operands[0], result, width)
        elif mnemonic in ("rol", "ror"):
            a = self.read_operand(operands[0], width)
            count = (self.read_operand(operands[1], 8)
                     if len(operands) > 1 else self.regs[RCX]) % width
            if mnemonic == "rol":
                result = ((a << count) | (a >> (width - count))) \
                    & ((1 << width) - 1) if count else a
            else:
                result = ((a >> count) | (a << (width - count))) \
                    & ((1 << width) - 1) if count else a
            self.write_operand(operands[0], result, width)
        elif mnemonic == "xchg":
            a = self.read_operand(operands[0], width)
            b = self.read_operand(operands[1], width)
            self.write_operand(operands[0], b, width)
            self.write_operand(operands[1], a, width)
        elif mnemonic == "push":
            self.push(self.read_operand(operands[0], 64)
                      if operands else 0)
        elif mnemonic == "pop":
            self.write_operand(operands[0], self.pop(), 64)
        elif mnemonic == "leave":
            self.regs[RSP] = self.regs[RBP]
            self.regs[RBP] = self.pop()
        elif mnemonic == "cdq":
            self.regs[RDX] = (MASK64 if self.regs[RAX] & (1 << 31) else 0) \
                & 0xFFFFFFFF
        elif mnemonic == "cqo":
            self.regs[RDX] = MASK64 if self.regs[RAX] & (1 << 63) else 0
        elif mnemonic == "cwd":
            self.regs[RDX] = (self.regs[RDX] & ~0xFFFF) | (
                0xFFFF if self.regs[RAX] & 0x8000 else 0)
        elif mnemonic == "cwde":
            value = self.regs[RAX] & 0xFFFF
            if value & 0x8000:
                value |= 0xFFFF0000
            self.regs[RAX] = value
        elif mnemonic == "cdqe":
            value = self.regs[RAX] & 0xFFFFFFFF
            if value & 0x80000000:
                value |= MASK64 ^ 0xFFFFFFFF
            self.regs[RAX] = value
        elif mnemonic.startswith("set."):
            cc = int(mnemonic.split(".")[1])
            self.write_operand(operands[0],
                               1 if self.flags.condition(cc) else 0, 8)
        elif mnemonic.startswith("cmov."):
            cc = int(mnemonic.split(".")[1])
            if self.flags.condition(cc):
                value = self.read_operand(operands[1], width)
                self.write_operand(operands[0], value, width)
        elif mnemonic.startswith("j.") or mnemonic == "jmp" \
                or mnemonic == "call" or mnemonic == "ret":
            return self._execute_flow(ins)
        elif mnemonic == "hlt":
            return "halt"
        elif mnemonic == "ud2":
            return "halt"
        elif mnemonic in ("int3", "int1"):
            return "trap"
        else:
            handled = False

        if not handled:
            raise EmulationError(f"unsupported instruction: {ins}")
        self.rip = next_rip
        return None

    def _execute_flow(self, ins: Instruction) -> str | None:
        mnemonic = ins.mnemonic
        if mnemonic.startswith("j."):
            cc = int(mnemonic.split(".")[1])
            target = ins.operands[0]
            assert isinstance(target, RelOp)
            self.rip = target.target if self.flags.condition(cc) \
                else ins.end
            return None
        if mnemonic == "jmp":
            self.rip = self._flow_target(ins)
            return None
        if mnemonic == "call":
            self.push(ins.end)
            self.rip = self._flow_target(ins)
            return None
        if mnemonic == "ret":
            self.rip = self.pop()
            if ins.operands and isinstance(ins.operands[0], ImmOp):
                self.regs[RSP] = (self.regs[RSP]
                                  + ins.operands[0].value) & MASK64
            return None
        raise EmulationError(f"unsupported flow: {ins}")

    def _flow_target(self, ins: Instruction) -> int:
        operand = ins.operands[0]
        if isinstance(operand, RelOp):
            return operand.target
        if isinstance(operand, RegOp):
            return self.read_reg(operand)
        if isinstance(operand, MemOp):
            return self.memory.read(self.address_of(operand), 8)
        raise EmulationError(f"bad flow operand in {ins}")


def _signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


def validate_dynamically(case: TestCase, predicted_starts: set[int],
                         *, entries: tuple[int, ...] = (0,),
                         max_steps: int = 200_000) -> dict:
    """Run the binary and cross-check execution against predictions.

    Returns a report with the executed offsets, how many of them the
    ground truth confirms (generator sanity), and how many the predicted
    instruction set covers (dynamic recall of the disassembler).
    """
    executed: set[int] = set()
    stop_reasons = []
    for entry in entries:
        emulator = Emulator(case)
        result = emulator.run(entry, max_steps=max_steps)
        executed |= result.executed_set
        stop_reasons.append(result.stop_reason)

    truth = case.truth.instruction_starts
    return {
        "executed": executed,
        "stop_reasons": stop_reasons,
        "executed_in_truth": len(executed & truth),
        "executed_not_in_truth": sorted(executed - truth),
        "executed_predicted": len(executed & predicted_starts),
        "executed_missed": sorted(executed - predicted_starts),
    }
