"""The common output type every disassembler (ours and baselines) produces."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class DisassemblyResult:
    """What a disassembly tool claims about a text section.

    Attributes:
        tool: name of the producing tool.
        instructions: accepted instruction starts mapped to their encoded
            lengths.
        data_regions: maximal [start, end) byte ranges classified as data.
        function_entries: claimed function entry offsets (empty for tools
            that do not identify functions).
    """

    tool: str
    instructions: dict[int, int] = field(default_factory=dict)
    data_regions: list[tuple[int, int]] = field(default_factory=list)
    function_entries: set[int] = field(default_factory=set)

    @property
    def instruction_starts(self) -> set[int]:
        return set(self.instructions)

    def code_byte_offsets(self) -> set[int]:
        """Every byte offset covered by an accepted instruction."""
        covered: set[int] = set()
        for start, length in self.instructions.items():
            covered.update(range(start, start + length))
        return covered

    def data_byte_offsets(self) -> set[int]:
        covered: set[int] = set()
        for start, end in self.data_regions:
            covered.update(range(start, end))
        return covered

    def summary(self) -> str:
        return (f"{self.tool}: {len(self.instructions)} instructions, "
                f"{len(self.data_regions)} data regions, "
                f"{len(self.function_entries)} functions")

    # ------------------------------------------------------------------
    # Serialization (for CLI pipelines and caching)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "tool": self.tool,
            "instructions": [[start, length] for start, length
                             in sorted(self.instructions.items())],
            "data_regions": [list(region) for region in self.data_regions],
            "function_entries": sorted(self.function_entries),
        })

    @classmethod
    def from_json(cls, text: str) -> DisassemblyResult:
        raw = json.loads(text)
        return cls(
            tool=raw["tool"],
            instructions={start: length
                          for start, length in raw["instructions"]},
            data_regions=[tuple(region)
                          for region in raw["data_regions"]],
            function_entries=set(raw["function_entries"]),
        )
