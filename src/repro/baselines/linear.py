"""Linear-sweep disassembly (the objdump algorithm).

Decode from the section start; each decoded instruction's end is the
next decode point; undecodable bytes are skipped one at a time (objdump
prints ``(bad)``).  Linear sweep has perfect recall on code that is
byte-aligned with the sweep, but classifies every embedded data byte
that happens to decode -- jump tables, strings, literals -- as code,
and one table can additionally desynchronize the sweep into the
following real instructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa.decoder import try_decode
from ..result import DisassemblyResult

if TYPE_CHECKING:
    from ..superset.superset import Superset


def linear_sweep(text: bytes, entry: int = 0, *,
                 superset: Superset | None = None) -> DisassemblyResult:
    """Disassemble by linear sweep from offset 0.

    An already-built superset of ``text`` may be passed to reuse its
    candidate decodes (the evaluation driver shares one superset across
    all tools); results are identical either way.
    """
    decode_at = try_decode if superset is None else (
        lambda _text, offset: superset.at(offset))
    instructions: dict[int, int] = {}
    bad: list[int] = []
    offset = 0
    while offset < len(text):
        instruction = decode_at(text, offset)
        if instruction is None:
            bad.append(offset)
            offset += 1
            continue
        instructions[offset] = instruction.length
        offset = instruction.end

    return DisassemblyResult(
        tool="linear-sweep",
        instructions=instructions,
        data_regions=_runs(bad),
        function_entries=set(),
    )


def _runs(offsets: list[int]) -> list[tuple[int, int]]:
    regions = []
    start = None
    previous = None
    for offset in offsets:
        if start is None:
            start = offset
        elif offset != previous + 1:
            regions.append((start, previous + 1))
            start = offset
        previous = offset
    if start is not None:
        regions.append((start, previous + 1))
    return regions
