"""Recursive-descent disassembly (the conservative IDA core).

Follow control flow from known entry points only: fall-through, direct
jump targets, direct call targets.  On a stripped binary the only known
entry point is the program entry, so anything reachable exclusively
through indirect control flow (pointer tables, jump tables) is missed
and implicitly classified as data.  Precision is near-perfect; recall
suffers exactly where complex binaries are complex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa.opcodes import FlowKind
from ..isa.decoder import try_decode
from ..result import DisassemblyResult

if TYPE_CHECKING:
    from ..superset.superset import Superset


def recursive_descent(text: bytes, entry: int = 0,
                      extra_entries: tuple[int, ...] = (),
                      tool_name: str = "recursive-descent", *,
                      superset: Superset | None = None
                      ) -> DisassemblyResult:
    """Disassemble by recursive traversal from the entry point(s).

    An already-built superset of ``text`` may be passed to reuse its
    candidate decodes; results are identical either way.
    """
    decode_at = try_decode if superset is None else (
        lambda _text, offset: superset.at(offset))
    instructions: dict[int, int] = {}
    function_entries: set[int] = set()
    worklist = [entry, *extra_entries]
    if 0 <= entry < len(text):
        function_entries.add(entry)

    while worklist:
        offset = worklist.pop()
        if offset in instructions or not 0 <= offset < len(text):
            continue
        instruction = decode_at(text, offset)
        if instruction is None:
            continue
        instructions[offset] = instruction.length

        target = instruction.branch_target
        if target is not None and 0 <= target < len(text):
            worklist.append(target)
            if instruction.flow is FlowKind.CALL:
                function_entries.add(target)
        if instruction.falls_through:
            worklist.append(instruction.end)

    covered = set()
    for start, length in instructions.items():
        covered.update(range(start, start + length))
    data_regions = _uncovered_runs(len(text), covered)

    return DisassemblyResult(
        tool=tool_name,
        instructions=instructions,
        data_regions=data_regions,
        function_entries=function_entries,
    )


def _uncovered_runs(size: int, covered: set[int]) -> list[tuple[int, int]]:
    regions = []
    start = None
    for i in range(size):
        if i not in covered and start is None:
            start = i
        elif i in covered and start is not None:
            regions.append((start, i))
            start = None
    if start is not None:
        regions.append((start, size))
    return regions
