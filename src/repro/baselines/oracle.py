"""The ground-truth oracle: a perfect 'disassembler' for calibration.

Evaluation code uses the oracle to sanity-check metrics (it must score
a perfect 1.0) and as the reference upper bound in reports.
"""

from __future__ import annotations

from ..binary.groundtruth import GroundTruth
from ..binary.loader import TestCase
from ..isa.decoder import try_decode
from ..result import DisassemblyResult


def oracle(case: TestCase) -> DisassemblyResult:
    """Return the ground truth formatted as a tool result."""
    truth: GroundTruth = case.truth
    text = case.text
    instructions = {}
    for offset in truth.instruction_starts:
        instruction = try_decode(text, offset)
        if instruction is None:
            raise AssertionError(
                f"ground-truth instruction at {offset:#x} does not decode")
        instructions[offset] = instruction.length
    return DisassemblyResult(
        tool="oracle",
        instructions=instructions,
        data_regions=truth.data_regions(),
        function_entries=truth.function_entries,
    )
