"""Baseline disassembly algorithms the paper compares against."""

from .heuristic import heuristic_descent
from .linear import linear_sweep
from .oracle import oracle
from .probabilistic import probabilistic_disassembly
from .recursive import recursive_descent

__all__ = ["heuristic_descent", "linear_sweep", "oracle",
           "probabilistic_disassembly", "recursive_descent"]
