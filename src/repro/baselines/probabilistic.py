"""Probabilistic disassembly (a reimplementation of the Miller et al.
NDSS'19 algorithmic core).

The algorithm assigns each superset candidate a *data probability*:

1. **Invalid closure** -- candidates that must reach an undecodable
   offset through forced control flow cannot be code (probability 1).
2. **Hints** -- independent observations that an offset behaves like
   code lower its data probability multiplicatively: control-flow
   convergence (two or more direct branches landing on it), direct call
   targets, and register def-use chains along its fall-through window.
3. **Forward propagation** -- if a candidate is likely code, its forced
   successors are at least as likely.
4. **Occlusion normalization** -- candidates covering the same byte
   compete; probability mass is shared within each occlusion set.

Offsets whose final data probability falls below a threshold are
emitted as code.  Like the original, this over-approximates: it keeps
high recall but accepts data whose accidental structure produces hints,
and it does not enforce a single non-overlapping instruction tiling.
"""

from __future__ import annotations

import numpy as np

from ..analysis.defuse import analyze_chain
from ..isa.opcodes import FlowKind
from ..result import DisassemblyResult
from ..superset.superset import Superset, cached_superset

#: Hint strengths from the original paper's formulation.
HINT_CONVERGENCE = 0.9
HINT_CALL_TARGET = 0.95
HINT_DEFUSE = 0.6

DEFAULT_THRESHOLD = 0.5


def probabilistic_disassembly(text: bytes, entry: int = 0, *,
                              threshold: float = DEFAULT_THRESHOLD,
                              window: int = 6,
                              superset: Superset | None = None
                              ) -> DisassemblyResult:
    """Disassemble with hint-propagated data probabilities."""
    if superset is None:
        superset = cached_superset(text)
    size = len(text)

    dead = _invalid_closure(superset)
    p_data = np.ones(size)
    alive = [offset for offset in superset.valid_offsets
             if not dead[offset]]

    # Hint collection.
    for offset in alive:
        strength = 1.0
        convergence = len(superset.direct_predecessors.get(offset, ()))
        if convergence >= 2:
            strength *= (1 - HINT_CONVERGENCE)
        if offset in superset.direct_call_targets:
            strength *= (1 - HINT_CALL_TARGET)
        chain = superset.fallthrough_chain(offset, window)
        signals = analyze_chain(chain)
        strength *= (1 - HINT_DEFUSE) ** min(signals.defuse_pairs, 3)
        p_data[offset] = strength
    if 0 <= entry < size and not dead[entry]:
        p_data[entry] = 0.0

    # Forward propagation along forced flow (a few passes suffice).
    # Successor sets and ``dead`` are static during propagation, so the
    # (in-range, non-dead) successor lists are computed once up front.
    forced = [tuple(s for s in superset.successors(offset)
                    if s < size and not dead[s])
              for offset in alive]
    for _ in range(3):
        changed = False
        for offset, successors in zip(alive, forced):
            value = p_data[offset]
            for successor in successors:
                if p_data[successor] > value:
                    p_data[successor] = value
                    changed = True
        if not changed:
            break

    # Occlusion competition: a candidate is kept when its data
    # probability clears the threshold and no candidate covering the
    # same first byte is strictly more code-like (local winner-take-all
    # over the occlusion set).
    p_code = 1.0 - p_data
    p_code[dead] = 0.0
    instructions = superset.instructions
    accepted = {}
    for offset in alive:
        if p_data[offset] >= threshold:
            continue
        mine = p_code[offset]
        overshadowed = False
        for o in range(max(0, offset - 14), offset):
            covering = instructions[o]
            if covering is not None and not dead[o] \
                    and covering.end > offset and p_code[o] > mine:
                overshadowed = True
                break
        if overshadowed:
            continue
        accepted[offset] = instructions[offset].length

    covered = set()
    for start, length in accepted.items():
        covered.update(range(start, start + length))
    data_regions = _uncovered(size, covered)

    return DisassemblyResult(tool="probabilistic",
                             instructions=accepted,
                             data_regions=data_regions,
                             function_entries=set())


#: Flows whose successors the decoder cannot enumerate; such candidates
#: never join the closure (they are unconstrained, hence alive).
_UNCONSTRAINED = frozenset((FlowKind.IJUMP, FlowKind.ICALL,
                            FlowKind.RET, FlowKind.HALT))


def _invalid_closure(superset: Superset) -> np.ndarray:
    """True where a candidate must reach an undecodable offset.

    Fixpoint: an instruction is dead when *all* of its execution
    successors are dead (no successors => terminator, alive).  Computed
    with a reverse-dependency worklist -- when an offset dies, only its
    forced predecessors are re-examined -- so the closure costs one pass
    plus O(edges) instead of repeated full sweeps over the section.
    """
    size = len(superset)
    dead = np.zeros(size, dtype=bool)
    live_successors = [0] * size            # constrained candidates only
    predecessors: dict[int, list[int]] = {}
    worklist: list[int] = []

    def kill(offset: int) -> None:
        dead[offset] = True
        worklist.append(offset)

    for offset, instruction in enumerate(superset.instructions):
        if instruction is None:
            kill(offset)
            continue
        target = instruction.branch_target
        if target is not None and not 0 <= target < size:
            # Direct branch outside the section: treat as invalid.
            kill(offset)
            continue
        if instruction.flow in _UNCONSTRAINED:
            continue
        successors = []
        if instruction.falls_through:
            successors.append(instruction.end)
        if target is not None:
            successors.append(target)
        if not successors:
            continue
        if successors[0] >= size:
            # Fall-through off the end of the section.
            kill(offset)
            continue
        live_successors[offset] = len(successors)
        for successor in successors:
            predecessors.setdefault(successor, []).append(offset)

    while worklist:
        victim = worklist.pop()
        for offset in predecessors.get(victim, ()):
            if dead[offset]:
                continue
            live_successors[offset] -= 1
            if live_successors[offset] == 0:
                kill(offset)
    return dead


def _uncovered(size: int, covered: set[int]) -> list[tuple[int, int]]:
    regions = []
    start = None
    for i in range(size):
        if i not in covered and start is None:
            start = i
        elif i in covered and start is not None:
            regions.append((start, i))
            start = None
    if start is not None:
        regions.append((start, size))
    return regions
