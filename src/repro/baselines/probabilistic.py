"""Probabilistic disassembly (a reimplementation of the Miller et al.
NDSS'19 algorithmic core).

The algorithm assigns each superset candidate a *data probability*:

1. **Invalid closure** -- candidates that must reach an undecodable
   offset through forced control flow cannot be code (probability 1).
2. **Hints** -- independent observations that an offset behaves like
   code lower its data probability multiplicatively: control-flow
   convergence (two or more direct branches landing on it), direct call
   targets, and register def-use chains along its fall-through window.
3. **Forward propagation** -- if a candidate is likely code, its forced
   successors are at least as likely.
4. **Occlusion normalization** -- candidates covering the same byte
   compete; probability mass is shared within each occlusion set.

Offsets whose final data probability falls below a threshold are
emitted as code.  Like the original, this over-approximates: it keeps
high recall but accepts data whose accidental structure produces hints,
and it does not enforce a single non-overlapping instruction tiling.
"""

from __future__ import annotations

import numpy as np

from ..analysis.defuse import analyze_chain
from ..isa.opcodes import FlowKind
from ..result import DisassemblyResult
from ..superset.superset import Superset

#: Hint strengths from the original paper's formulation.
HINT_CONVERGENCE = 0.9
HINT_CALL_TARGET = 0.95
HINT_DEFUSE = 0.6

DEFAULT_THRESHOLD = 0.5


def probabilistic_disassembly(text: bytes, entry: int = 0, *,
                              threshold: float = DEFAULT_THRESHOLD,
                              window: int = 6,
                              superset: Superset | None = None
                              ) -> DisassemblyResult:
    """Disassemble with hint-propagated data probabilities."""
    if superset is None:
        superset = Superset.build(text)
    size = len(text)

    dead = _invalid_closure(superset)
    p_data = np.ones(size)

    # Hint collection.
    for offset in superset.valid_offsets:
        if dead[offset]:
            continue
        strength = 1.0
        convergence = len(superset.direct_predecessors.get(offset, ()))
        if convergence >= 2:
            strength *= (1 - HINT_CONVERGENCE)
        if offset in superset.direct_call_targets:
            strength *= (1 - HINT_CALL_TARGET)
        chain = superset.fallthrough_chain(offset, window)
        signals = analyze_chain(chain)
        strength *= (1 - HINT_DEFUSE) ** min(signals.defuse_pairs, 3)
        p_data[offset] = strength
    if 0 <= entry < size and not dead[entry]:
        p_data[entry] = 0.0

    # Forward propagation along forced flow (a few passes suffice).
    for _ in range(3):
        changed = False
        for offset in superset.valid_offsets:
            if dead[offset]:
                continue
            value = p_data[offset]
            for successor in superset.successors(offset):
                if successor < size and not dead[successor] \
                        and p_data[successor] > value:
                    p_data[successor] = value
                    changed = True
        if not changed:
            break

    # Occlusion competition: a candidate is kept when its data
    # probability clears the threshold and no candidate covering the
    # same first byte is strictly more code-like (local winner-take-all
    # over the occlusion set).
    p_code = 1.0 - p_data
    for offset in superset.valid_offsets:
        if dead[offset]:
            p_code[offset] = 0.0
    accepted = {}
    for offset in superset.valid_offsets:
        if dead[offset] or p_data[offset] >= threshold:
            continue
        instruction = superset.at(offset)
        lo = max(0, offset - 14)
        covering = [o for o in range(lo, offset)
                    if superset.at(o) is not None and not dead[o]
                    and superset.at(o).end > offset]
        if any(p_code[o] > p_code[offset] for o in covering):
            continue
        accepted[offset] = instruction.length

    covered = set()
    for start, length in accepted.items():
        covered.update(range(start, start + length))
    data_regions = _uncovered(size, covered)

    return DisassemblyResult(tool="probabilistic",
                             instructions=accepted,
                             data_regions=data_regions,
                             function_entries=set())


def _invalid_closure(superset: Superset) -> np.ndarray:
    """True where a candidate must reach an undecodable offset."""
    size = len(superset)
    dead = np.zeros(size, dtype=bool)
    for offset in range(size):
        if not superset.is_valid(offset):
            dead[offset] = True
    # Iterate to fixpoint: an instruction is dead when *all* of its
    # execution successors are dead (no successors => terminator, alive).
    changed = True
    passes = 0
    while changed and passes < 50:
        changed = False
        passes += 1
        for offset in range(size - 1, -1, -1):
            if dead[offset]:
                continue
            instruction = superset.at(offset)
            if instruction is None:
                continue
            successors = []
            if instruction.falls_through:
                successors.append(instruction.end)
            target = instruction.branch_target
            if target is not None and 0 <= target < size:
                successors.append(target)
            elif target is not None:
                # Direct branch outside the section: treat as invalid.
                dead[offset] = True
                changed = True
                continue
            if instruction.flow in (FlowKind.IJUMP, FlowKind.ICALL,
                                    FlowKind.RET, FlowKind.HALT):
                continue
            in_range = [s for s in successors if s < size]
            if successors and (len(in_range) < len(successors)
                               or all(dead[s] for s in in_range)):
                dead[offset] = True
                changed = True
    return dead


def _uncovered(size: int, covered: set[int]) -> list[tuple[int, int]]:
    regions = []
    start = None
    for i in range(size):
        if i not in covered and start is None:
            start = i
        elif i in covered and start is not None:
            regions.append((start, i))
            start = None
    if start is not None:
        regions.append((start, size))
    return regions
