"""Recursive descent with heuristic gap scanning (the Ghidra approach).

After the conservative pass, unexplored gaps are scanned for function
prologue idioms at aligned offsets; matches become new entry points and
the traversal repeats to a fixpoint.  This recovers many
indirect-only-reachable functions, but still misses jump-table case
blocks (the indirect jump is never resolved) and can misfire on data
that happens to look like a prologue.
"""

from __future__ import annotations

from ..analysis.idioms import PROLOGUE_THRESHOLD, prologue_score
from ..superset.superset import Superset, cached_superset
from .recursive import recursive_descent


def heuristic_descent(text: bytes, entry: int = 0, *,
                      alignment: int = 16,
                      max_rounds: int = 10):
    """Recursive descent plus prologue scanning over unexplored gaps."""
    superset = cached_superset(text)
    extra: set[int] = set()

    result = recursive_descent(text, entry, tool_name="rd-heuristic",
                               superset=superset)
    for _ in range(max_rounds):
        found = _scan_gaps(superset, result, alignment)
        new = found - extra - result.instruction_starts
        if not new:
            break
        extra |= new
        result = recursive_descent(text, entry,
                                   extra_entries=tuple(sorted(extra)),
                                   tool_name="rd-heuristic",
                                   superset=superset)
        result.function_entries |= extra
    return result


def _scan_gaps(superset: Superset, result, alignment: int) -> set[int]:
    covered = result.code_byte_offsets()
    found: set[int] = set()
    size = len(superset)
    offset = 0
    while offset < size:
        if offset in covered:
            offset += 1
            continue
        gap_start = offset
        while offset < size and offset not in covered:
            offset += 1
        gap_end = offset
        aligned = gap_start + (-gap_start % alignment)
        for candidate in range(aligned, gap_end, alignment):
            if prologue_score(superset, candidate) >= PROLOGUE_THRESHOLD:
                found.add(candidate)
    return found
