"""x86-64 opcode tables for the table-driven decoder.

Two tables are exported:

* :data:`ONE_BYTE` -- the primary opcode map (indexed by the opcode byte).
* :data:`TWO_BYTE` -- the ``0F``-escaped secondary map.

Entries are :class:`~repro.isa.opcodes.OpcodeInfo` values or ``None`` for
byte values that are invalid in 64-bit mode (these raise
``InvalidOpcodeError`` at decode time, which is itself an important
behavioral signal: real data frequently hits them, real code never does).

The table aims to mirror the true x86-64 decode surface closely enough
that *random data bytes usually decode to valid-looking instructions* --
the property that makes the code/data separation problem hard.  SIMD
opcodes are decoded structurally (prefixes, ModRM, immediates are all
parsed correctly) under generic mnemonics, since downstream analyses only
need their length and the fact that they touch no general-purpose state.
"""

from __future__ import annotations

from .opcodes import (Encoding, FlowKind, GroupEntry, ImmSize, OpcodeInfo,
                      op)

E = Encoding
I = ImmSize
F = FlowKind

#: Legacy prefix bytes (segment overrides, operand/address size, lock/rep).
LEGACY_PREFIXES = frozenset({
    0xF0, 0xF2, 0xF3,              # lock, repne, rep
    0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65,  # segment overrides
    0x66, 0x67,                    # operand-size, address-size
})

#: Maximum encoded instruction length, per the architecture.
MAX_INSTRUCTION_LENGTH = 15


def _alu_block(mnemonic: str) -> list[OpcodeInfo]:
    """The classic 6-opcode ALU block (add/or/adc/sbb/and/sub/xor/cmp)."""
    return [
        op(mnemonic, E.MR, byte_op=True),
        op(mnemonic, E.MR),
        op(mnemonic, E.RM, byte_op=True),
        op(mnemonic, E.RM),
        op(mnemonic, E.I, imm=I.B, byte_op=True),
        op(mnemonic, E.I, imm=I.Z),
    ]


_GROUP1 = tuple(GroupEntry(m) for m in
                ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"))
_GROUP2 = tuple(GroupEntry(m) if m else None for m in
                ("rol", "ror", "rcl", "rcr", "shl", "shr", None, "sar"))
_GROUP3_8 = (
    GroupEntry("test", imm=I.B), GroupEntry("test", imm=I.B),
    GroupEntry("not"), GroupEntry("neg"),
    GroupEntry("mul"), GroupEntry("imul1"),
    GroupEntry("div"), GroupEntry("idiv"),
)
_GROUP3_V = (
    GroupEntry("test", imm=I.Z), GroupEntry("test", imm=I.Z),
    GroupEntry("not"), GroupEntry("neg"),
    GroupEntry("mul"), GroupEntry("imul1"),
    GroupEntry("div"), GroupEntry("idiv"),
)
_GROUP4 = (GroupEntry("inc"), GroupEntry("dec")) + (None,) * 6
_GROUP5 = (
    GroupEntry("inc"), GroupEntry("dec"),
    GroupEntry("call", flow=F.ICALL, default_64=True), None,
    GroupEntry("jmp", flow=F.IJUMP, default_64=True), None,
    GroupEntry("push", default_64=True), None,
)
_GROUP8 = (None, None, None, None,
           GroupEntry("bt", imm=I.B), GroupEntry("bts", imm=I.B),
           GroupEntry("btr", imm=I.B), GroupEntry("btc", imm=I.B))
_GROUP11 = (GroupEntry("mov"),) + (None,) * 7
_GROUP1A = (GroupEntry("pop", default_64=True),) + (None,) * 7


def _build_one_byte() -> list[OpcodeInfo | None]:
    t: list[OpcodeInfo | None] = [None] * 256

    for base, mnemonic in ((0x00, "add"), (0x08, "or"), (0x10, "adc"),
                           (0x18, "sbb"), (0x20, "and"), (0x28, "sub"),
                           (0x30, "xor"), (0x38, "cmp")):
        for j, info in enumerate(_alu_block(mnemonic)):
            t[base + j] = info

    t[0x63] = op("movsxd", E.RM)
    t[0x68] = op("push", E.I, imm=I.Z, default_64=True)
    t[0x69] = op("imul", E.RMI, imm=I.Z)
    t[0x6A] = op("push", E.I, imm=I.B, default_64=True)
    t[0x6B] = op("imul", E.RMI, imm=I.B)
    t[0x6C] = op("insb", rare=True)
    t[0x6D] = op("insd", rare=True)
    t[0x6E] = op("outsb", rare=True)
    t[0x6F] = op("outsd", rare=True)

    for r in range(8):
        t[0x50 + r] = op("push", E.O, default_64=True)
        t[0x58 + r] = op("pop", E.O, default_64=True)

    for cc in range(16):          # jcc rel8
        t[0x70 + cc] = op(f"j.{cc}", E.D, imm=I.B, flow=F.CJUMP)

    t[0x80] = op("", E.MI, imm=I.B, byte_op=True, group=_GROUP1)
    t[0x81] = op("", E.MI, imm=I.Z, group=_GROUP1)
    t[0x83] = op("", E.MI, imm=I.B, group=_GROUP1)
    t[0x84] = op("test", E.MR, byte_op=True)
    t[0x85] = op("test", E.MR)
    t[0x86] = op("xchg", E.MR, byte_op=True)
    t[0x87] = op("xchg", E.MR)
    t[0x88] = op("mov", E.MR, byte_op=True)
    t[0x89] = op("mov", E.MR)
    t[0x8A] = op("mov", E.RM, byte_op=True)
    t[0x8B] = op("mov", E.RM)
    t[0x8C] = op("mov_sreg", E.MR, rare=True)
    t[0x8D] = op("lea", E.RM)
    t[0x8E] = op("mov_sreg", E.RM, rare=True)
    t[0x8F] = op("", E.M, group=_GROUP1A)

    t[0x90] = op("nop")
    for r in range(1, 8):
        t[0x90 + r] = op("xchg", E.O)
    t[0x98] = op("cwde")
    t[0x99] = op("cdq")
    t[0x9B] = op("fwait", rare=True)
    t[0x9C] = op("pushf", default_64=True)
    t[0x9D] = op("popf", default_64=True)
    t[0x9E] = op("sahf", rare=True)
    t[0x9F] = op("lahf", rare=True)

    # A0-A3: mov rAX <-> moffs64; the decoder special-cases the 8-byte
    # absolute address these carry in 64-bit mode.
    t[0xA0] = op("mov_moffs", byte_op=True, rare=True)
    t[0xA1] = op("mov_moffs", rare=True)
    t[0xA2] = op("mov_moffs", byte_op=True, rare=True)
    t[0xA3] = op("mov_moffs", rare=True)
    t[0xA4] = op("movs", byte_op=True)
    t[0xA5] = op("movs")
    t[0xA6] = op("cmps", byte_op=True, rare=True)
    t[0xA7] = op("cmps", rare=True)
    t[0xA8] = op("test", E.I, imm=I.B, byte_op=True)
    t[0xA9] = op("test", E.I, imm=I.Z)
    t[0xAA] = op("stos", byte_op=True)
    t[0xAB] = op("stos")
    t[0xAC] = op("lods", byte_op=True, rare=True)
    t[0xAD] = op("lods", rare=True)
    t[0xAE] = op("scas", byte_op=True, rare=True)
    t[0xAF] = op("scas", rare=True)

    for r in range(8):
        t[0xB0 + r] = op("mov", E.OI, imm=I.B, byte_op=True)
        t[0xB8 + r] = op("mov", E.OI, imm=I.V)

    t[0xC0] = op("", E.MI, imm=I.B, byte_op=True, group=_GROUP2)
    t[0xC1] = op("", E.MI, imm=I.B, group=_GROUP2)
    t[0xC2] = op("ret", E.I, imm=I.W, flow=F.RET)
    t[0xC3] = op("ret", flow=F.RET)
    t[0xC6] = op("", E.MI, imm=I.B, byte_op=True, group=_GROUP11)
    t[0xC7] = op("", E.MI, imm=I.Z, group=_GROUP11)
    t[0xC8] = op("enter", rare=True)   # imm16+imm8, special-cased
    t[0xC9] = op("leave")
    t[0xCA] = op("retf", E.I, imm=I.W, flow=F.RET, rare=True)
    t[0xCB] = op("retf", flow=F.RET, rare=True)
    t[0xCC] = op("int3", flow=F.TRAP)
    t[0xCD] = op("int", E.I, imm=I.B, rare=True)
    t[0xCF] = op("iret", flow=F.RET, rare=True)

    t[0xD0] = op("", E.M, byte_op=True, group=_GROUP2)
    t[0xD1] = op("", E.M, group=_GROUP2)
    t[0xD2] = op("", E.M, byte_op=True, group=_GROUP2)  # shift by cl
    t[0xD3] = op("", E.M, group=_GROUP2)
    t[0xD7] = op("xlat", rare=True)
    for b in range(0xD8, 0xE0):   # x87 escape block: ModRM always follows
        t[b] = op("x87", E.M, group=tuple(GroupEntry("x87") for _ in range(8)),
                  rare=True)

    t[0xE0] = op("loopne", E.D, imm=I.B, flow=F.CJUMP, rare=True)
    t[0xE1] = op("loope", E.D, imm=I.B, flow=F.CJUMP, rare=True)
    t[0xE2] = op("loop", E.D, imm=I.B, flow=F.CJUMP, rare=True)
    t[0xE3] = op("jrcxz", E.D, imm=I.B, flow=F.CJUMP, rare=True)
    t[0xE4] = op("in", E.I, imm=I.B, byte_op=True, rare=True)
    t[0xE5] = op("in", E.I, imm=I.B, rare=True)
    t[0xE6] = op("out", E.I, imm=I.B, byte_op=True, rare=True)
    t[0xE7] = op("out", E.I, imm=I.B, rare=True)
    t[0xE8] = op("call", E.D, imm=I.Z, flow=F.CALL)
    t[0xE9] = op("jmp", E.D, imm=I.Z, flow=F.JUMP)
    t[0xEB] = op("jmp", E.D, imm=I.B, flow=F.JUMP)
    t[0xEC] = op("in", byte_op=True, rare=True)
    t[0xED] = op("in", rare=True)
    t[0xEE] = op("out", byte_op=True, rare=True)
    t[0xEF] = op("out", rare=True)

    t[0xF1] = op("int1", flow=F.TRAP, rare=True)
    t[0xF4] = op("hlt", flow=F.HALT, rare=True)
    t[0xF5] = op("cmc", rare=True)
    t[0xF6] = op("", E.M, byte_op=True, group=_GROUP3_8)
    t[0xF7] = op("", E.M, group=_GROUP3_V)
    t[0xF8] = op("clc", rare=True)
    t[0xF9] = op("stc", rare=True)
    t[0xFA] = op("cli", rare=True)
    t[0xFB] = op("sti", rare=True)
    t[0xFC] = op("cld", rare=True)
    t[0xFD] = op("std", rare=True)
    t[0xFE] = op("", E.M, byte_op=True, group=_GROUP4)
    t[0xFF] = op("", E.M, group=_GROUP5)
    return t


#: Two-byte opcodes that decode as generic SIMD with ModRM, no GPR effect.
_SSE_RANGES = (
    range(0x10, 0x18), range(0x28, 0x30), range(0x50, 0x77),
    range(0x7C, 0x80), range(0xD0, 0xD7), range(0xD8, 0xF0),
    range(0xF1, 0xFF),
)
#: SIMD opcodes that additionally carry an imm8 (shuffles, compares, ...).
_SSE_IMM8 = frozenset({0x70, 0xC2, 0xC4, 0xC5, 0xC6})


def _build_two_byte() -> list[OpcodeInfo | None]:
    t: list[OpcodeInfo | None] = [None] * 256

    _g = GroupEntry
    t[0x00] = op("", E.M, rare=True, group=tuple(
        _g(m) if m else None for m in
        ("sldt", "str", "lldt", "ltr", "verr", "verw", None, None)))
    t[0x01] = op("", E.M, rare=True, group=tuple(
        _g(m) if m else None for m in
        ("sgdt", "sidt", "lgdt", "lidt", "smsw", None, "lmsw", "invlpg")))
    t[0x02] = op("lar", E.RM, rare=True)
    t[0x03] = op("lsl", E.RM, rare=True)
    t[0x05] = op("syscall")
    t[0x06] = op("clts", rare=True)
    t[0x0B] = op("ud2", flow=F.HALT)
    t[0x0D] = op("prefetch", E.M, rare=True,
                 group=tuple(_g("prefetch") for _ in range(8)))

    for b in range(0x18, 0x20):   # hint-nop space; 0F 1F /0 is long nop
        t[b] = op("hintnop", E.M,
                  group=tuple(_g("nop") for _ in range(8)))

    t[0x30] = op("wrmsr", rare=True)
    t[0x31] = op("rdtsc")
    t[0x32] = op("rdmsr", rare=True)
    t[0x33] = op("rdpmc", rare=True)
    t[0x34] = op("sysenter", rare=True)
    t[0x35] = op("sysexit", rare=True)

    for cc in range(16):
        t[0x40 + cc] = op(f"cmov.{cc}", E.RM)
        t[0x80 + cc] = op(f"j.{cc}", E.D, imm=I.Z, flow=F.CJUMP)
        t[0x90 + cc] = op(f"set.{cc}", E.M, byte_op=True,
                          group=tuple(_g(f"set.{cc}") for _ in range(8)))

    t[0x77] = op("emms", rare=True)
    t[0xA0] = op("push_sreg", default_64=True, rare=True)
    t[0xA1] = op("pop_sreg", default_64=True, rare=True)
    t[0xA2] = op("cpuid")
    t[0xA3] = op("bt", E.MR)
    t[0xA4] = op("shld", E.MR, imm=I.B)
    t[0xA5] = op("shld", E.MR)
    t[0xA8] = op("push_sreg", default_64=True, rare=True)
    t[0xA9] = op("pop_sreg", default_64=True, rare=True)
    t[0xAB] = op("bts", E.MR)
    t[0xAC] = op("shrd", E.MR, imm=I.B)
    t[0xAD] = op("shrd", E.MR)
    t[0xAE] = op("fence", E.M, rare=True,
                 group=tuple(_g("fence") for _ in range(8)))
    t[0xAF] = op("imul", E.RM)
    t[0xB0] = op("cmpxchg", E.MR, byte_op=True, rare=True)
    t[0xB1] = op("cmpxchg", E.MR, rare=True)
    t[0xB3] = op("btr", E.MR)
    t[0xB6] = op("movzx", E.RM)
    t[0xB7] = op("movzx", E.RM)
    t[0xB8] = op("popcnt", E.RM)
    t[0xBA] = op("", E.MI, imm=I.B, group=_GROUP8)
    t[0xBB] = op("btc", E.MR)
    t[0xBC] = op("bsf", E.RM)
    t[0xBD] = op("bsr", E.RM)
    t[0xBE] = op("movsx", E.RM)
    t[0xBF] = op("movsx", E.RM)
    t[0xC0] = op("xadd", E.MR, byte_op=True, rare=True)
    t[0xC1] = op("xadd", E.MR, rare=True)
    t[0xC3] = op("movnti", E.MR)
    t[0xC7] = op("", E.M, rare=True, group=tuple(
        _g(m) if m else None for m in
        (None, "cmpxchg8b", None, None, None, None, "rdrand", "rdseed")))
    for r in range(8):
        t[0xC8 + r] = op("bswap", E.O)

    for rng in _SSE_RANGES:
        for b in rng:
            if t[b] is None:
                imm = I.B if b in _SSE_IMM8 else I.NONE
                enc = E.RMI if imm is I.B else E.RM
                t[b] = op(f"simd.{b:02x}", enc, imm=imm)
    return t


ONE_BYTE: tuple[OpcodeInfo | None, ...] = tuple(_build_one_byte())
TWO_BYTE: tuple[OpcodeInfo | None, ...] = tuple(_build_two_byte())

#: Mnemonics that write the arithmetic flags.
FLAG_WRITERS = frozenset({
    "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test",
    "inc", "dec", "neg", "imul", "imul1", "mul", "div", "idiv",
    "rol", "ror", "rcl", "rcr", "shl", "shr", "sar", "shld", "shrd",
    "bt", "bts", "btr", "btc", "bsf", "bsr", "popcnt", "xadd",
    "cmpxchg", "sahf", "clc", "stc", "cmc",
})

#: Mnemonics whose behavior depends on the arithmetic flags.
FLAG_READERS = frozenset(
    {"adc", "sbb", "rcl", "rcr", "lahf", "pushf"}
    | {f"j.{cc}" for cc in range(16)}
    | {f"set.{cc}" for cc in range(16)}
    | {f"cmov.{cc}" for cc in range(16)}
)
