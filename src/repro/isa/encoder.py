"""A small x86-64 assembler.

The synthetic compiler (:mod:`repro.synth`) uses this to emit machine
code; the test suite uses it to round-trip instructions through the
decoder.  The API is a classic two-pass assembler: instruction methods
append bytes immediately, branch targets are labels, and :meth:`finish`
patches all fixups once every label is bound.

Registers are passed as hardware numbers (``repro.isa.registers.RAX``
etc.) with an explicit ``width`` keyword where it matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .registers import RSP


class _FixupKind(enum.Enum):
    REL8 = "rel8"
    REL32 = "rel32"
    ABS32 = "abs32"
    ABS64 = "abs64"
    RIP32 = "rip32"


@dataclass
class _Fixup:
    kind: _FixupKind
    pos: int          # offset of the field to patch
    label: str
    anchor: int = 0   # offset the displacement is relative to


@dataclass(frozen=True)
class Mem:
    """An assembler-side memory operand: ``[base + index*scale + disp]``.

    ``base=None, index=None`` encodes an absolute disp32 address; use
    :func:`rip` for RIP-relative label references, or ``disp_label`` for
    an absolute reference to a label (jump-table dispatch).
    """

    base: int | None = None
    index: int | None = None
    scale: int = 1
    disp: int = 0
    rip_label: str | None = None
    disp_label: str | None = None


def mem(base: int | None = None, index: int | None = None, scale: int = 1,
        disp: int = 0) -> Mem:
    return Mem(base=base, index=index, scale=scale, disp=disp)


def rip(label: str, disp: int = 0) -> Mem:
    """A RIP-relative reference to ``label``."""
    return Mem(disp=disp, rip_label=label)


_ALU_CODES = {"add": 0, "or": 1, "adc": 2, "sbb": 3,
              "and": 4, "sub": 5, "xor": 6, "cmp": 7}
_SHIFT_CODES = {"rol": 0, "ror": 1, "rcl": 2, "rcr": 3,
                "shl": 4, "shr": 5, "sar": 7}
_CONDITION_NUMBERS = {
    "o": 0, "no": 1, "b": 2, "c": 2, "ae": 3, "nc": 3, "e": 4, "z": 4,
    "ne": 5, "nz": 5, "be": 6, "a": 7, "s": 8, "ns": 9, "p": 10, "np": 11,
    "l": 12, "ge": 13, "le": 14, "g": 15,
}


class AssemblyError(ValueError):
    """Raised for unencodable requests (bad width, unbound label...)."""


class Assembler:
    """Accumulates encoded instructions and data with label fixups."""

    def __init__(self, base: int = 0) -> None:
        self.base = base
        self._code = bytearray()
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []

    # ------------------------------------------------------------------
    # Position and label management
    # ------------------------------------------------------------------

    @property
    def here(self) -> int:
        """The address that the next emitted byte will occupy."""
        return self.base + len(self._code)

    def bind(self, label: str) -> int:
        """Define ``label`` at the current position."""
        if label in self._labels:
            raise AssemblyError(f"label bound twice: {label}")
        self._labels[label] = self.here
        return self.here

    def finish(self) -> bytes:
        """Resolve all fixups and return the final byte string."""
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise AssemblyError(f"undefined label: {fixup.label}")
            target = self._labels[fixup.label]
            if fixup.kind is _FixupKind.REL8:
                delta = target - (fixup.anchor)
                if not -128 <= delta <= 127:
                    raise AssemblyError(
                        f"short branch to {fixup.label} out of range ({delta})")
                self._patch(fixup.pos, delta & 0xFF, 1)
            elif fixup.kind in (_FixupKind.REL32, _FixupKind.RIP32):
                delta = target - fixup.anchor
                self._patch(fixup.pos, delta & 0xFFFFFFFF, 4)
            elif fixup.kind is _FixupKind.ABS32:
                self._patch(fixup.pos, target & 0xFFFFFFFF, 4)
            else:
                self._patch(fixup.pos, target & (2 ** 64 - 1), 8)
        self._fixups.clear()
        return bytes(self._code)

    def _patch(self, pos: int, value: int, size: int) -> None:
        self._code[pos:pos + size] = value.to_bytes(size, "little")

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------

    def db(self, data: bytes) -> None:
        """Emit raw data bytes."""
        self._code += data

    def dd(self, value: int) -> None:
        self._code += (value & 0xFFFFFFFF).to_bytes(4, "little")

    def dq(self, value: int) -> None:
        self._code += (value & (2 ** 64 - 1)).to_bytes(8, "little")

    def dq_label(self, label: str) -> None:
        """Emit an 8-byte absolute address of ``label`` (jump tables)."""
        self._fixups.append(_Fixup(_FixupKind.ABS64, len(self._code), label))
        self._code += b"\x00" * 8

    def dd_label(self, label: str) -> None:
        """Emit a 4-byte absolute address of ``label``."""
        self._fixups.append(_Fixup(_FixupKind.ABS32, len(self._code), label))
        self._code += b"\x00" * 4

    def dd_label_rel(self, label: str, anchor_label: str) -> None:
        """Emit ``label - anchor`` as 4 bytes (PIC-style table entry)."""
        # Implemented as a REL32 fixup anchored at the anchor label; the
        # anchor must already be bound when finish() runs.
        self._fixups.append(
            _Fixup(_FixupKind.REL32, len(self._code), label,
                   anchor=self._require_label_lazy(anchor_label)))
        self._code += b"\x00" * 4

    def _require_label_lazy(self, label: str) -> int:
        if label not in self._labels:
            raise AssemblyError(
                f"relative-entry anchor must be bound first: {label}")
        return self._labels[label]

    def align(self, alignment: int, fill: bytes = b"\xcc") -> None:
        """Pad with ``fill`` bytes up to the requested alignment."""
        gap = -self.here % alignment
        if gap:
            self._code += (fill * gap)[:gap]

    # ------------------------------------------------------------------
    # Encoding primitives
    # ------------------------------------------------------------------

    def _emit(self, *values: int) -> None:
        self._code += bytes(values)

    def _rex(self, w: int, r: int, x: int, b: int, *,
             force: bool = False) -> None:
        if w or r or x or b or force:
            self._emit(0x40 | (w << 3) | (r << 2) | (x << 1) | b)

    def _prefix_and_rex(self, width: int, reg: int = 0, index: int = 0,
                        base: int = 0, *, byte_regs: tuple[int, ...] = (),
                        default_64: bool = False,
                        force_rex: bool = False) -> None:
        """Emit the 0x66 prefix and/or REX byte an encoding needs."""
        if width == 16:
            self._emit(0x66)
        w = 1 if width == 64 and not default_64 else 0
        # spl/bpl/sil/dil need an empty REX to avoid the ah/ch/dh/bh forms.
        force = force_rex or (width == 8
                              and any(4 <= r <= 7 for r in byte_regs))
        self._rex(w, reg >> 3, index >> 3, base >> 3, force=force)

    def _modrm_reg(self, reg_field: int, rm: int) -> None:
        self._emit(0xC0 | ((reg_field & 7) << 3) | (rm & 7))

    def _encode_mem(self, reg_field: int, m: Mem, *,
                    imm_after: int = 0) -> None:
        """Emit ModRM (+SIB, +disp) for a memory operand.

        ``imm_after`` is the number of immediate bytes following the
        displacement; RIP-relative fixups are anchored past them.
        """
        reg3 = reg_field & 7
        if m.rip_label is not None:
            self._emit((reg3 << 3) | 0x05)
            pos = len(self._code)
            self._code += b"\x00" * 4
            anchor = self.base + pos + 4 + imm_after
            self._fixups.append(
                _Fixup(_FixupKind.RIP32, pos, m.rip_label, anchor=anchor))
            if m.disp:
                raise AssemblyError("rip-relative with extra disp unsupported")
            return

        if m.base is None and m.index is None:
            # Absolute disp32: SIB with no base, no index.
            self._emit((reg3 << 3) | 0x04, 0x25)
            self._abs32_disp(m)
            return

        if m.index is not None and (m.index & 7) == 4 and m.index == RSP:
            raise AssemblyError("rsp cannot be an index register")

        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}.get(m.scale)
        if scale_bits is None:
            raise AssemblyError(f"bad scale: {m.scale}")

        needs_sib = m.index is not None or (m.base is not None
                                            and (m.base & 7) == 4)
        disp = m.disp
        if m.base is None:
            # Index without base: mod=0, SIB base=5, disp32 mandatory.
            self._emit((reg3 << 3) | 0x04)
            self._emit((scale_bits << 6) | ((m.index & 7) << 3) | 0x05)
            self._abs32_disp(m)
            return

        base7 = m.base & 7
        if disp == 0 and base7 != 5:
            mod = 0
        elif -128 <= disp <= 127:
            mod = 1
        else:
            mod = 2

        if needs_sib:
            self._emit((mod << 6) | (reg3 << 3) | 0x04)
            index_bits = (m.index & 7) if m.index is not None else 4
            self._emit((scale_bits << 6) | (index_bits << 3) | base7)
        else:
            self._emit((mod << 6) | (reg3 << 3) | base7)

        if mod == 1:
            self._code += (disp & 0xFF).to_bytes(1, "little")
        elif mod == 2:
            self._code += (disp & 0xFFFFFFFF).to_bytes(4, "little")

    def _abs32_disp(self, m: Mem) -> None:
        """Emit the 4-byte absolute displacement of a no-base operand."""
        if m.disp_label is not None:
            self._fixups.append(
                _Fixup(_FixupKind.ABS32, len(self._code), m.disp_label))
            self._code += (m.disp & 0xFFFFFFFF).to_bytes(4, "little")
        else:
            self._code += (m.disp & 0xFFFFFFFF).to_bytes(4, "little")

    def _imm(self, value: int, size: int) -> None:
        self._code += (value & (2 ** (size * 8) - 1)).to_bytes(size, "little")

    @staticmethod
    def _check_width(width: int) -> None:
        if width not in (8, 16, 32, 64):
            raise AssemblyError(f"bad operand width: {width}")

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    def mov_rr(self, dst: int, src: int, width: int = 64) -> None:
        self._check_width(width)
        self._prefix_and_rex(width, reg=src, base=dst,
                             byte_regs=(dst, src) if width == 8 else ())
        self._emit(0x88 if width == 8 else 0x89)
        self._modrm_reg(src, dst)

    def mov_ri(self, dst: int, value: int, width: int = 64) -> None:
        self._check_width(width)
        if width == 8:
            self._prefix_and_rex(8, base=dst, byte_regs=(dst,))
            self._emit(0xB0 | (dst & 7))
            self._imm(value, 1)
            return
        if width == 64 and -2 ** 31 <= value < 2 ** 31:
            # mov r64, imm32 sign-extended (C7 /0) is the compact form.
            self._prefix_and_rex(64, base=dst)
            self._emit(0xC7)
            self._modrm_reg(0, dst)
            self._imm(value, 4)
            return
        self._prefix_and_rex(width, base=dst)
        self._emit(0xB8 | (dst & 7))
        self._imm(value, {16: 2, 32: 4, 64: 8}[width])

    def mov_rm(self, dst: int, m: Mem, width: int = 64) -> None:
        self._check_width(width)
        self._prefix_and_rex(width, reg=dst, index=m.index or 0,
                             base=m.base or 0,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0x8A if width == 8 else 0x8B)
        self._encode_mem(dst, m)

    def mov_mr(self, m: Mem, src: int, width: int = 64) -> None:
        self._check_width(width)
        self._prefix_and_rex(width, reg=src, index=m.index or 0,
                             base=m.base or 0,
                             byte_regs=(src,) if width == 8 else ())
        self._emit(0x88 if width == 8 else 0x89)
        self._encode_mem(src, m)

    def mov_mi(self, m: Mem, value: int, width: int = 32) -> None:
        self._check_width(width)
        self._prefix_and_rex(width, index=m.index or 0, base=m.base or 0)
        self._emit(0xC6 if width == 8 else 0xC7)
        size = 1 if width == 8 else (2 if width == 16 else 4)
        self._encode_mem(0, m, imm_after=size)
        self._imm(value, size)

    def movzx(self, dst: int, src: int, src_width: int,
              width: int = 32) -> None:
        if src_width not in (8, 16):
            raise AssemblyError("movzx source must be 8 or 16 bits")
        force = src_width == 8 and 4 <= src <= 7
        self._prefix_and_rex(width, reg=dst, base=src, force_rex=force)
        self._emit(0x0F, 0xB6 if src_width == 8 else 0xB7)
        self._modrm_reg(dst, src)

    def movsx(self, dst: int, src: int, src_width: int,
              width: int = 32) -> None:
        if src_width == 32:
            self._prefix_and_rex(64, reg=dst, base=src)
            self._emit(0x63)
        elif src_width in (8, 16):
            force = src_width == 8 and 4 <= src <= 7
            self._prefix_and_rex(width, reg=dst, base=src,
                                 force_rex=force)
            self._emit(0x0F, 0xBE if src_width == 8 else 0xBF)
        else:
            raise AssemblyError("movsx source must be 8, 16 or 32 bits")
        self._modrm_reg(dst, src)

    def movsxd_rm(self, dst: int, m: Mem) -> None:
        """movsxd r64, dword [mem] -- the PIC jump-table load."""
        self._prefix_and_rex(64, reg=dst, index=m.index or 0, base=m.base or 0)
        self._emit(0x63)
        self._encode_mem(dst, m)

    def lea(self, dst: int, m: Mem, width: int = 64) -> None:
        self._prefix_and_rex(width, reg=dst, index=m.index or 0,
                             base=m.base or 0)
        self._emit(0x8D)
        self._encode_mem(dst, m)

    def xchg_rr(self, a: int, b: int, width: int = 64) -> None:
        self._check_width(width)
        self._prefix_and_rex(width, reg=b, base=a,
                             byte_regs=(a, b) if width == 8 else ())
        self._emit(0x86 if width == 8 else 0x87)
        self._modrm_reg(b, a)

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------

    def alu_rr(self, op: str, dst: int, src: int, width: int = 64) -> None:
        code = _ALU_CODES[op]
        self._prefix_and_rex(width, reg=src, base=dst,
                             byte_regs=(dst, src) if width == 8 else ())
        self._emit((code << 3) | (0x00 if width == 8 else 0x01))
        self._modrm_reg(src, dst)

    def alu_ri(self, op: str, dst: int, value: int, width: int = 64) -> None:
        code = _ALU_CODES[op]
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        if width == 8:
            self._emit(0x80)
            self._modrm_reg(code, dst)
            self._imm(value, 1)
        elif -128 <= value <= 127:
            self._emit(0x83)
            self._modrm_reg(code, dst)
            self._imm(value, 1)
        else:
            self._emit(0x81)
            self._modrm_reg(code, dst)
            self._imm(value, 2 if width == 16 else 4)

    def alu_rm(self, op: str, dst: int, m: Mem, width: int = 64) -> None:
        code = _ALU_CODES[op]
        self._prefix_and_rex(width, reg=dst, index=m.index or 0,
                             base=m.base or 0,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit((code << 3) | (0x02 if width == 8 else 0x03))
        self._encode_mem(dst, m)

    def alu_mr(self, op: str, m: Mem, src: int, width: int = 64) -> None:
        code = _ALU_CODES[op]
        self._prefix_and_rex(width, reg=src, index=m.index or 0,
                             base=m.base or 0,
                             byte_regs=(src,) if width == 8 else ())
        self._emit((code << 3) | (0x00 if width == 8 else 0x01))
        self._encode_mem(src, m)

    def test_rr(self, a: int, b: int, width: int = 64) -> None:
        self._prefix_and_rex(width, reg=b, base=a,
                             byte_regs=(a, b) if width == 8 else ())
        self._emit(0x84 if width == 8 else 0x85)
        self._modrm_reg(b, a)

    def test_ri(self, dst: int, value: int, width: int = 64) -> None:
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0xF6 if width == 8 else 0xF7)
        self._modrm_reg(0, dst)
        self._imm(value, 1 if width == 8 else (2 if width == 16 else 4))

    def imul_rr(self, dst: int, src: int, width: int = 64) -> None:
        self._prefix_and_rex(width, reg=dst, base=src)
        self._emit(0x0F, 0xAF)
        self._modrm_reg(dst, src)

    def imul_rri(self, dst: int, src: int, value: int,
                 width: int = 64) -> None:
        self._prefix_and_rex(width, reg=dst, base=src)
        if -128 <= value <= 127:
            self._emit(0x6B)
            self._modrm_reg(dst, src)
            self._imm(value, 1)
        else:
            self._emit(0x69)
            self._modrm_reg(dst, src)
            self._imm(value, 2 if width == 16 else 4)

    def unary(self, op: str, dst: int, width: int = 64) -> None:
        """not/neg/mul/imul1/div/idiv on a register."""
        code = {"test": 0, "not": 2, "neg": 3, "mul": 4,
                "imul1": 5, "div": 6, "idiv": 7}[op]
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0xF6 if width == 8 else 0xF7)
        self._modrm_reg(code, dst)

    def inc(self, dst: int, width: int = 64) -> None:
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0xFE if width == 8 else 0xFF)
        self._modrm_reg(0, dst)

    def dec(self, dst: int, width: int = 64) -> None:
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0xFE if width == 8 else 0xFF)
        self._modrm_reg(1, dst)

    def shift_ri(self, op: str, dst: int, amount: int,
                 width: int = 64) -> None:
        code = _SHIFT_CODES[op]
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        if amount == 1:
            self._emit(0xD0 if width == 8 else 0xD1)
            self._modrm_reg(code, dst)
        else:
            self._emit(0xC0 if width == 8 else 0xC1)
            self._modrm_reg(code, dst)
            self._imm(amount, 1)

    def shift_cl(self, op: str, dst: int, width: int = 64) -> None:
        code = _SHIFT_CODES[op]
        self._prefix_and_rex(width, base=dst,
                             byte_regs=(dst,) if width == 8 else ())
        self._emit(0xD2 if width == 8 else 0xD3)
        self._modrm_reg(code, dst)

    def cdq(self) -> None:
        self._emit(0x99)

    def cqo(self) -> None:
        self._rex(1, 0, 0, 0)
        self._emit(0x99)

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------

    def push_r(self, reg: int) -> None:
        self._rex(0, 0, 0, reg >> 3)
        self._emit(0x50 | (reg & 7))

    def pop_r(self, reg: int) -> None:
        self._rex(0, 0, 0, reg >> 3)
        self._emit(0x58 | (reg & 7))

    def push_i(self, value: int) -> None:
        if -128 <= value <= 127:
            self._emit(0x6A)
            self._imm(value, 1)
        else:
            self._emit(0x68)
            self._imm(value, 4)

    def leave(self) -> None:
        self._emit(0xC9)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _branch_fixup(self, kind: _FixupKind, label: str, size: int) -> None:
        pos = len(self._code)
        self._code += b"\x00" * size
        self._fixups.append(
            _Fixup(kind, pos, label, anchor=self.base + pos + size))

    def jmp(self, label: str, *, short: bool = False) -> None:
        if short:
            self._emit(0xEB)
            self._branch_fixup(_FixupKind.REL8, label, 1)
        else:
            self._emit(0xE9)
            self._branch_fixup(_FixupKind.REL32, label, 4)

    def jcc(self, condition: str, label: str, *, short: bool = False) -> None:
        cc = _CONDITION_NUMBERS[condition]
        if short:
            self._emit(0x70 | cc)
            self._branch_fixup(_FixupKind.REL8, label, 1)
        else:
            self._emit(0x0F, 0x80 | cc)
            self._branch_fixup(_FixupKind.REL32, label, 4)

    def call(self, label: str) -> None:
        self._emit(0xE8)
        self._branch_fixup(_FixupKind.REL32, label, 4)

    def call_r(self, reg: int) -> None:
        self._rex(0, 0, 0, reg >> 3)
        self._emit(0xFF)
        self._modrm_reg(2, reg)

    def call_m(self, m: Mem) -> None:
        self._prefix_and_rex(32, reg=2, index=m.index or 0, base=m.base or 0)
        self._emit(0xFF)
        self._encode_mem(2, m)

    def jmp_r(self, reg: int) -> None:
        self._rex(0, 0, 0, reg >> 3)
        self._emit(0xFF)
        self._modrm_reg(4, reg)

    def jmp_m(self, m: Mem) -> None:
        self._prefix_and_rex(32, reg=4, index=m.index or 0, base=m.base or 0)
        self._emit(0xFF)
        self._encode_mem(4, m)

    def ret(self) -> None:
        self._emit(0xC3)

    def ret_imm(self, value: int) -> None:
        self._emit(0xC2)
        self._imm(value, 2)

    def int3(self) -> None:
        self._emit(0xCC)

    def ud2(self) -> None:
        self._emit(0x0F, 0x0B)

    def hlt(self) -> None:
        self._emit(0xF4)

    def endbr64(self) -> None:
        """The CET landing pad: f3 0f 1e fa (decodes as a hint nop)."""
        self._emit(0xF3, 0x0F, 0x1E, 0xFA)

    def setcc(self, condition: str, dst: int) -> None:
        cc = _CONDITION_NUMBERS[condition]
        self._prefix_and_rex(8, base=dst, byte_regs=(dst,))
        self._emit(0x0F, 0x90 | cc)
        self._modrm_reg(0, dst)

    def cmovcc(self, condition: str, dst: int, src: int,
               width: int = 64) -> None:
        cc = _CONDITION_NUMBERS[condition]
        self._prefix_and_rex(width, reg=dst, base=src)
        self._emit(0x0F, 0x40 | cc)
        self._modrm_reg(dst, src)

    # ------------------------------------------------------------------
    # Padding
    # ------------------------------------------------------------------

    _NOPS = {
        1: b"\x90",
        2: b"\x66\x90",
        3: b"\x0f\x1f\x00",
        4: b"\x0f\x1f\x40\x00",
        5: b"\x0f\x1f\x44\x00\x00",
        6: b"\x66\x0f\x1f\x44\x00\x00",
        7: b"\x0f\x1f\x80\x00\x00\x00\x00",
        8: b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
        9: b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    }

    def nop(self, count: int = 1) -> None:
        """Emit ``count`` bytes of canonical multi-byte nop padding."""
        while count > 0:
            chunk = min(count, 9)
            self._code += self._NOPS[chunk]
            count -= chunk

    def align_code(self, alignment: int) -> None:
        """Align using nop padding (code-style alignment)."""
        gap = -self.here % alignment
        if gap:
            self.nop(gap)
