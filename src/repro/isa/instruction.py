"""The decoded-instruction value object."""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import CONDITION_CODES, FlowKind, NO_FALLTHROUGH
from .operands import MemOp, Operand, RelOp


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        offset: offset of the first byte within the decoded buffer.
        length: encoded length in bytes.
        mnemonic: canonical mnemonic; condition-coded families use the
            internal ``j.N`` / ``set.N`` / ``cmov.N`` spelling (see
            :attr:`display_mnemonic` for the human form).
        operands: decoded operands in Intel order (destination first).
        flow: control-flow classification.
        reads / writes: general-purpose register *families* (hardware
            numbers 0-15) read and written, including implicit effects.
        reads_flags / writes_flags: arithmetic-flags effects.
        rare: True when the opcode essentially never appears in
            compiler-generated code.
        raw: the encoded bytes.
    """

    offset: int
    length: int
    mnemonic: str
    operands: tuple[Operand, ...] = ()
    flow: FlowKind = FlowKind.SEQ
    reads: frozenset[int] = frozenset()
    writes: frozenset[int] = frozenset()
    reads_flags: bool = False
    writes_flags: bool = False
    rare: bool = False
    raw: bytes = b""

    @property
    def end(self) -> int:
        """Offset of the first byte after this instruction."""
        return self.offset + self.length

    @property
    def falls_through(self) -> bool:
        """True when execution can continue at :attr:`end`."""
        return self.flow not in NO_FALLTHROUGH

    @property
    def branch_target(self) -> int | None:
        """Absolute target of a direct jump/call, else None."""
        for operand in self.operands:
            if isinstance(operand, RelOp):
                return operand.target
        return None

    @property
    def is_direct_branch(self) -> bool:
        return self.flow in (FlowKind.JUMP, FlowKind.CJUMP, FlowKind.CALL)

    @property
    def is_branch(self) -> bool:
        return self.flow in (FlowKind.JUMP, FlowKind.CJUMP, FlowKind.CALL,
                             FlowKind.IJUMP, FlowKind.ICALL, FlowKind.RET)

    @property
    def is_nop(self) -> bool:
        return self.mnemonic == "nop"

    @property
    def rip_target(self) -> int | None:
        """Absolute offset referenced RIP-relatively, if any."""
        for operand in self.operands:
            if isinstance(operand, MemOp) and operand.rip_relative:
                return operand.target
        return None

    @property
    def display_mnemonic(self) -> str:
        """Human-readable mnemonic (``j.4`` -> ``je``)."""
        base, dot, cc = self.mnemonic.partition(".")
        if dot and cc.isdigit():
            prefix = {"j": "j", "set": "set", "cmov": "cmov"}.get(base)
            if prefix is not None:
                return prefix + CONDITION_CODES[int(cc)]
        return self.mnemonic

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        text = self.display_mnemonic
        return f"{self.offset:#07x}: {text} {ops}".rstrip()
