"""Opcode metadata structures for the x86-64 subset decoder.

The decoder is table driven: each opcode byte (or ``0F``-prefixed pair)
maps to an :class:`OpcodeInfo` describing how the remaining bytes are
parsed (ModRM? immediate size? relative displacement?) and what the
resulting instruction *means* at the level the rest of the library cares
about: its mnemonic, its control-flow behavior and its register effects.

The tables themselves live in :mod:`repro.isa.tables`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Encoding(enum.Enum):
    """How an opcode's operand bytes are laid out after the opcode."""

    NONE = "none"          # no operand bytes (ret, leave, cwde, ...)
    MR = "mr"              # ModRM; r/m is destination, reg is source
    RM = "rm"              # ModRM; reg is destination, r/m is source
    M = "m"                # ModRM; reg field is an opcode extension
    MI = "mi"              # ModRM (reg = extension) + immediate
    I = "i"                # immediate operand only (to rAX or implicit)
    O = "o"                # register encoded in opcode low 3 bits
    OI = "oi"              # opcode register + immediate
    D = "d"                # relative branch displacement
    RMI = "rmi"            # ModRM + immediate (imul r, r/m, imm)


class ImmSize(enum.Enum):
    """Immediate-size codes, following Intel's manual suffix letters."""

    NONE = "none"
    B = "b"                # 8 bits, always
    W = "w"                # 16 bits, always (ret imm16)
    Z = "z"                # 16 bits with the 0x66 prefix, else 32 bits
    V = "v"                # 16/32/64 bits by operand size (mov B8+r only)


class FlowKind(enum.Enum):
    """Control-flow classification of an instruction."""

    SEQ = "seq"            # falls through to the next instruction
    JUMP = "jump"          # unconditional direct jump: no fall-through
    CJUMP = "cjump"        # conditional direct jump: branch + fall-through
    IJUMP = "ijump"        # indirect jump: no fall-through, unknown target
    CALL = "call"          # direct call: falls through on return
    ICALL = "icall"        # indirect call: falls through on return
    RET = "ret"            # return: no fall-through
    HALT = "halt"          # hlt / ud2: execution cannot proceed
    TRAP = "trap"          # int3 and friends: padding / debug traps


#: Flow kinds after which execution does not continue at the next offset.
NO_FALLTHROUGH = frozenset({
    FlowKind.JUMP, FlowKind.IJUMP, FlowKind.RET, FlowKind.HALT,
})


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode table entry.

    Attributes:
        mnemonic: instruction name, or empty string for group opcodes
            whose mnemonic comes from the ModRM reg field.
        encoding: operand byte layout (see :class:`Encoding`).
        imm: immediate size code.
        byte_op: True for the fixed 8-bit form of an instruction.
        flow: control-flow classification.
        group: for group opcodes, 8 entries selected by ModRM.reg; an
            entry is either a ``(mnemonic, imm, flow)`` triple or None
            for undefined extensions.
        rare: True for instructions that are legal but essentially never
            appear in compiler-generated code (salc-era leftovers, I/O
            port instructions, ...).  The statistical models treat their
            presence as weak evidence of misclassified data.
        default_64: True when the operand size defaults to 64 bits in
            long mode without REX.W (push/pop/call/jmp near).
    """

    mnemonic: str
    encoding: Encoding = Encoding.NONE
    imm: ImmSize = ImmSize.NONE
    byte_op: bool = False
    flow: FlowKind = FlowKind.SEQ
    group: tuple | None = None
    rare: bool = False
    default_64: bool = False


@dataclass(frozen=True)
class GroupEntry:
    """One ModRM.reg-selected member of a group opcode."""

    mnemonic: str
    imm: ImmSize = ImmSize.NONE
    flow: FlowKind = FlowKind.SEQ
    # Operand-size override: call/jmp via FF default to 64-bit.
    default_64: bool = False


def op(mnemonic: str, encoding: Encoding = Encoding.NONE, *,
       imm: ImmSize = ImmSize.NONE, byte_op: bool = False,
       flow: FlowKind = FlowKind.SEQ, group: tuple | None = None,
       rare: bool = False, default_64: bool = False) -> OpcodeInfo:
    """Terse constructor used by the opcode tables."""
    return OpcodeInfo(mnemonic, encoding, imm, byte_op, flow, group,
                      rare, default_64)


#: Condition-code suffixes indexed by the low nibble of Jcc/SETcc/CMOVcc.
CONDITION_CODES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)


# Implicit register effects by mnemonic: (reads, writes) of register
# family numbers.  Operand-derived effects are added by the decoder.
from .registers import RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI  # noqa: E402

IMPLICIT_EFFECTS: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {
    "push": ((RSP,), (RSP,)),
    "enter": ((RSP, RBP), (RSP, RBP)),
    "pop": ((RSP,), (RSP,)),
    "call": ((RSP,), (RSP,)),
    "ret": ((RSP,), (RSP,)),
    "leave": ((RBP,), (RSP, RBP)),
    "mul": ((RAX,), (RAX, RDX)),
    "imul1": ((RAX,), (RAX, RDX)),   # single-operand imul (group F7 /5)
    "div": ((RAX, RDX), (RAX, RDX)),
    "idiv": ((RAX, RDX), (RAX, RDX)),
    "cwde": ((RAX,), (RAX,)),
    "cdqe": ((RAX,), (RAX,)),
    "cdq": ((RAX,), (RDX,)),
    "cwd": ((RAX,), (RDX,)),
    "movs": ((RSI, RDI), (RSI, RDI)),
    "stos": ((RAX, RDI), (RDI,)),
    "lods": ((RSI,), (RAX, RSI)),
    "scas": ((RAX, RDI), (RDI,)),
    "cmps": ((RSI, RDI), (RSI, RDI)),
    "cpuid": ((RAX, RCX), (RAX, RBX, RCX, RDX)),
    "rdtsc": ((), (RAX, RDX)),
    "syscall": ((RAX, RDI, RSI, RDX), (RAX, RCX,)),
    "cbw": ((RAX,), (RAX,)),
    "cqo": ((RAX,), (RDX,)),
    "xlat": ((RAX, RBX), (RAX,)),
    "loop": ((RCX,), (RCX,)),
    "loope": ((RCX,), (RCX,)),
    "loopne": ((RCX,), (RCX,)),
    "jrcxz": ((RCX,), ()),
    "in": ((RDX,), (RAX,)),
    "out": ((RAX, RDX), ()),
}

#: Mnemonics that write their first (destination) operand but do not
#: read it.  Everything else with a ModRM destination is read-modify-write
#: or compare-like; see decoder.effects for the full dispatch.
WRITE_ONLY_DEST = frozenset({
    "mov", "movzx", "movsx", "movsxd", "lea", "pop", "set",
})

#: Compare-like mnemonics: both operands are read, nothing is written.
READS_ONLY = frozenset({"cmp", "test", "bt"})
