"""Operand value objects produced by the decoder."""

from __future__ import annotations

from dataclasses import dataclass

from .registers import Register


@dataclass(frozen=True)
class RegOp:
    """A direct register operand."""

    register: Register

    def __str__(self) -> str:
        return self.register.name


@dataclass(frozen=True)
class ImmOp:
    """An immediate constant (sign-extended to its natural width)."""

    value: int
    width: int   # encoded width in bits

    def __str__(self) -> str:
        return hex(self.value)


@dataclass(frozen=True)
class MemOp:
    """A memory reference: ``[base + index*scale + disp]``.

    ``rip_relative`` marks the 64-bit RIP-relative form, in which case
    ``disp`` is relative to the end of the instruction and ``target``
    (filled in by the decoder) is the absolute referenced offset.
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0
    rip_relative: bool = False
    target: int | None = None
    width: int = 0   # access width in bits, 0 if not meaningful (lea)

    def __str__(self) -> str:
        if self.rip_relative:
            where = f"rip{self.disp:+#x}"
            if self.target is not None:
                where += f" -> {self.target:#x}"
            return f"[{where}]"
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        body = " + ".join(parts) if parts else ""
        if self.disp or not parts:
            body += f"{self.disp:+#x}" if parts else f"{self.disp:#x}"
        return f"[{body}]"


@dataclass(frozen=True)
class RelOp:
    """A direct branch target, already resolved to an absolute offset."""

    target: int

    def __str__(self) -> str:
        return f"{self.target:#x}"


Operand = RegOp | ImmOp | MemOp | RelOp
