"""Pure-Python x86-64 instruction set: decoder, encoder, metadata.

This package replaces capstone for the purposes of this reproduction: it
decodes a large x86-64 subset (all prefixes, REX, ModRM/SIB, one- and
two-byte opcode maps) into rich :class:`~repro.isa.instruction.Instruction`
objects that carry the control-flow and register-effect metadata the
disassembly analyses need, and it provides a small assembler used by the
synthetic binary generator.
"""

from .decoder import (decode, decode_interp, decoder_backend, try_decode,
                      try_decode_interp)
from .encoder import Assembler, AssemblyError, Mem, mem, rip
from .errors import (DecodeError, InvalidOpcodeError, TooLongError,
                     TruncatedError)
from .instruction import Instruction
from .opcodes import FlowKind
from .operands import ImmOp, MemOp, RegOp, RelOp
from .registers import Register, reg, register_by_name

__all__ = [
    "decode", "decode_interp", "decoder_backend", "try_decode",
    "try_decode_interp", "Assembler", "AssemblyError", "Mem", "mem",
    "rip", "DecodeError", "InvalidOpcodeError", "TooLongError",
    "TruncatedError", "Instruction", "FlowKind", "ImmOp", "MemOp", "RegOp",
    "RelOp", "Register", "reg", "register_by_name",
]
