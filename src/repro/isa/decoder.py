"""Table-driven x86-64 instruction decoder.

The public entry points are :func:`decode`, which decodes the instruction
starting at a given offset (raising a :class:`~repro.isa.errors.DecodeError`
subclass on failure), and :func:`try_decode`, which returns ``None``
instead of raising.  Superset disassembly calls :func:`try_decode` at
every offset of a text section.
"""

from __future__ import annotations

import os

from .errors import InvalidOpcodeError, TooLongError, TruncatedError
from .instruction import Instruction
from .opcodes import (IMPLICIT_EFFECTS, READS_ONLY, WRITE_ONLY_DEST,
                      Encoding, FlowKind, ImmSize, OpcodeInfo)
from .operands import ImmOp, MemOp, Operand, RegOp, RelOp
from .registers import RAX, RCX, Register
from .tables import (FLAG_READERS, FLAG_WRITERS, LEGACY_PREFIXES,
                     MAX_INSTRUCTION_LENGTH, ONE_BYTE, TWO_BYTE)

#: Mnemonics whose ModRM "register" field does not name a general-purpose
#: register (x87 stack slots, XMM registers, fences, hints ...).
_NO_GPR_SEMANTICS = frozenset({
    "x87", "fence", "prefetch", "nop", "mov_sreg", "sldt", "str", "lldt",
    "ltr", "verr", "verw", "sgdt", "sidt", "lgdt", "lidt", "smsw", "lmsw",
    "invlpg", "cmpxchg8b", "emms",
})

#: Mnemonics the LOCK prefix may legally precede (with a memory operand).
_LOCKABLE = frozenset({
    "add", "or", "adc", "sbb", "and", "sub", "xor", "xchg", "inc", "dec",
    "not", "neg", "cmpxchg", "xadd", "bts", "btr", "btc", "cmpxchg8b",
})

#: ALU-with-immediate opcodes of Encoding.I that implicitly target rAX.
_RAX_IMPLICIT = frozenset({
    "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test",
})


def _reg(number: int, width: int, rex_present: bool) -> Register:
    """Build a register, honoring the legacy high-byte encodings."""
    if width == 8 and not rex_present and 4 <= number <= 7:
        return Register(number, 8, high_byte=True)
    return Register(number, width)


class _Reader:
    """A bounds-checked byte cursor over the instruction buffer."""

    def __init__(self, buf: bytes, offset: int) -> None:
        self.buf = buf
        self.start = offset
        self.pos = offset

    def peek(self) -> int:
        if self.pos >= len(self.buf):
            raise TruncatedError(self.start, "buffer exhausted")
        return self.buf[self.pos]

    def take(self) -> int:
        byte = self.peek()
        self.pos += 1
        return byte

    def take_int(self, size: int, signed: bool = True) -> int:
        if self.pos + size > len(self.buf):
            raise TruncatedError(self.start, "truncated immediate")
        value = int.from_bytes(self.buf[self.pos:self.pos + size],
                               "little", signed=signed)
        self.pos += size
        return value

    @property
    def length(self) -> int:
        return self.pos - self.start


def _parse_modrm(r: _Reader, rex: int, width: int,
                 rex_present: bool) -> tuple[Operand, int]:
    """Parse ModRM (+SIB, +disp); return (r/m operand, extended reg field)."""
    modrm = r.take()
    mod = modrm >> 6
    reg_field = ((rex & 0x4) << 1) | ((modrm >> 3) & 0x7)
    rm = modrm & 0x7
    rex_b = (rex & 0x1) << 3
    rex_x = (rex & 0x2) << 2

    if mod == 3:
        return RegOp(_reg(rm | rex_b, width, rex_present)), reg_field

    base: Register | None = None
    index: Register | None = None
    scale = 1
    disp = 0
    rip_relative = False

    if rm == 4:  # SIB byte follows
        sib = r.take()
        scale = 1 << (sib >> 6)
        index_num = ((sib >> 3) & 0x7) | rex_x
        base_num = (sib & 0x7) | rex_b
        if index_num != 4:  # encoded index 4 without REX.X means "none"
            index = Register(index_num, 64)
        if (sib & 0x7) == 5 and mod == 0:
            disp = r.take_int(4)
        else:
            base = Register(base_num, 64)
    elif rm == 5 and mod == 0:
        rip_relative = True
        disp = r.take_int(4)
    else:
        base = Register(rm | rex_b, 64)

    if mod == 1:
        disp = r.take_int(1)
    elif mod == 2:
        disp = r.take_int(4)

    mem = MemOp(base=base, index=index, scale=scale, disp=disp,
                rip_relative=rip_relative, width=width)
    return mem, reg_field


def _imm_size(imm: ImmSize, opsize: int) -> int:
    if imm is ImmSize.B:
        return 1
    if imm is ImmSize.W:
        return 2
    if imm is ImmSize.Z:
        return 2 if opsize == 16 else 4
    if imm is ImmSize.V:
        return {16: 2, 32: 4, 64: 8}[opsize]
    return 0


def decode(buf: bytes, offset: int = 0) -> Instruction:
    """Decode the instruction starting at ``buf[offset]``.

    Raises:
        InvalidOpcodeError: undefined opcode, illegal prefix combination.
        TruncatedError: the buffer ends mid-instruction.
        TooLongError: the encoding exceeds 15 bytes.
    """
    if not 0 <= offset < len(buf):
        raise TruncatedError(offset, "offset outside buffer")

    r = _Reader(buf, offset)
    prefixes: set[int] = set()
    rex = 0
    rex_present = False
    while True:
        byte = r.peek()
        if byte in LEGACY_PREFIXES:
            prefixes.add(byte)
            rex = 0
            rex_present = False
            r.take()
        elif 0x40 <= byte <= 0x4F:
            rex = byte & 0xF
            rex_present = True
            r.take()
        else:
            break
        if r.length >= MAX_INSTRUCTION_LENGTH:
            raise TooLongError(offset, "prefix run exceeds 15 bytes")

    opcode = r.take()
    two_byte = False
    if opcode == 0x0F:
        two_byte = True
        opcode = r.take()
        info = TWO_BYTE[opcode]
    else:
        info = ONE_BYTE[opcode]
    if info is None:
        kind = "0f " if two_byte else ""
        raise InvalidOpcodeError(offset, f"undefined opcode {kind}{opcode:02x}")

    opsize = _operand_size(info, prefixes, rex)

    # Special fixed-layout instructions.
    if info.mnemonic == "mov_moffs":
        r.take_int(8, signed=False)
        return _finish(r, buf, info.mnemonic, (), info, opsize, prefixes,
                       extra_reads=(), offset=offset)
    if info.mnemonic == "enter":
        r.take_int(2, signed=False)
        r.take_int(1, signed=False)
        return _finish(r, buf, "enter", (), info, opsize, prefixes,
                       extra_reads=(), offset=offset)

    mnemonic = info.mnemonic
    flow = info.flow
    imm = info.imm
    default_64 = info.default_64
    rare = info.rare

    operands: list[Operand] = []
    extra_reads: tuple[int, ...] = ()
    rm_operand: Operand | None = None
    reg_field = 0

    needs_modrm = info.encoding in (Encoding.MR, Encoding.RM, Encoding.M,
                                    Encoding.MI, Encoding.RMI)
    if needs_modrm:
        src_width = _rm_width(two_byte, opcode, opsize)
        rm_operand, reg_field = _parse_modrm(r, rex, src_width, rex_present)

    if info.group is not None:
        entry = info.group[reg_field & 0x7]
        if entry is None:
            raise InvalidOpcodeError(offset,
                                     f"undefined group extension /{reg_field & 7}")
        mnemonic = entry.mnemonic
        flow = entry.flow
        imm = entry.imm if entry.imm is not ImmSize.NONE else imm
        default_64 = default_64 or entry.default_64
        if entry.default_64:
            opsize = _operand_size_64(prefixes, rex)
        # Shift-by-cl forms (D2/D3) implicitly read rcx.
        if not two_byte and opcode in (0xD2, 0xD3):
            extra_reads = (RCX,)

    operands = _build_operands(info.encoding, mnemonic, rm_operand,
                               reg_field, opcode, rex, rex_present, opsize,
                               two_byte)

    # The D0/D1 shift forms have an implicit count of one.
    if not two_byte and opcode in (0xD0, 0xD1):
        operands.append(ImmOp(1, 8))
    # The sign-extension family renames with operand size.
    if mnemonic in ("cwde", "cdq"):
        mnemonic = {("cwde", 16): "cbw", ("cwde", 64): "cdqe",
                    ("cdq", 16): "cwd", ("cdq", 64): "cqo"}.get(
                        (mnemonic, opsize), mnemonic)

    imm_bytes = _imm_size(imm, opsize)
    if imm_bytes and info.encoding is not Encoding.D:
        operands.append(ImmOp(r.take_int(imm_bytes), imm_bytes * 8))

    if info.encoding is Encoding.D:
        disp = r.take_int(imm_bytes if imm_bytes else 4)
        operands.append(RelOp(r.pos - r.start + offset + disp))

    if r.length > MAX_INSTRUCTION_LENGTH:
        raise TooLongError(offset, "instruction exceeds 15 bytes")

    _check_lock(offset, prefixes, mnemonic, operands)

    instruction = _finish(r, buf, mnemonic, tuple(operands), info, opsize,
                          prefixes, extra_reads=extra_reads, offset=offset,
                          flow=flow, rare=rare)
    return instruction


def try_decode(buf: bytes, offset: int = 0) -> Instruction | None:
    """Like :func:`decode` but returns None on any decode failure."""
    try:
        # Call the interpretive decoder by its stable alias: the seam
        # below rebinds the ``decode`` global to the compiled engine,
        # and this function must stay a pure-oracle entry point.
        return decode_interp(buf, offset)
    except (InvalidOpcodeError, TruncatedError, TooLongError):
        return None


def _operand_size(info: OpcodeInfo, prefixes: set[int], rex: int) -> int:
    if info.byte_op:
        return 8
    if 0x66 in prefixes and not rex & 0x8:
        return 16
    if rex & 0x8 or info.default_64:
        return 64
    return 32


def _operand_size_64(prefixes: set[int], rex: int) -> int:
    """Operand size for instructions defaulting to 64-bit (push, call...)."""
    if 0x66 in prefixes and not rex & 0x8:
        return 16
    return 64


def _rm_width(two_byte: bool, opcode: int, opsize: int) -> int:
    """Source r/m width for the widening moves; ``opsize`` otherwise."""
    if two_byte and opcode in (0xB6, 0xBE):     # movzx/movsx from r/m8
        return 8
    if two_byte and opcode in (0xB7, 0xBF):     # movzx/movsx from r/m16
        return 16
    if not two_byte and opcode == 0x63:         # movsxd from r/m32
        return 32
    return opsize


def _build_operands(encoding: Encoding, mnemonic: str,
                    rm_operand: Operand | None, reg_field: int,
                    opcode: int, rex: int, rex_present: bool, opsize: int,
                    two_byte: bool) -> list[Operand]:
    reg_op = None
    if encoding in (Encoding.MR, Encoding.RM, Encoding.RMI):
        # The register operand always has the full operand size; only the
        # r/m side narrows for the widening moves (see _rm_width).  For
        # movzx/movsx the destination is opsize wide (movzx r32, r/m8
        # writes a 32-bit register) -- the narrow width applies to the
        # source r/m operand alone.
        reg_op = RegOp(_reg(reg_field, opsize, rex_present))

    if encoding is Encoding.MR:
        return [rm_operand, reg_op]
    if encoding in (Encoding.RM, Encoding.RMI):
        return [reg_op, rm_operand]
    if encoding in (Encoding.M, Encoding.MI):
        return [rm_operand]
    if encoding in (Encoding.O, Encoding.OI):
        number = (opcode & 0x7) | ((rex & 0x1) << 3)
        width = opsize
        reg = RegOp(_reg(number, width, rex_present))
        if mnemonic == "xchg" or (not two_byte and 0x91 <= opcode <= 0x97):
            return [RegOp(Register(RAX, opsize)), reg]
        return [reg]
    return []


def _check_lock(offset: int, prefixes: set[int], mnemonic: str,
                operands: list[Operand]) -> None:
    if 0xF0 not in prefixes:
        return
    has_mem_dest = bool(operands) and isinstance(operands[0], MemOp)
    if mnemonic not in _LOCKABLE or not has_mem_dest:
        raise InvalidOpcodeError(offset, "illegal lock prefix")


def _finish(r: _Reader, buf: bytes, mnemonic: str,
            operands: tuple[Operand, ...], info: OpcodeInfo, opsize: int,
            prefixes: set[int], *, extra_reads: tuple[int, ...],
            offset: int, flow: FlowKind | None = None,
            rare: bool | None = None) -> Instruction:
    flow = info.flow if flow is None else flow
    rare = info.rare if rare is None else rare
    reads, writes = _effects(mnemonic, info.encoding, operands, opsize,
                             extra_reads)
    # RIP-relative targets are resolved against the instruction end.
    operands = tuple(
        MemOp(base=o.base, index=o.index, scale=o.scale, disp=o.disp,
              rip_relative=True, target=r.pos + o.disp, width=o.width)
        if isinstance(o, MemOp) and o.rip_relative else o
        for o in operands
    )
    return Instruction(
        offset=offset,
        length=r.length,
        mnemonic=mnemonic,
        operands=operands,
        flow=flow,
        reads=frozenset(reads),
        writes=frozenset(writes),
        reads_flags=mnemonic in FLAG_READERS,
        writes_flags=mnemonic in FLAG_WRITERS,
        rare=rare or bool(prefixes & {0x2E, 0x36, 0x3E, 0x26}),
        raw=bytes(buf[offset:r.pos]),
    )


def _effects(mnemonic: str, encoding: Encoding,
             operands: tuple[Operand, ...], opsize: int,
             extra_reads: tuple[int, ...]) -> tuple[set[int], set[int]]:
    reads: set[int] = set(extra_reads)
    writes: set[int] = set()

    no_gpr = mnemonic in _NO_GPR_SEMANTICS or mnemonic.startswith("simd.")

    # Hint instructions (long nop, prefetch) do not really access memory,
    # so their address registers are not read.
    if mnemonic not in ("nop", "prefetch"):
        for operand in operands:
            if isinstance(operand, MemOp):
                if operand.base is not None:
                    reads.add(operand.base.family)
                if operand.index is not None:
                    reads.add(operand.index.family)

    def read(operand: Operand) -> None:
        if isinstance(operand, RegOp) and not no_gpr:
            reads.add(operand.register.family)

    def write(operand: Operand) -> None:
        if isinstance(operand, RegOp) and not no_gpr:
            writes.add(operand.register.family)

    dest = operands[0] if operands else None
    src = operands[1] if len(operands) > 1 else None

    write_only = (mnemonic in WRITE_ONLY_DEST
                  or mnemonic.startswith(("set.", "mov")))
    reads_only = mnemonic in READS_ONLY

    if mnemonic in ("push", "call", "jmp"):
        if dest is not None:
            read(dest)
    elif mnemonic == "pop":
        if dest is not None:
            write(dest)
    elif mnemonic in ("mul", "imul1", "div", "idiv"):
        if dest is not None:
            read(dest)
    elif mnemonic == "xchg":
        for operand in operands:
            read(operand)
            write(operand)
    elif mnemonic == "lea":
        if dest is not None:
            write(dest)
    elif reads_only:
        for operand in operands:
            read(operand)
    elif write_only:
        if dest is not None:
            write(dest)
        if src is not None:
            read(src)
    else:
        # Default: read-modify-write destination, read source.
        if dest is not None and encoding is not Encoding.D:
            read(dest)
            write(dest)
        if src is not None:
            read(src)

    if encoding is Encoding.I and mnemonic in _RAX_IMPLICIT:
        reads.add(RAX)
        if mnemonic not in ("cmp", "test"):
            writes.add(RAX)

    implicit = IMPLICIT_EFFECTS.get(mnemonic)
    if implicit is not None:
        reads.update(implicit[0])
        writes.update(implicit[1])
    return reads, writes


# ---------------------------------------------------------------------------
# Backend selection seam
#
# The hot path normally runs the generated engine (repro.isa._compiled,
# produced by ``python -m repro.isa.compile_tables``); the interpretive
# decoder above stays available -- unchanged -- as the differential-
# testing oracle.  ``REPRO_DECODER=interp`` forces the oracle for every
# consumer.  The names are rebound at import time so that call sites
# binding ``try_decode`` directly (superset, eval, serve, lint) pay no
# per-call indirection.
# ---------------------------------------------------------------------------

#: The interpretive oracle entry points, always available by name.
decode_interp = decode
try_decode_interp = try_decode

_BACKEND = "interp"
if os.environ.get("REPRO_DECODER", "compiled").strip().lower() != "interp":
    try:
        from . import _compiled
    except ImportError:    # pragma: no cover - pre-generation bootstrap
        _compiled = None   # type: ignore[assignment]
    if _compiled is not None:
        _BACKEND = "compiled"

if _BACKEND == "compiled":
    try_decode = _compiled.try_decode
    _raw_decode_compiled = _compiled.raw_decode

    def decode(buf: bytes, offset: int = 0) -> Instruction:
        """Decode via the compiled engine (see the interp docstring).

        Failures re-run the oracle so callers observe the exact
        exception type and message the interpretive decoder raises.
        """
        result = _raw_decode_compiled(buf, offset)
        if result.__class__ is Instruction:
            return result
        return decode_interp(buf, offset)


def decoder_backend() -> str:
    """The active decode backend: ``"compiled"`` or ``"interp"``."""
    return _BACKEND
