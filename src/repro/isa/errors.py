"""Decode-failure exceptions.

Each failure mode is a distinct class because the behavioral analyses
care *why* a byte sequence failed to decode: hitting an undefined opcode
mid-stream is strong evidence of data, while running off the end of the
buffer is not evidence of anything.
"""

from __future__ import annotations


class DecodeError(ValueError):
    """Base class for all instruction-decoding failures."""

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"cannot decode at {offset:#x}: {reason}")
        self.offset = offset
        self.reason = reason


class InvalidOpcodeError(DecodeError):
    """The byte sequence does not encode a valid x86-64 instruction."""


class TruncatedError(DecodeError):
    """The instruction runs past the end of the buffer."""


class TooLongError(DecodeError):
    """The encoding exceeds the architectural 15-byte limit."""
