"""Register definitions for the x86-64 subset.

Registers are identified by a small integer (the hardware encoding number
0-15) together with a width in bits.  The :class:`Register` value object
carries both, plus the conventional name (``rax``, ``eax``, ``ax``,
``al`` ...).  Downstream analyses (def-use scoring, calling-convention
idioms) only care about the *family* of a register -- ``eax`` and ``rax``
alias the same underlying hardware register -- so :attr:`Register.family`
exposes the hardware number directly.
"""

from __future__ import annotations

from dataclasses import dataclass

# Hardware register numbers (also the ModRM encoding values).
RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

_NAMES_64 = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]
_NAMES_32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]
_NAMES_16 = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
]
# 8-bit names with REX present (spl/bpl/sil/dil instead of ah/ch/dh/bh).
_NAMES_8 = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
]
# Legacy high-byte registers, encodings 4-7 when no REX prefix is present.
_NAMES_8_HIGH = {4: "ah", 5: "ch", 6: "dh", 7: "bh"}

_NAME_TABLES = {64: _NAMES_64, 32: _NAMES_32, 16: _NAMES_16, 8: _NAMES_8}


@dataclass(frozen=True)
class Register:
    """A general-purpose register reference.

    Attributes:
        number: hardware encoding number, 0-15.
        width: operand width in bits (8, 16, 32 or 64).
        high_byte: True only for the legacy ah/ch/dh/bh encodings.
    """

    number: int
    width: int
    high_byte: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.number <= 15:
            raise ValueError(f"register number out of range: {self.number}")
        if self.width not in (8, 16, 32, 64):
            raise ValueError(f"unsupported register width: {self.width}")
        if self.high_byte and (self.width != 8 or self.number not in (4, 5, 6, 7)):
            raise ValueError("high-byte form only exists for ah/ch/dh/bh")

    @property
    def name(self) -> str:
        if self.high_byte:
            return _NAMES_8_HIGH[self.number]
        return _NAME_TABLES[self.width][self.number]

    @property
    def family(self) -> int:
        """The underlying hardware register, ignoring width (0-15)."""
        return self.number

    def __str__(self) -> str:
        return self.name


def reg(number: int, width: int = 64) -> Register:
    """Shorthand constructor used pervasively by the encoder and tests."""
    return Register(number, width)


def register_by_name(name: str) -> Register:
    """Look up a register by conventional name (``"rax"``, ``"r8d"`` ...)."""
    for width, table in _NAME_TABLES.items():
        if name in table:
            return Register(table.index(name), width)
    for number, high_name in _NAMES_8_HIGH.items():
        if name == high_name:
            return Register(number, 8, high_byte=True)
    raise KeyError(f"unknown register name: {name!r}")


#: Registers that the System V AMD64 calling convention uses for arguments.
ARGUMENT_REGISTERS = (RDI, RSI, RDX, RCX, R8, R9)

#: Callee-saved registers under the System V AMD64 ABI.
CALLEE_SAVED = (RBX, RBP, R12, R13, R14, R15)

#: Caller-saved (volatile) registers under the System V AMD64 ABI.
CALLER_SAVED = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)
