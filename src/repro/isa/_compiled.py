"""x86-64 decode engine compiled from the opcode tables.

GENERATED FILE -- DO NOT EDIT.  Regenerate with:

    python -m repro.isa.compile_tables

and check for drift (CI enforces this) with:

    python -m repro.isa.compile_tables --check

The compiler (repro.isa.compile_tables) lowers ONE_BYTE/TWO_BYTE and the
ModRM groups into the dense dispatch tables below and appends its engine
template verbatim.  The interpretive decoder (repro.isa.decoder) is the
behavioral oracle; the differential tests keep this module bit-identical
to it.

table digest : 7a9d6f715a9b73be
opcode plans : 417 table entries -> 451 interned plans,
               36 interned groups, 281 interned
               field templates
"""

from .instruction import Instruction
from .opcodes import FlowKind as _F
from .operands import ImmOp, MemOp, RegOp, RelOp
from .registers import Register

BACKEND = "compiled"

# Interned register/operand pools (index = hardware number).
_R64 = tuple(Register(n, 64) for n in range(16))
_RO64 = tuple(RegOp(r) for r in _R64)
_RO32 = tuple(RegOp(Register(n, 32)) for n in range(16))
_RO16 = tuple(RegOp(Register(n, 16)) for n in range(16))
_RO8X = tuple(RegOp(Register(n, 8)) for n in range(16))
_RO8L = tuple(RegOp(Register(n, 8, high_byte=n >= 4))
              for n in range(8))
_IMM1 = ImmOp(1, 8)
_IMM8 = tuple(ImmOp(v - 256 if v >= 128 else v, 8)
              for v in range(256))

# Interned effect sets keyed by 16-bit register-family mask.
_FSC = {}


def _fs(mask):
    fs = _FSC.get(mask)
    if fs is None:
        fs = _FSC[mask] = frozenset(
            f for f in range(16) if mask >> f & 1)
    return fs


# Prefix-scanner DFA: byte -> equivalence class
# (0 opcode/exit, 1 legacy prefix, 2 REX) and byte -> prefix bit
# (1 operand size, 2 lock, 4 rare segment override).
_BCLASS = bytes.fromhex(
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000100000000000000010000000000000001000000000000000100"
    "0202020202020202020202020202020200000000000000000000000000000000"
    "0000000001010101000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000001000101000000000000000000000000"
)
_PBIT = bytes.fromhex(
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000400000000000000040000000000000004000000000000000400"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000100000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000002000000000000000000000000000000"
)

# Interned decode plans:
#   (enc, imm, flags, ek, reads, writes, group, extra, tpl)
# enc: 0 none 1 MR 2 RM 3 RMI 4 M 5 MI 6 I 7 O 8 OI 9 D
#      10 moffs 11 enter; imm: 0 none 1 B 2 W 3 Z 4 V
# ek: 0 static 1 read-dest 2 write-dest 3 xchg 4 reads-only
#     5 write-read 6 rmw 7 no-GPR; flags: see repro.isa.compile_tables.F_*
# tpl: the plan-constant Instruction fields; the engine
#      copies it and fills the six per-decode keys.
_t0 = {'mnemonic': 'add', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p0 = (1, 0, 0x2021, 6, 0x0, 0x0, None, None, _t0)
_p1 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t0)
_p2 = (2, 0, 0x2021, 6, 0x0, 0x0, None, None, _t0)
_p3 = (2, 0, 0x2020, 6, 0x0, 0x0, None, None, _t0)
_p4 = (6, 1, 0x2021, 0, _fs(0x1), _fs(0x1), None, None, _t0)
_p5 = (6, 3, 0x2020, 0, _fs(0x1), _fs(0x1), None, None, _t0)
_t1 = {'mnemonic': 'or', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p6 = (1, 0, 0x2021, 6, 0x0, 0x0, None, None, _t1)
_p7 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t1)
_p8 = (2, 0, 0x2021, 6, 0x0, 0x0, None, None, _t1)
_p9 = (2, 0, 0x2020, 6, 0x0, 0x0, None, None, _t1)
_p10 = (6, 1, 0x2021, 0, _fs(0x1), _fs(0x1), None, None, _t1)
_p11 = (6, 3, 0x2020, 0, _fs(0x1), _fs(0x1), None, None, _t1)
_t2 = {'mnemonic': 'adc', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': True, 'rare': False}
_p12 = (1, 0, 0x3021, 6, 0x0, 0x0, None, None, _t2)
_p13 = (1, 0, 0x3020, 6, 0x0, 0x0, None, None, _t2)
_p14 = (2, 0, 0x3021, 6, 0x0, 0x0, None, None, _t2)
_p15 = (2, 0, 0x3020, 6, 0x0, 0x0, None, None, _t2)
_p16 = (6, 1, 0x3021, 0, _fs(0x1), _fs(0x1), None, None, _t2)
_p17 = (6, 3, 0x3020, 0, _fs(0x1), _fs(0x1), None, None, _t2)
_t3 = {'mnemonic': 'sbb', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': True, 'rare': False}
_p18 = (1, 0, 0x3021, 6, 0x0, 0x0, None, None, _t3)
_p19 = (1, 0, 0x3020, 6, 0x0, 0x0, None, None, _t3)
_p20 = (2, 0, 0x3021, 6, 0x0, 0x0, None, None, _t3)
_p21 = (2, 0, 0x3020, 6, 0x0, 0x0, None, None, _t3)
_p22 = (6, 1, 0x3021, 0, _fs(0x1), _fs(0x1), None, None, _t3)
_p23 = (6, 3, 0x3020, 0, _fs(0x1), _fs(0x1), None, None, _t3)
_t4 = {'mnemonic': 'and', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p24 = (1, 0, 0x2021, 6, 0x0, 0x0, None, None, _t4)
_p25 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t4)
_p26 = (2, 0, 0x2021, 6, 0x0, 0x0, None, None, _t4)
_p27 = (2, 0, 0x2020, 6, 0x0, 0x0, None, None, _t4)
_p28 = (6, 1, 0x2021, 0, _fs(0x1), _fs(0x1), None, None, _t4)
_p29 = (6, 3, 0x2020, 0, _fs(0x1), _fs(0x1), None, None, _t4)
_t5 = {'mnemonic': 'sub', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p30 = (1, 0, 0x2021, 6, 0x0, 0x0, None, None, _t5)
_p31 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t5)
_p32 = (2, 0, 0x2021, 6, 0x0, 0x0, None, None, _t5)
_p33 = (2, 0, 0x2020, 6, 0x0, 0x0, None, None, _t5)
_p34 = (6, 1, 0x2021, 0, _fs(0x1), _fs(0x1), None, None, _t5)
_p35 = (6, 3, 0x2020, 0, _fs(0x1), _fs(0x1), None, None, _t5)
_t6 = {'mnemonic': 'xor', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p36 = (1, 0, 0x2021, 6, 0x0, 0x0, None, None, _t6)
_p37 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t6)
_p38 = (2, 0, 0x2021, 6, 0x0, 0x0, None, None, _t6)
_p39 = (2, 0, 0x2020, 6, 0x0, 0x0, None, None, _t6)
_p40 = (6, 1, 0x2021, 0, _fs(0x1), _fs(0x1), None, None, _t6)
_p41 = (6, 3, 0x2020, 0, _fs(0x1), _fs(0x1), None, None, _t6)
_t7 = {'mnemonic': 'cmp', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p42 = (1, 0, 0x2001, 4, 0x0, 0x0, None, None, _t7)
_p43 = (1, 0, 0x2000, 4, 0x0, 0x0, None, None, _t7)
_p44 = (2, 0, 0x2001, 4, 0x0, 0x0, None, None, _t7)
_p45 = (2, 0, 0x2000, 4, 0x0, 0x0, None, None, _t7)
_p46 = (6, 1, 0x2001, 0, _fs(0x1), _fs(0x0), None, None, _t7)
_p47 = (6, 3, 0x2000, 0, _fs(0x1), _fs(0x0), None, None, _t7)
_t8 = {'mnemonic': 'push', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p48 = (7, 0, 0x2, 1, 0x10, 0x10, None, None, _t8)
_t9 = {'mnemonic': 'pop', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p49 = (7, 0, 0x2, 2, 0x10, 0x10, None, None, _t9)
_t10 = {'mnemonic': 'movsxd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p50 = (2, 0, 0x800, 5, 0x0, 0x0, None, None, _t10)
_p51 = (6, 3, 0x2, 0, _fs(0x10), _fs(0x10), None, None, _t8)
_t11 = {'mnemonic': 'imul', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p52 = (3, 3, 0x2000, 6, 0x0, 0x0, None, None, _t11)
_p53 = (6, 1, 0x2, 0, _fs(0x10), _fs(0x10), None, None, _t8)
_p54 = (3, 1, 0x2000, 6, 0x0, 0x0, None, None, _t11)
_t12 = {'mnemonic': 'insb', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p55 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t12)
_t13 = {'mnemonic': 'insd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p56 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t13)
_t14 = {'mnemonic': 'outsb', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p57 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t14)
_t15 = {'mnemonic': 'outsd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p58 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t15)
_t16 = {'mnemonic': 'j.0', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p59 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t16)
_t17 = {'mnemonic': 'j.1', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p60 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t17)
_t18 = {'mnemonic': 'j.2', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p61 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t18)
_t19 = {'mnemonic': 'j.3', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p62 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t19)
_t20 = {'mnemonic': 'j.4', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p63 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t20)
_t21 = {'mnemonic': 'j.5', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p64 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t21)
_t22 = {'mnemonic': 'j.6', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p65 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t22)
_t23 = {'mnemonic': 'j.7', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p66 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t23)
_t24 = {'mnemonic': 'j.8', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p67 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t24)
_t25 = {'mnemonic': 'j.9', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p68 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t25)
_t26 = {'mnemonic': 'j.10', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p69 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t26)
_t27 = {'mnemonic': 'j.11', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p70 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t27)
_t28 = {'mnemonic': 'j.12', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p71 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t28)
_t29 = {'mnemonic': 'j.13', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p72 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t29)
_t30 = {'mnemonic': 'j.14', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p73 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t30)
_t31 = {'mnemonic': 'j.15', 'flow': _F.CJUMP, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p74 = (9, 1, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t31)
_p75 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t0)
_p76 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t1)
_p77 = (0, 1, 0x3020, 6, 0x0, 0x0, None, None, _t2)
_p78 = (0, 1, 0x3020, 6, 0x0, 0x0, None, None, _t3)
_p79 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t4)
_p80 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t5)
_p81 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t6)
_p82 = (0, 1, 0x2000, 4, 0x0, 0x0, None, None, _t7)
_g0 = (_p75, _p76, _p77, _p78, _p79, _p80, _p81, _p82)
_t32 = {'mnemonic': '', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p83 = (5, 1, 0x1, 6, 0x0, 0x0, _g0, None, _t32)
_p84 = (0, 3, 0x2020, 6, 0x0, 0x0, None, None, _t0)
_p85 = (0, 3, 0x2020, 6, 0x0, 0x0, None, None, _t1)
_p86 = (0, 3, 0x3020, 6, 0x0, 0x0, None, None, _t2)
_p87 = (0, 3, 0x3020, 6, 0x0, 0x0, None, None, _t3)
_p88 = (0, 3, 0x2020, 6, 0x0, 0x0, None, None, _t4)
_p89 = (0, 3, 0x2020, 6, 0x0, 0x0, None, None, _t5)
_p90 = (0, 3, 0x2020, 6, 0x0, 0x0, None, None, _t6)
_p91 = (0, 3, 0x2000, 4, 0x0, 0x0, None, None, _t7)
_g1 = (_p84, _p85, _p86, _p87, _p88, _p89, _p90, _p91)
_p92 = (5, 3, 0x0, 6, 0x0, 0x0, _g1, None, _t32)
_p93 = (5, 1, 0x0, 6, 0x0, 0x0, _g0, None, _t32)
_t33 = {'mnemonic': 'test', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p94 = (1, 0, 0x2001, 4, 0x0, 0x0, None, None, _t33)
_p95 = (1, 0, 0x2000, 4, 0x0, 0x0, None, None, _t33)
_t34 = {'mnemonic': 'xchg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p96 = (1, 0, 0x21, 3, 0x0, 0x0, None, None, _t34)
_p97 = (1, 0, 0x20, 3, 0x0, 0x0, None, None, _t34)
_t35 = {'mnemonic': 'mov', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p98 = (1, 0, 0x1, 5, 0x0, 0x0, None, None, _t35)
_p99 = (1, 0, 0x0, 5, 0x0, 0x0, None, None, _t35)
_p100 = (2, 0, 0x1, 5, 0x0, 0x0, None, None, _t35)
_p101 = (2, 0, 0x0, 5, 0x0, 0x0, None, None, _t35)
_t36 = {'mnemonic': 'mov_sreg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p102 = (1, 0, 0x8, 7, 0x0, 0x0, None, None, _t36)
_t37 = {'mnemonic': 'lea', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p103 = (2, 0, 0x0, 2, 0x0, 0x0, None, None, _t37)
_p104 = (2, 0, 0x8, 7, 0x0, 0x0, None, None, _t36)
_p105 = (0, 0, 0x4, 2, 0x10, 0x10, None, None, _t9)
_g2 = (_p105, None, None, None, None, None, None, None)
_p106 = (4, 0, 0x0, 6, 0x0, 0x0, _g2, None, _t32)
_t38 = {'mnemonic': 'nop', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p107 = (0, 0, 0x10, 0, _fs(0x0), _fs(0x0), None, None, _t38)
_p108 = (7, 0, 0x60, 3, 0x0, 0x0, None, None, _t34)
_t39 = {'mnemonic': 'cwde', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p109 = (0, 0, 0x100, 0, _fs(0x1), _fs(0x1), None, {16: 'cbw', 32: 'cwde', 64: 'cdqe'}, _t39)
_t40 = {'mnemonic': 'cdq', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p110 = (0, 0, 0x100, 0, _fs(0x1), _fs(0x4), None, {16: 'cwd', 32: 'cdq', 64: 'cqo'}, _t40)
_t41 = {'mnemonic': 'fwait', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p111 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t41)
_t42 = {'mnemonic': 'pushf', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p112 = (0, 0, 0x1002, 0, _fs(0x0), _fs(0x0), None, None, _t42)
_t43 = {'mnemonic': 'popf', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p113 = (0, 0, 0x2, 0, _fs(0x0), _fs(0x0), None, None, _t43)
_t44 = {'mnemonic': 'sahf', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p114 = (0, 0, 0x2008, 0, _fs(0x0), _fs(0x0), None, None, _t44)
_t45 = {'mnemonic': 'lahf', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': True}
_p115 = (0, 0, 0x1008, 0, _fs(0x0), _fs(0x0), None, None, _t45)
_t46 = {'mnemonic': 'mov_moffs', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p116 = (10, 0, 0x4009, 0, _fs(0x0), _fs(0x0), None, None, _t46)
_p117 = (10, 0, 0x4008, 0, _fs(0x0), _fs(0x0), None, None, _t46)
_t47 = {'mnemonic': 'movs', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p118 = (0, 0, 0x1, 0, _fs(0xc0), _fs(0xc0), None, None, _t47)
_p119 = (0, 0, 0x0, 0, _fs(0xc0), _fs(0xc0), None, None, _t47)
_t48 = {'mnemonic': 'cmps', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p120 = (0, 0, 0x9, 0, _fs(0xc0), _fs(0xc0), None, None, _t48)
_p121 = (0, 0, 0x8, 0, _fs(0xc0), _fs(0xc0), None, None, _t48)
_p122 = (6, 1, 0x2001, 0, _fs(0x1), _fs(0x0), None, None, _t33)
_p123 = (6, 3, 0x2000, 0, _fs(0x1), _fs(0x0), None, None, _t33)
_t49 = {'mnemonic': 'stos', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p124 = (0, 0, 0x1, 0, _fs(0x81), _fs(0x80), None, None, _t49)
_p125 = (0, 0, 0x0, 0, _fs(0x81), _fs(0x80), None, None, _t49)
_t50 = {'mnemonic': 'lods', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p126 = (0, 0, 0x9, 0, _fs(0x40), _fs(0x41), None, None, _t50)
_p127 = (0, 0, 0x8, 0, _fs(0x40), _fs(0x41), None, None, _t50)
_t51 = {'mnemonic': 'scas', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p128 = (0, 0, 0x9, 0, _fs(0x81), _fs(0x80), None, None, _t51)
_p129 = (0, 0, 0x8, 0, _fs(0x81), _fs(0x80), None, None, _t51)
_p130 = (8, 1, 0x1, 5, 0x0, 0x0, None, None, _t35)
_p131 = (8, 4, 0x0, 5, 0x0, 0x0, None, None, _t35)
_t52 = {'mnemonic': 'rol', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p132 = (0, 1, 0x2000, 6, 0x0, 0x0, None, None, _t52)
_t53 = {'mnemonic': 'ror', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p133 = (0, 1, 0x2000, 6, 0x0, 0x0, None, None, _t53)
_t54 = {'mnemonic': 'rcl', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': True, 'rare': False}
_p134 = (0, 1, 0x3000, 6, 0x0, 0x0, None, None, _t54)
_t55 = {'mnemonic': 'rcr', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': True, 'rare': False}
_p135 = (0, 1, 0x3000, 6, 0x0, 0x0, None, None, _t55)
_t56 = {'mnemonic': 'shl', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p136 = (0, 1, 0x2000, 6, 0x0, 0x0, None, None, _t56)
_t57 = {'mnemonic': 'shr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p137 = (0, 1, 0x2000, 6, 0x0, 0x0, None, None, _t57)
_t58 = {'mnemonic': 'sar', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p138 = (0, 1, 0x2000, 6, 0x0, 0x0, None, None, _t58)
_g3 = (_p132, _p133, _p134, _p135, _p136, _p137, None, _p138)
_p139 = (5, 1, 0x1, 6, 0x0, 0x0, _g3, None, _t32)
_p140 = (5, 1, 0x0, 6, 0x0, 0x0, _g3, None, _t32)
_t59 = {'mnemonic': 'ret', 'flow': _F.RET, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p141 = (6, 2, 0x0, 0, _fs(0x10), _fs(0x10), None, None, _t59)
_p142 = (0, 0, 0x0, 0, _fs(0x10), _fs(0x10), None, None, _t59)
_p143 = (0, 1, 0x0, 5, 0x0, 0x0, None, None, _t35)
_g4 = (_p143, None, None, None, None, None, None, None)
_p144 = (5, 1, 0x1, 6, 0x0, 0x0, _g4, None, _t32)
_p145 = (0, 3, 0x0, 5, 0x0, 0x0, None, None, _t35)
_g5 = (_p145, None, None, None, None, None, None, None)
_p146 = (5, 3, 0x0, 6, 0x0, 0x0, _g5, None, _t32)
_t60 = {'mnemonic': 'enter', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p147 = (11, 0, 0x4008, 0, _fs(0x30), _fs(0x30), None, None, _t60)
_t61 = {'mnemonic': 'leave', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p148 = (0, 0, 0x0, 0, _fs(0x20), _fs(0x30), None, None, _t61)
_t62 = {'mnemonic': 'retf', 'flow': _F.RET, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p149 = (6, 2, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t62)
_p150 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t62)
_t63 = {'mnemonic': 'int3', 'flow': _F.TRAP, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p151 = (0, 0, 0x0, 0, _fs(0x0), _fs(0x0), None, None, _t63)
_t64 = {'mnemonic': 'int', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p152 = (6, 1, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t64)
_t65 = {'mnemonic': 'iret', 'flow': _F.RET, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p153 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t65)
_p154 = (0, 0, 0x2080, 6, 0x0, 0x0, None, None, _t52)
_p155 = (0, 0, 0x2080, 6, 0x0, 0x0, None, None, _t53)
_p156 = (0, 0, 0x3080, 6, 0x0, 0x0, None, None, _t54)
_p157 = (0, 0, 0x3080, 6, 0x0, 0x0, None, None, _t55)
_p158 = (0, 0, 0x2080, 6, 0x0, 0x0, None, None, _t56)
_p159 = (0, 0, 0x2080, 6, 0x0, 0x0, None, None, _t57)
_p160 = (0, 0, 0x2080, 6, 0x0, 0x0, None, None, _t58)
_g6 = (_p154, _p155, _p156, _p157, _p158, _p159, None, _p160)
_p161 = (4, 0, 0x1, 6, 0x0, 0x0, _g6, None, _t32)
_p162 = (4, 0, 0x0, 6, 0x0, 0x0, _g6, None, _t32)
_p163 = (0, 0, 0x2000, 6, 0x2, 0x0, None, None, _t52)
_p164 = (0, 0, 0x2000, 6, 0x2, 0x0, None, None, _t53)
_p165 = (0, 0, 0x3000, 6, 0x2, 0x0, None, None, _t54)
_p166 = (0, 0, 0x3000, 6, 0x2, 0x0, None, None, _t55)
_p167 = (0, 0, 0x2000, 6, 0x2, 0x0, None, None, _t56)
_p168 = (0, 0, 0x2000, 6, 0x2, 0x0, None, None, _t57)
_p169 = (0, 0, 0x2000, 6, 0x2, 0x0, None, None, _t58)
_g7 = (_p163, _p164, _p165, _p166, _p167, _p168, None, _p169)
_p170 = (4, 0, 0x1, 6, 0x0, 0x0, _g7, None, _t32)
_p171 = (4, 0, 0x0, 6, 0x0, 0x0, _g7, None, _t32)
_t66 = {'mnemonic': 'xlat', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p172 = (0, 0, 0x8, 0, _fs(0x9), _fs(0x1), None, None, _t66)
_t67 = {'mnemonic': 'x87', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p173 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t67)
_g8 = (_p173, _p173, _p173, _p173, _p173, _p173, _p173, _p173)
_p174 = (4, 0, 0x8, 7, 0x0, 0x0, _g8, None, _t67)
_t68 = {'mnemonic': 'loopne', 'flow': _F.CJUMP, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p175 = (9, 1, 0x8, 0, _fs(0x2), _fs(0x2), None, None, _t68)
_t69 = {'mnemonic': 'loope', 'flow': _F.CJUMP, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p176 = (9, 1, 0x8, 0, _fs(0x2), _fs(0x2), None, None, _t69)
_t70 = {'mnemonic': 'loop', 'flow': _F.CJUMP, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p177 = (9, 1, 0x8, 0, _fs(0x2), _fs(0x2), None, None, _t70)
_t71 = {'mnemonic': 'jrcxz', 'flow': _F.CJUMP, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p178 = (9, 1, 0x8, 0, _fs(0x2), _fs(0x0), None, None, _t71)
_t72 = {'mnemonic': 'in', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p179 = (6, 1, 0x9, 0, _fs(0x4), _fs(0x1), None, None, _t72)
_p180 = (6, 1, 0x8, 0, _fs(0x4), _fs(0x1), None, None, _t72)
_t73 = {'mnemonic': 'out', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p181 = (6, 1, 0x9, 0, _fs(0x5), _fs(0x0), None, None, _t73)
_p182 = (6, 1, 0x8, 0, _fs(0x5), _fs(0x0), None, None, _t73)
_t74 = {'mnemonic': 'call', 'flow': _F.CALL, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p183 = (9, 3, 0x0, 0, _fs(0x10), _fs(0x10), None, None, _t74)
_t75 = {'mnemonic': 'jmp', 'flow': _F.JUMP, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p184 = (9, 3, 0x0, 0, _fs(0x0), _fs(0x0), None, None, _t75)
_p185 = (9, 1, 0x0, 0, _fs(0x0), _fs(0x0), None, None, _t75)
_p186 = (0, 0, 0x9, 0, _fs(0x4), _fs(0x1), None, None, _t72)
_p187 = (0, 0, 0x8, 0, _fs(0x4), _fs(0x1), None, None, _t72)
_p188 = (0, 0, 0x9, 0, _fs(0x5), _fs(0x0), None, None, _t73)
_p189 = (0, 0, 0x8, 0, _fs(0x5), _fs(0x0), None, None, _t73)
_t76 = {'mnemonic': 'int1', 'flow': _F.TRAP, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p190 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t76)
_t77 = {'mnemonic': 'hlt', 'flow': _F.HALT, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p191 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t77)
_t78 = {'mnemonic': 'cmc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p192 = (0, 0, 0x2008, 0, _fs(0x0), _fs(0x0), None, None, _t78)
_p193 = (0, 1, 0x2000, 4, 0x0, 0x0, None, None, _t33)
_t79 = {'mnemonic': 'not', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p194 = (0, 0, 0x20, 6, 0x0, 0x0, None, None, _t79)
_t80 = {'mnemonic': 'neg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p195 = (0, 0, 0x2020, 6, 0x0, 0x0, None, None, _t80)
_t81 = {'mnemonic': 'mul', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p196 = (0, 0, 0x2000, 1, 0x1, 0x5, None, None, _t81)
_t82 = {'mnemonic': 'imul1', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p197 = (0, 0, 0x2000, 1, 0x1, 0x5, None, None, _t82)
_t83 = {'mnemonic': 'div', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p198 = (0, 0, 0x2000, 1, 0x5, 0x5, None, None, _t83)
_t84 = {'mnemonic': 'idiv', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p199 = (0, 0, 0x2000, 1, 0x5, 0x5, None, None, _t84)
_g9 = (_p193, _p193, _p194, _p195, _p196, _p197, _p198, _p199)
_p200 = (4, 0, 0x1, 6, 0x0, 0x0, _g9, None, _t32)
_p201 = (0, 3, 0x2000, 4, 0x0, 0x0, None, None, _t33)
_g10 = (_p201, _p201, _p194, _p195, _p196, _p197, _p198, _p199)
_p202 = (4, 0, 0x0, 6, 0x0, 0x0, _g10, None, _t32)
_t85 = {'mnemonic': 'clc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p203 = (0, 0, 0x2008, 0, _fs(0x0), _fs(0x0), None, None, _t85)
_t86 = {'mnemonic': 'stc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p204 = (0, 0, 0x2008, 0, _fs(0x0), _fs(0x0), None, None, _t86)
_t87 = {'mnemonic': 'cli', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p205 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t87)
_t88 = {'mnemonic': 'sti', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p206 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t88)
_t89 = {'mnemonic': 'cld', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p207 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t89)
_t90 = {'mnemonic': 'std', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p208 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t90)
_t91 = {'mnemonic': 'inc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p209 = (0, 0, 0x2020, 6, 0x0, 0x0, None, None, _t91)
_t92 = {'mnemonic': 'dec', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p210 = (0, 0, 0x2020, 6, 0x0, 0x0, None, None, _t92)
_g11 = (_p209, _p210, None, None, None, None, None, None)
_p211 = (4, 0, 0x1, 6, 0x0, 0x0, _g11, None, _t32)
_t93 = {'mnemonic': 'call', 'flow': _F.ICALL, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p212 = (0, 0, 0x4, 1, 0x10, 0x10, None, None, _t93)
_t94 = {'mnemonic': 'jmp', 'flow': _F.IJUMP, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p213 = (0, 0, 0x4, 1, 0x0, 0x0, None, None, _t94)
_p214 = (0, 0, 0x4, 1, 0x10, 0x10, None, None, _t8)
_g12 = (_p209, _p210, _p212, None, _p213, None, _p214, None)
_p215 = (4, 0, 0x0, 6, 0x0, 0x0, _g12, None, _t32)
_t95 = {'mnemonic': 'sldt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p216 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t95)
_t96 = {'mnemonic': 'str', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p217 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t96)
_t97 = {'mnemonic': 'lldt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p218 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t97)
_t98 = {'mnemonic': 'ltr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p219 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t98)
_t99 = {'mnemonic': 'verr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p220 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t99)
_t100 = {'mnemonic': 'verw', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p221 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t100)
_g13 = (_p216, _p217, _p218, _p219, _p220, _p221, None, None)
_t101 = {'mnemonic': '', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p222 = (4, 0, 0x8, 6, 0x0, 0x0, _g13, None, _t101)
_t102 = {'mnemonic': 'sgdt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p223 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t102)
_t103 = {'mnemonic': 'sidt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p224 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t103)
_t104 = {'mnemonic': 'lgdt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p225 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t104)
_t105 = {'mnemonic': 'lidt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p226 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t105)
_t106 = {'mnemonic': 'smsw', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p227 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t106)
_t107 = {'mnemonic': 'lmsw', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p228 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t107)
_t108 = {'mnemonic': 'invlpg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p229 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t108)
_g14 = (_p223, _p224, _p225, _p226, _p227, None, _p228, _p229)
_p230 = (4, 0, 0x8, 6, 0x0, 0x0, _g14, None, _t101)
_t109 = {'mnemonic': 'lar', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p231 = (2, 0, 0x8, 6, 0x0, 0x0, None, None, _t109)
_t110 = {'mnemonic': 'lsl', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p232 = (2, 0, 0x8, 6, 0x0, 0x0, None, None, _t110)
_t111 = {'mnemonic': 'syscall', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p233 = (0, 0, 0x0, 0, _fs(0xc5), _fs(0x3), None, None, _t111)
_t112 = {'mnemonic': 'clts', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p234 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t112)
_t113 = {'mnemonic': 'ud2', 'flow': _F.HALT, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p235 = (0, 0, 0x0, 0, _fs(0x0), _fs(0x0), None, None, _t113)
_t114 = {'mnemonic': 'prefetch', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p236 = (0, 0, 0x18, 7, 0x0, 0x0, None, None, _t114)
_g15 = (_p236, _p236, _p236, _p236, _p236, _p236, _p236, _p236)
_p237 = (4, 0, 0x18, 7, 0x0, 0x0, _g15, None, _t114)
_t115 = {'mnemonic': 'simd.10', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p238 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t115)
_t116 = {'mnemonic': 'simd.11', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p239 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t116)
_t117 = {'mnemonic': 'simd.12', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p240 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t117)
_t118 = {'mnemonic': 'simd.13', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p241 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t118)
_t119 = {'mnemonic': 'simd.14', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p242 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t119)
_t120 = {'mnemonic': 'simd.15', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p243 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t120)
_t121 = {'mnemonic': 'simd.16', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p244 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t121)
_t122 = {'mnemonic': 'simd.17', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p245 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t122)
_p246 = (0, 0, 0x10, 7, 0x0, 0x0, None, None, _t38)
_g16 = (_p246, _p246, _p246, _p246, _p246, _p246, _p246, _p246)
_t123 = {'mnemonic': 'hintnop', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p247 = (4, 0, 0x0, 6, 0x0, 0x0, _g16, None, _t123)
_t124 = {'mnemonic': 'simd.28', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p248 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t124)
_t125 = {'mnemonic': 'simd.29', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p249 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t125)
_t126 = {'mnemonic': 'simd.2a', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p250 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t126)
_t127 = {'mnemonic': 'simd.2b', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p251 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t127)
_t128 = {'mnemonic': 'simd.2c', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p252 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t128)
_t129 = {'mnemonic': 'simd.2d', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p253 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t129)
_t130 = {'mnemonic': 'simd.2e', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p254 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t130)
_t131 = {'mnemonic': 'simd.2f', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p255 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t131)
_t132 = {'mnemonic': 'wrmsr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p256 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t132)
_t133 = {'mnemonic': 'rdtsc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p257 = (0, 0, 0x0, 0, _fs(0x0), _fs(0x5), None, None, _t133)
_t134 = {'mnemonic': 'rdmsr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p258 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t134)
_t135 = {'mnemonic': 'rdpmc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p259 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t135)
_t136 = {'mnemonic': 'sysenter', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p260 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t136)
_t137 = {'mnemonic': 'sysexit', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p261 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t137)
_t138 = {'mnemonic': 'cmov.0', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p262 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t138)
_t139 = {'mnemonic': 'cmov.1', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p263 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t139)
_t140 = {'mnemonic': 'cmov.2', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p264 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t140)
_t141 = {'mnemonic': 'cmov.3', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p265 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t141)
_t142 = {'mnemonic': 'cmov.4', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p266 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t142)
_t143 = {'mnemonic': 'cmov.5', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p267 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t143)
_t144 = {'mnemonic': 'cmov.6', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p268 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t144)
_t145 = {'mnemonic': 'cmov.7', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p269 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t145)
_t146 = {'mnemonic': 'cmov.8', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p270 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t146)
_t147 = {'mnemonic': 'cmov.9', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p271 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t147)
_t148 = {'mnemonic': 'cmov.10', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p272 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t148)
_t149 = {'mnemonic': 'cmov.11', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p273 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t149)
_t150 = {'mnemonic': 'cmov.12', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p274 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t150)
_t151 = {'mnemonic': 'cmov.13', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p275 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t151)
_t152 = {'mnemonic': 'cmov.14', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p276 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t152)
_t153 = {'mnemonic': 'cmov.15', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p277 = (2, 0, 0x1000, 6, 0x0, 0x0, None, None, _t153)
_t154 = {'mnemonic': 'simd.50', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p278 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t154)
_t155 = {'mnemonic': 'simd.51', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p279 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t155)
_t156 = {'mnemonic': 'simd.52', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p280 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t156)
_t157 = {'mnemonic': 'simd.53', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p281 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t157)
_t158 = {'mnemonic': 'simd.54', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p282 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t158)
_t159 = {'mnemonic': 'simd.55', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p283 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t159)
_t160 = {'mnemonic': 'simd.56', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p284 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t160)
_t161 = {'mnemonic': 'simd.57', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p285 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t161)
_t162 = {'mnemonic': 'simd.58', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p286 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t162)
_t163 = {'mnemonic': 'simd.59', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p287 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t163)
_t164 = {'mnemonic': 'simd.5a', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p288 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t164)
_t165 = {'mnemonic': 'simd.5b', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p289 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t165)
_t166 = {'mnemonic': 'simd.5c', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p290 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t166)
_t167 = {'mnemonic': 'simd.5d', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p291 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t167)
_t168 = {'mnemonic': 'simd.5e', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p292 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t168)
_t169 = {'mnemonic': 'simd.5f', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p293 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t169)
_t170 = {'mnemonic': 'simd.60', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p294 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t170)
_t171 = {'mnemonic': 'simd.61', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p295 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t171)
_t172 = {'mnemonic': 'simd.62', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p296 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t172)
_t173 = {'mnemonic': 'simd.63', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p297 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t173)
_t174 = {'mnemonic': 'simd.64', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p298 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t174)
_t175 = {'mnemonic': 'simd.65', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p299 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t175)
_t176 = {'mnemonic': 'simd.66', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p300 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t176)
_t177 = {'mnemonic': 'simd.67', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p301 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t177)
_t178 = {'mnemonic': 'simd.68', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p302 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t178)
_t179 = {'mnemonic': 'simd.69', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p303 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t179)
_t180 = {'mnemonic': 'simd.6a', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p304 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t180)
_t181 = {'mnemonic': 'simd.6b', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p305 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t181)
_t182 = {'mnemonic': 'simd.6c', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p306 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t182)
_t183 = {'mnemonic': 'simd.6d', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p307 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t183)
_t184 = {'mnemonic': 'simd.6e', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p308 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t184)
_t185 = {'mnemonic': 'simd.6f', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p309 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t185)
_t186 = {'mnemonic': 'simd.70', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p310 = (3, 1, 0x0, 7, 0x0, 0x0, None, None, _t186)
_t187 = {'mnemonic': 'simd.71', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p311 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t187)
_t188 = {'mnemonic': 'simd.72', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p312 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t188)
_t189 = {'mnemonic': 'simd.73', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p313 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t189)
_t190 = {'mnemonic': 'simd.74', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p314 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t190)
_t191 = {'mnemonic': 'simd.75', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p315 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t191)
_t192 = {'mnemonic': 'simd.76', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p316 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t192)
_t193 = {'mnemonic': 'emms', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p317 = (0, 0, 0x8, 0, _fs(0x0), _fs(0x0), None, None, _t193)
_t194 = {'mnemonic': 'simd.7c', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p318 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t194)
_t195 = {'mnemonic': 'simd.7d', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p319 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t195)
_t196 = {'mnemonic': 'simd.7e', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p320 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t196)
_t197 = {'mnemonic': 'simd.7f', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p321 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t197)
_p322 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t16)
_p323 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t17)
_p324 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t18)
_p325 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t19)
_p326 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t20)
_p327 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t21)
_p328 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t22)
_p329 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t23)
_p330 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t24)
_p331 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t25)
_p332 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t26)
_p333 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t27)
_p334 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t28)
_p335 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t29)
_p336 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t30)
_p337 = (9, 3, 0x1000, 0, _fs(0x0), _fs(0x0), None, None, _t31)
_t198 = {'mnemonic': 'set.0', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p338 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t198)
_g17 = (_p338, _p338, _p338, _p338, _p338, _p338, _p338, _p338)
_p339 = (4, 0, 0x1001, 5, 0x0, 0x0, _g17, None, _t198)
_t199 = {'mnemonic': 'set.1', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p340 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t199)
_g18 = (_p340, _p340, _p340, _p340, _p340, _p340, _p340, _p340)
_p341 = (4, 0, 0x1001, 5, 0x0, 0x0, _g18, None, _t199)
_t200 = {'mnemonic': 'set.2', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p342 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t200)
_g19 = (_p342, _p342, _p342, _p342, _p342, _p342, _p342, _p342)
_p343 = (4, 0, 0x1001, 5, 0x0, 0x0, _g19, None, _t200)
_t201 = {'mnemonic': 'set.3', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p344 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t201)
_g20 = (_p344, _p344, _p344, _p344, _p344, _p344, _p344, _p344)
_p345 = (4, 0, 0x1001, 5, 0x0, 0x0, _g20, None, _t201)
_t202 = {'mnemonic': 'set.4', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p346 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t202)
_g21 = (_p346, _p346, _p346, _p346, _p346, _p346, _p346, _p346)
_p347 = (4, 0, 0x1001, 5, 0x0, 0x0, _g21, None, _t202)
_t203 = {'mnemonic': 'set.5', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p348 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t203)
_g22 = (_p348, _p348, _p348, _p348, _p348, _p348, _p348, _p348)
_p349 = (4, 0, 0x1001, 5, 0x0, 0x0, _g22, None, _t203)
_t204 = {'mnemonic': 'set.6', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p350 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t204)
_g23 = (_p350, _p350, _p350, _p350, _p350, _p350, _p350, _p350)
_p351 = (4, 0, 0x1001, 5, 0x0, 0x0, _g23, None, _t204)
_t205 = {'mnemonic': 'set.7', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p352 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t205)
_g24 = (_p352, _p352, _p352, _p352, _p352, _p352, _p352, _p352)
_p353 = (4, 0, 0x1001, 5, 0x0, 0x0, _g24, None, _t205)
_t206 = {'mnemonic': 'set.8', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p354 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t206)
_g25 = (_p354, _p354, _p354, _p354, _p354, _p354, _p354, _p354)
_p355 = (4, 0, 0x1001, 5, 0x0, 0x0, _g25, None, _t206)
_t207 = {'mnemonic': 'set.9', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p356 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t207)
_g26 = (_p356, _p356, _p356, _p356, _p356, _p356, _p356, _p356)
_p357 = (4, 0, 0x1001, 5, 0x0, 0x0, _g26, None, _t207)
_t208 = {'mnemonic': 'set.10', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p358 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t208)
_g27 = (_p358, _p358, _p358, _p358, _p358, _p358, _p358, _p358)
_p359 = (4, 0, 0x1001, 5, 0x0, 0x0, _g27, None, _t208)
_t209 = {'mnemonic': 'set.11', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p360 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t209)
_g28 = (_p360, _p360, _p360, _p360, _p360, _p360, _p360, _p360)
_p361 = (4, 0, 0x1001, 5, 0x0, 0x0, _g28, None, _t209)
_t210 = {'mnemonic': 'set.12', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p362 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t210)
_g29 = (_p362, _p362, _p362, _p362, _p362, _p362, _p362, _p362)
_p363 = (4, 0, 0x1001, 5, 0x0, 0x0, _g29, None, _t210)
_t211 = {'mnemonic': 'set.13', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p364 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t211)
_g30 = (_p364, _p364, _p364, _p364, _p364, _p364, _p364, _p364)
_p365 = (4, 0, 0x1001, 5, 0x0, 0x0, _g30, None, _t211)
_t212 = {'mnemonic': 'set.14', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p366 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t212)
_g31 = (_p366, _p366, _p366, _p366, _p366, _p366, _p366, _p366)
_p367 = (4, 0, 0x1001, 5, 0x0, 0x0, _g31, None, _t212)
_t213 = {'mnemonic': 'set.15', 'flow': _F.SEQ, 'reads_flags': True, 'writes_flags': False, 'rare': False}
_p368 = (0, 0, 0x1000, 5, 0x0, 0x0, None, None, _t213)
_g32 = (_p368, _p368, _p368, _p368, _p368, _p368, _p368, _p368)
_p369 = (4, 0, 0x1001, 5, 0x0, 0x0, _g32, None, _t213)
_t214 = {'mnemonic': 'push_sreg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p370 = (0, 0, 0xa, 0, _fs(0x0), _fs(0x0), None, None, _t214)
_t215 = {'mnemonic': 'pop_sreg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p371 = (0, 0, 0xa, 0, _fs(0x0), _fs(0x0), None, None, _t215)
_t216 = {'mnemonic': 'cpuid', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p372 = (0, 0, 0x0, 0, _fs(0x3), _fs(0xf), None, None, _t216)
_t217 = {'mnemonic': 'bt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p373 = (1, 0, 0x2000, 4, 0x0, 0x0, None, None, _t217)
_t218 = {'mnemonic': 'shld', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p374 = (1, 1, 0x2000, 6, 0x0, 0x0, None, None, _t218)
_p375 = (1, 0, 0x2000, 6, 0x0, 0x0, None, None, _t218)
_t219 = {'mnemonic': 'bts', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p376 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t219)
_t220 = {'mnemonic': 'shrd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p377 = (1, 1, 0x2000, 6, 0x0, 0x0, None, None, _t220)
_p378 = (1, 0, 0x2000, 6, 0x0, 0x0, None, None, _t220)
_t221 = {'mnemonic': 'fence', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p379 = (0, 0, 0x8, 7, 0x0, 0x0, None, None, _t221)
_g33 = (_p379, _p379, _p379, _p379, _p379, _p379, _p379, _p379)
_p380 = (4, 0, 0x8, 7, 0x0, 0x0, _g33, None, _t221)
_p381 = (2, 0, 0x2000, 6, 0x0, 0x0, None, None, _t11)
_t222 = {'mnemonic': 'cmpxchg', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p382 = (1, 0, 0x2029, 6, 0x0, 0x0, None, None, _t222)
_p383 = (1, 0, 0x2028, 6, 0x0, 0x0, None, None, _t222)
_t223 = {'mnemonic': 'btr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p384 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t223)
_t224 = {'mnemonic': 'movzx', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p385 = (2, 0, 0x200, 5, 0x0, 0x0, None, None, _t224)
_p386 = (2, 0, 0x400, 5, 0x0, 0x0, None, None, _t224)
_t225 = {'mnemonic': 'popcnt', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p387 = (2, 0, 0x2000, 6, 0x0, 0x0, None, None, _t225)
_p388 = (0, 1, 0x2000, 4, 0x0, 0x0, None, None, _t217)
_p389 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t219)
_p390 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t223)
_t226 = {'mnemonic': 'btc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p391 = (0, 1, 0x2020, 6, 0x0, 0x0, None, None, _t226)
_g34 = (None, None, None, None, _p388, _p389, _p390, _p391)
_p392 = (5, 1, 0x0, 6, 0x0, 0x0, _g34, None, _t32)
_p393 = (1, 0, 0x2020, 6, 0x0, 0x0, None, None, _t226)
_t227 = {'mnemonic': 'bsf', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p394 = (2, 0, 0x2000, 6, 0x0, 0x0, None, None, _t227)
_t228 = {'mnemonic': 'bsr', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': False}
_p395 = (2, 0, 0x2000, 6, 0x0, 0x0, None, None, _t228)
_t229 = {'mnemonic': 'movsx', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p396 = (2, 0, 0x200, 5, 0x0, 0x0, None, None, _t229)
_p397 = (2, 0, 0x400, 5, 0x0, 0x0, None, None, _t229)
_t230 = {'mnemonic': 'xadd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': True, 'rare': True}
_p398 = (1, 0, 0x2029, 6, 0x0, 0x0, None, None, _t230)
_p399 = (1, 0, 0x2028, 6, 0x0, 0x0, None, None, _t230)
_t231 = {'mnemonic': 'movnti', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p400 = (1, 0, 0x0, 5, 0x0, 0x0, None, None, _t231)
_t232 = {'mnemonic': 'cmpxchg8b', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p401 = (0, 0, 0x28, 7, 0x0, 0x0, None, None, _t232)
_t233 = {'mnemonic': 'rdrand', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p402 = (0, 0, 0x8, 6, 0x0, 0x0, None, None, _t233)
_t234 = {'mnemonic': 'rdseed', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': True}
_p403 = (0, 0, 0x8, 6, 0x0, 0x0, None, None, _t234)
_g35 = (None, _p401, None, None, None, None, _p402, _p403)
_p404 = (4, 0, 0x8, 6, 0x0, 0x0, _g35, None, _t101)
_t235 = {'mnemonic': 'bswap', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p405 = (7, 0, 0x0, 6, 0x0, 0x0, None, None, _t235)
_t236 = {'mnemonic': 'simd.d0', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p406 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t236)
_t237 = {'mnemonic': 'simd.d1', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p407 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t237)
_t238 = {'mnemonic': 'simd.d2', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p408 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t238)
_t239 = {'mnemonic': 'simd.d3', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p409 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t239)
_t240 = {'mnemonic': 'simd.d4', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p410 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t240)
_t241 = {'mnemonic': 'simd.d5', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p411 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t241)
_t242 = {'mnemonic': 'simd.d6', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p412 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t242)
_t243 = {'mnemonic': 'simd.d8', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p413 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t243)
_t244 = {'mnemonic': 'simd.d9', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p414 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t244)
_t245 = {'mnemonic': 'simd.da', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p415 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t245)
_t246 = {'mnemonic': 'simd.db', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p416 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t246)
_t247 = {'mnemonic': 'simd.dc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p417 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t247)
_t248 = {'mnemonic': 'simd.dd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p418 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t248)
_t249 = {'mnemonic': 'simd.de', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p419 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t249)
_t250 = {'mnemonic': 'simd.df', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p420 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t250)
_t251 = {'mnemonic': 'simd.e0', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p421 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t251)
_t252 = {'mnemonic': 'simd.e1', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p422 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t252)
_t253 = {'mnemonic': 'simd.e2', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p423 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t253)
_t254 = {'mnemonic': 'simd.e3', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p424 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t254)
_t255 = {'mnemonic': 'simd.e4', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p425 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t255)
_t256 = {'mnemonic': 'simd.e5', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p426 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t256)
_t257 = {'mnemonic': 'simd.e6', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p427 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t257)
_t258 = {'mnemonic': 'simd.e7', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p428 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t258)
_t259 = {'mnemonic': 'simd.e8', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p429 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t259)
_t260 = {'mnemonic': 'simd.e9', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p430 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t260)
_t261 = {'mnemonic': 'simd.ea', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p431 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t261)
_t262 = {'mnemonic': 'simd.eb', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p432 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t262)
_t263 = {'mnemonic': 'simd.ec', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p433 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t263)
_t264 = {'mnemonic': 'simd.ed', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p434 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t264)
_t265 = {'mnemonic': 'simd.ee', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p435 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t265)
_t266 = {'mnemonic': 'simd.ef', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p436 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t266)
_t267 = {'mnemonic': 'simd.f1', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p437 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t267)
_t268 = {'mnemonic': 'simd.f2', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p438 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t268)
_t269 = {'mnemonic': 'simd.f3', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p439 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t269)
_t270 = {'mnemonic': 'simd.f4', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p440 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t270)
_t271 = {'mnemonic': 'simd.f5', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p441 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t271)
_t272 = {'mnemonic': 'simd.f6', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p442 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t272)
_t273 = {'mnemonic': 'simd.f7', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p443 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t273)
_t274 = {'mnemonic': 'simd.f8', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p444 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t274)
_t275 = {'mnemonic': 'simd.f9', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p445 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t275)
_t276 = {'mnemonic': 'simd.fa', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p446 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t276)
_t277 = {'mnemonic': 'simd.fb', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p447 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t277)
_t278 = {'mnemonic': 'simd.fc', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p448 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t278)
_t279 = {'mnemonic': 'simd.fd', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p449 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t279)
_t280 = {'mnemonic': 'simd.fe', 'flow': _F.SEQ, 'reads_flags': False, 'writes_flags': False, 'rare': False}
_p450 = (2, 0, 0x0, 7, 0x0, 0x0, None, None, _t280)

# Dense opcode dispatch: plan (or None) per opcode byte.
_P1 = (
    _p0,  # 0x00 add
    _p1,  # 0x01 add
    _p2,  # 0x02 add
    _p3,  # 0x03 add
    _p4,  # 0x04 add
    _p5,  # 0x05 add
    None,  # 0x06 invalid
    None,  # 0x07 invalid
    _p6,  # 0x08 or
    _p7,  # 0x09 or
    _p8,  # 0x0a or
    _p9,  # 0x0b or
    _p10,  # 0x0c or
    _p11,  # 0x0d or
    None,  # 0x0e invalid
    None,  # 0x0f invalid
    _p12,  # 0x10 adc
    _p13,  # 0x11 adc
    _p14,  # 0x12 adc
    _p15,  # 0x13 adc
    _p16,  # 0x14 adc
    _p17,  # 0x15 adc
    None,  # 0x16 invalid
    None,  # 0x17 invalid
    _p18,  # 0x18 sbb
    _p19,  # 0x19 sbb
    _p20,  # 0x1a sbb
    _p21,  # 0x1b sbb
    _p22,  # 0x1c sbb
    _p23,  # 0x1d sbb
    None,  # 0x1e invalid
    None,  # 0x1f invalid
    _p24,  # 0x20 and
    _p25,  # 0x21 and
    _p26,  # 0x22 and
    _p27,  # 0x23 and
    _p28,  # 0x24 and
    _p29,  # 0x25 and
    None,  # 0x26 invalid
    None,  # 0x27 invalid
    _p30,  # 0x28 sub
    _p31,  # 0x29 sub
    _p32,  # 0x2a sub
    _p33,  # 0x2b sub
    _p34,  # 0x2c sub
    _p35,  # 0x2d sub
    None,  # 0x2e invalid
    None,  # 0x2f invalid
    _p36,  # 0x30 xor
    _p37,  # 0x31 xor
    _p38,  # 0x32 xor
    _p39,  # 0x33 xor
    _p40,  # 0x34 xor
    _p41,  # 0x35 xor
    None,  # 0x36 invalid
    None,  # 0x37 invalid
    _p42,  # 0x38 cmp
    _p43,  # 0x39 cmp
    _p44,  # 0x3a cmp
    _p45,  # 0x3b cmp
    _p46,  # 0x3c cmp
    _p47,  # 0x3d cmp
    None,  # 0x3e invalid
    None,  # 0x3f invalid
    None,  # 0x40 invalid
    None,  # 0x41 invalid
    None,  # 0x42 invalid
    None,  # 0x43 invalid
    None,  # 0x44 invalid
    None,  # 0x45 invalid
    None,  # 0x46 invalid
    None,  # 0x47 invalid
    None,  # 0x48 invalid
    None,  # 0x49 invalid
    None,  # 0x4a invalid
    None,  # 0x4b invalid
    None,  # 0x4c invalid
    None,  # 0x4d invalid
    None,  # 0x4e invalid
    None,  # 0x4f invalid
    _p48,  # 0x50 push
    _p48,  # 0x51 push
    _p48,  # 0x52 push
    _p48,  # 0x53 push
    _p48,  # 0x54 push
    _p48,  # 0x55 push
    _p48,  # 0x56 push
    _p48,  # 0x57 push
    _p49,  # 0x58 pop
    _p49,  # 0x59 pop
    _p49,  # 0x5a pop
    _p49,  # 0x5b pop
    _p49,  # 0x5c pop
    _p49,  # 0x5d pop
    _p49,  # 0x5e pop
    _p49,  # 0x5f pop
    None,  # 0x60 invalid
    None,  # 0x61 invalid
    None,  # 0x62 invalid
    _p50,  # 0x63 movsxd
    None,  # 0x64 invalid
    None,  # 0x65 invalid
    None,  # 0x66 invalid
    None,  # 0x67 invalid
    _p51,  # 0x68 push
    _p52,  # 0x69 imul
    _p53,  # 0x6a push
    _p54,  # 0x6b imul
    _p55,  # 0x6c insb
    _p56,  # 0x6d insd
    _p57,  # 0x6e outsb
    _p58,  # 0x6f outsd
    _p59,  # 0x70 j.0
    _p60,  # 0x71 j.1
    _p61,  # 0x72 j.2
    _p62,  # 0x73 j.3
    _p63,  # 0x74 j.4
    _p64,  # 0x75 j.5
    _p65,  # 0x76 j.6
    _p66,  # 0x77 j.7
    _p67,  # 0x78 j.8
    _p68,  # 0x79 j.9
    _p69,  # 0x7a j.10
    _p70,  # 0x7b j.11
    _p71,  # 0x7c j.12
    _p72,  # 0x7d j.13
    _p73,  # 0x7e j.14
    _p74,  # 0x7f j.15
    _p83,  # 0x80 group[adc/add/and/cmp/or/sbb/sub/xor]
    _p92,  # 0x81 group[adc/add/and/cmp/or/sbb/sub/xor]
    None,  # 0x82 invalid
    _p93,  # 0x83 group[adc/add/and/cmp/or/sbb/sub/xor]
    _p94,  # 0x84 test
    _p95,  # 0x85 test
    _p96,  # 0x86 xchg
    _p97,  # 0x87 xchg
    _p98,  # 0x88 mov
    _p99,  # 0x89 mov
    _p100,  # 0x8a mov
    _p101,  # 0x8b mov
    _p102,  # 0x8c mov_sreg
    _p103,  # 0x8d lea
    _p104,  # 0x8e mov_sreg
    _p106,  # 0x8f group[pop]
    _p107,  # 0x90 nop
    _p108,  # 0x91 xchg
    _p108,  # 0x92 xchg
    _p108,  # 0x93 xchg
    _p108,  # 0x94 xchg
    _p108,  # 0x95 xchg
    _p108,  # 0x96 xchg
    _p108,  # 0x97 xchg
    _p109,  # 0x98 cwde
    _p110,  # 0x99 cdq
    None,  # 0x9a invalid
    _p111,  # 0x9b fwait
    _p112,  # 0x9c pushf
    _p113,  # 0x9d popf
    _p114,  # 0x9e sahf
    _p115,  # 0x9f lahf
    _p116,  # 0xa0 mov_moffs
    _p117,  # 0xa1 mov_moffs
    _p116,  # 0xa2 mov_moffs
    _p117,  # 0xa3 mov_moffs
    _p118,  # 0xa4 movs
    _p119,  # 0xa5 movs
    _p120,  # 0xa6 cmps
    _p121,  # 0xa7 cmps
    _p122,  # 0xa8 test
    _p123,  # 0xa9 test
    _p124,  # 0xaa stos
    _p125,  # 0xab stos
    _p126,  # 0xac lods
    _p127,  # 0xad lods
    _p128,  # 0xae scas
    _p129,  # 0xaf scas
    _p130,  # 0xb0 mov
    _p130,  # 0xb1 mov
    _p130,  # 0xb2 mov
    _p130,  # 0xb3 mov
    _p130,  # 0xb4 mov
    _p130,  # 0xb5 mov
    _p130,  # 0xb6 mov
    _p130,  # 0xb7 mov
    _p131,  # 0xb8 mov
    _p131,  # 0xb9 mov
    _p131,  # 0xba mov
    _p131,  # 0xbb mov
    _p131,  # 0xbc mov
    _p131,  # 0xbd mov
    _p131,  # 0xbe mov
    _p131,  # 0xbf mov
    _p139,  # 0xc0 group[rcl/rcr/rol/ror/sar/shl/shr]
    _p140,  # 0xc1 group[rcl/rcr/rol/ror/sar/shl/shr]
    _p141,  # 0xc2 ret
    _p142,  # 0xc3 ret
    None,  # 0xc4 invalid
    None,  # 0xc5 invalid
    _p144,  # 0xc6 group[mov]
    _p146,  # 0xc7 group[mov]
    _p147,  # 0xc8 enter
    _p148,  # 0xc9 leave
    _p149,  # 0xca retf
    _p150,  # 0xcb retf
    _p151,  # 0xcc int3
    _p152,  # 0xcd int
    None,  # 0xce invalid
    _p153,  # 0xcf iret
    _p161,  # 0xd0 group[rcl/rcr/rol/ror/sar/shl/shr]
    _p162,  # 0xd1 group[rcl/rcr/rol/ror/sar/shl/shr]
    _p170,  # 0xd2 group[rcl/rcr/rol/ror/sar/shl/shr]
    _p171,  # 0xd3 group[rcl/rcr/rol/ror/sar/shl/shr]
    None,  # 0xd4 invalid
    None,  # 0xd5 invalid
    None,  # 0xd6 invalid
    _p172,  # 0xd7 xlat
    _p174,  # 0xd8 group[x87]
    _p174,  # 0xd9 group[x87]
    _p174,  # 0xda group[x87]
    _p174,  # 0xdb group[x87]
    _p174,  # 0xdc group[x87]
    _p174,  # 0xdd group[x87]
    _p174,  # 0xde group[x87]
    _p174,  # 0xdf group[x87]
    _p175,  # 0xe0 loopne
    _p176,  # 0xe1 loope
    _p177,  # 0xe2 loop
    _p178,  # 0xe3 jrcxz
    _p179,  # 0xe4 in
    _p180,  # 0xe5 in
    _p181,  # 0xe6 out
    _p182,  # 0xe7 out
    _p183,  # 0xe8 call
    _p184,  # 0xe9 jmp
    None,  # 0xea invalid
    _p185,  # 0xeb jmp
    _p186,  # 0xec in
    _p187,  # 0xed in
    _p188,  # 0xee out
    _p189,  # 0xef out
    None,  # 0xf0 invalid
    _p190,  # 0xf1 int1
    None,  # 0xf2 invalid
    None,  # 0xf3 invalid
    _p191,  # 0xf4 hlt
    _p192,  # 0xf5 cmc
    _p200,  # 0xf6 group[div/idiv/imul1/mul/neg/not/test]
    _p202,  # 0xf7 group[div/idiv/imul1/mul/neg/not/test]
    _p203,  # 0xf8 clc
    _p204,  # 0xf9 stc
    _p205,  # 0xfa cli
    _p206,  # 0xfb sti
    _p207,  # 0xfc cld
    _p208,  # 0xfd std
    _p211,  # 0xfe group[dec/inc]
    _p215,  # 0xff group[call/dec/inc/jmp/push]
)
_P2 = (
    _p222,  # 0x00 group[lldt/ltr/sldt/str/verr/verw]
    _p230,  # 0x01 group[invlpg/lgdt/lidt/lmsw/sgdt/sidt/smsw]
    _p231,  # 0x02 lar
    _p232,  # 0x03 lsl
    None,  # 0x04 invalid
    _p233,  # 0x05 syscall
    _p234,  # 0x06 clts
    None,  # 0x07 invalid
    None,  # 0x08 invalid
    None,  # 0x09 invalid
    None,  # 0x0a invalid
    _p235,  # 0x0b ud2
    None,  # 0x0c invalid
    _p237,  # 0x0d group[prefetch]
    None,  # 0x0e invalid
    None,  # 0x0f invalid
    _p238,  # 0x10 simd.10
    _p239,  # 0x11 simd.11
    _p240,  # 0x12 simd.12
    _p241,  # 0x13 simd.13
    _p242,  # 0x14 simd.14
    _p243,  # 0x15 simd.15
    _p244,  # 0x16 simd.16
    _p245,  # 0x17 simd.17
    _p247,  # 0x18 group[nop]
    _p247,  # 0x19 group[nop]
    _p247,  # 0x1a group[nop]
    _p247,  # 0x1b group[nop]
    _p247,  # 0x1c group[nop]
    _p247,  # 0x1d group[nop]
    _p247,  # 0x1e group[nop]
    _p247,  # 0x1f group[nop]
    None,  # 0x20 invalid
    None,  # 0x21 invalid
    None,  # 0x22 invalid
    None,  # 0x23 invalid
    None,  # 0x24 invalid
    None,  # 0x25 invalid
    None,  # 0x26 invalid
    None,  # 0x27 invalid
    _p248,  # 0x28 simd.28
    _p249,  # 0x29 simd.29
    _p250,  # 0x2a simd.2a
    _p251,  # 0x2b simd.2b
    _p252,  # 0x2c simd.2c
    _p253,  # 0x2d simd.2d
    _p254,  # 0x2e simd.2e
    _p255,  # 0x2f simd.2f
    _p256,  # 0x30 wrmsr
    _p257,  # 0x31 rdtsc
    _p258,  # 0x32 rdmsr
    _p259,  # 0x33 rdpmc
    _p260,  # 0x34 sysenter
    _p261,  # 0x35 sysexit
    None,  # 0x36 invalid
    None,  # 0x37 invalid
    None,  # 0x38 invalid
    None,  # 0x39 invalid
    None,  # 0x3a invalid
    None,  # 0x3b invalid
    None,  # 0x3c invalid
    None,  # 0x3d invalid
    None,  # 0x3e invalid
    None,  # 0x3f invalid
    _p262,  # 0x40 cmov.0
    _p263,  # 0x41 cmov.1
    _p264,  # 0x42 cmov.2
    _p265,  # 0x43 cmov.3
    _p266,  # 0x44 cmov.4
    _p267,  # 0x45 cmov.5
    _p268,  # 0x46 cmov.6
    _p269,  # 0x47 cmov.7
    _p270,  # 0x48 cmov.8
    _p271,  # 0x49 cmov.9
    _p272,  # 0x4a cmov.10
    _p273,  # 0x4b cmov.11
    _p274,  # 0x4c cmov.12
    _p275,  # 0x4d cmov.13
    _p276,  # 0x4e cmov.14
    _p277,  # 0x4f cmov.15
    _p278,  # 0x50 simd.50
    _p279,  # 0x51 simd.51
    _p280,  # 0x52 simd.52
    _p281,  # 0x53 simd.53
    _p282,  # 0x54 simd.54
    _p283,  # 0x55 simd.55
    _p284,  # 0x56 simd.56
    _p285,  # 0x57 simd.57
    _p286,  # 0x58 simd.58
    _p287,  # 0x59 simd.59
    _p288,  # 0x5a simd.5a
    _p289,  # 0x5b simd.5b
    _p290,  # 0x5c simd.5c
    _p291,  # 0x5d simd.5d
    _p292,  # 0x5e simd.5e
    _p293,  # 0x5f simd.5f
    _p294,  # 0x60 simd.60
    _p295,  # 0x61 simd.61
    _p296,  # 0x62 simd.62
    _p297,  # 0x63 simd.63
    _p298,  # 0x64 simd.64
    _p299,  # 0x65 simd.65
    _p300,  # 0x66 simd.66
    _p301,  # 0x67 simd.67
    _p302,  # 0x68 simd.68
    _p303,  # 0x69 simd.69
    _p304,  # 0x6a simd.6a
    _p305,  # 0x6b simd.6b
    _p306,  # 0x6c simd.6c
    _p307,  # 0x6d simd.6d
    _p308,  # 0x6e simd.6e
    _p309,  # 0x6f simd.6f
    _p310,  # 0x70 simd.70
    _p311,  # 0x71 simd.71
    _p312,  # 0x72 simd.72
    _p313,  # 0x73 simd.73
    _p314,  # 0x74 simd.74
    _p315,  # 0x75 simd.75
    _p316,  # 0x76 simd.76
    _p317,  # 0x77 emms
    None,  # 0x78 invalid
    None,  # 0x79 invalid
    None,  # 0x7a invalid
    None,  # 0x7b invalid
    _p318,  # 0x7c simd.7c
    _p319,  # 0x7d simd.7d
    _p320,  # 0x7e simd.7e
    _p321,  # 0x7f simd.7f
    _p322,  # 0x80 j.0
    _p323,  # 0x81 j.1
    _p324,  # 0x82 j.2
    _p325,  # 0x83 j.3
    _p326,  # 0x84 j.4
    _p327,  # 0x85 j.5
    _p328,  # 0x86 j.6
    _p329,  # 0x87 j.7
    _p330,  # 0x88 j.8
    _p331,  # 0x89 j.9
    _p332,  # 0x8a j.10
    _p333,  # 0x8b j.11
    _p334,  # 0x8c j.12
    _p335,  # 0x8d j.13
    _p336,  # 0x8e j.14
    _p337,  # 0x8f j.15
    _p339,  # 0x90 group[set.0]
    _p341,  # 0x91 group[set.1]
    _p343,  # 0x92 group[set.2]
    _p345,  # 0x93 group[set.3]
    _p347,  # 0x94 group[set.4]
    _p349,  # 0x95 group[set.5]
    _p351,  # 0x96 group[set.6]
    _p353,  # 0x97 group[set.7]
    _p355,  # 0x98 group[set.8]
    _p357,  # 0x99 group[set.9]
    _p359,  # 0x9a group[set.10]
    _p361,  # 0x9b group[set.11]
    _p363,  # 0x9c group[set.12]
    _p365,  # 0x9d group[set.13]
    _p367,  # 0x9e group[set.14]
    _p369,  # 0x9f group[set.15]
    _p370,  # 0xa0 push_sreg
    _p371,  # 0xa1 pop_sreg
    _p372,  # 0xa2 cpuid
    _p373,  # 0xa3 bt
    _p374,  # 0xa4 shld
    _p375,  # 0xa5 shld
    None,  # 0xa6 invalid
    None,  # 0xa7 invalid
    _p370,  # 0xa8 push_sreg
    _p371,  # 0xa9 pop_sreg
    None,  # 0xaa invalid
    _p376,  # 0xab bts
    _p377,  # 0xac shrd
    _p378,  # 0xad shrd
    _p380,  # 0xae group[fence]
    _p381,  # 0xaf imul
    _p382,  # 0xb0 cmpxchg
    _p383,  # 0xb1 cmpxchg
    None,  # 0xb2 invalid
    _p384,  # 0xb3 btr
    None,  # 0xb4 invalid
    None,  # 0xb5 invalid
    _p385,  # 0xb6 movzx
    _p386,  # 0xb7 movzx
    _p387,  # 0xb8 popcnt
    None,  # 0xb9 invalid
    _p392,  # 0xba group[bt/btc/btr/bts]
    _p393,  # 0xbb btc
    _p394,  # 0xbc bsf
    _p395,  # 0xbd bsr
    _p396,  # 0xbe movsx
    _p397,  # 0xbf movsx
    _p398,  # 0xc0 xadd
    _p399,  # 0xc1 xadd
    None,  # 0xc2 invalid
    _p400,  # 0xc3 movnti
    None,  # 0xc4 invalid
    None,  # 0xc5 invalid
    None,  # 0xc6 invalid
    _p404,  # 0xc7 group[cmpxchg8b/rdrand/rdseed]
    _p405,  # 0xc8 bswap
    _p405,  # 0xc9 bswap
    _p405,  # 0xca bswap
    _p405,  # 0xcb bswap
    _p405,  # 0xcc bswap
    _p405,  # 0xcd bswap
    _p405,  # 0xce bswap
    _p405,  # 0xcf bswap
    _p406,  # 0xd0 simd.d0
    _p407,  # 0xd1 simd.d1
    _p408,  # 0xd2 simd.d2
    _p409,  # 0xd3 simd.d3
    _p410,  # 0xd4 simd.d4
    _p411,  # 0xd5 simd.d5
    _p412,  # 0xd6 simd.d6
    None,  # 0xd7 invalid
    _p413,  # 0xd8 simd.d8
    _p414,  # 0xd9 simd.d9
    _p415,  # 0xda simd.da
    _p416,  # 0xdb simd.db
    _p417,  # 0xdc simd.dc
    _p418,  # 0xdd simd.dd
    _p419,  # 0xde simd.de
    _p420,  # 0xdf simd.df
    _p421,  # 0xe0 simd.e0
    _p422,  # 0xe1 simd.e1
    _p423,  # 0xe2 simd.e2
    _p424,  # 0xe3 simd.e3
    _p425,  # 0xe4 simd.e4
    _p426,  # 0xe5 simd.e5
    _p427,  # 0xe6 simd.e6
    _p428,  # 0xe7 simd.e7
    _p429,  # 0xe8 simd.e8
    _p430,  # 0xe9 simd.e9
    _p431,  # 0xea simd.ea
    _p432,  # 0xeb simd.eb
    _p433,  # 0xec simd.ec
    _p434,  # 0xed simd.ed
    _p435,  # 0xee simd.ee
    _p436,  # 0xef simd.ef
    None,  # 0xf0 invalid
    _p437,  # 0xf1 simd.f1
    _p438,  # 0xf2 simd.f2
    _p439,  # 0xf3 simd.f3
    _p440,  # 0xf4 simd.f4
    _p441,  # 0xf5 simd.f5
    _p442,  # 0xf6 simd.f6
    _p443,  # 0xf7 simd.f7
    _p444,  # 0xf8 simd.f8
    _p445,  # 0xf9 simd.f9
    _p446,  # 0xfa simd.fa
    _p447,  # 0xfb simd.fb
    _p448,  # 0xfc simd.fc
    _p449,  # 0xfd simd.fd
    _p450,  # 0xfe simd.fe
    None,  # 0xff invalid
)


# ---------------------------------------------------------------------------
# Decode engine (emitted from repro.isa.compile_tables; ``try_decode`` is
# the same body as ``raw_decode`` with error codes rewritten to None so
# the superset sweep pays no wrapper call per offset).
# ---------------------------------------------------------------------------

_OSA = object.__setattr__
_IFB = int.from_bytes
_INS_NEW = Instruction.__new__
_MEM_NEW = MemOp.__new__
_IMM_NEW = ImmOp.__new__
_REL_NEW = RelOp.__new__
_FSC_GET = _FSC.get

#: Error codes returned by :func:`raw_decode` in place of an Instruction,
#: index-aligned with (InvalidOpcodeError, TruncatedError, TooLongError).
INVALID, TRUNCATED, TOO_LONG = 0, 1, 2

def raw_decode(buf, offset):
    """Decode at ``buf[offset]``: an Instruction, or an error code int."""
    n = len(buf)
    if offset < 0 or offset >= n:
        return 1
    pos = offset
    pmask = 0
    rex = 0
    rexp = False
    while True:
        b = buf[pos]
        c = _BCLASS[b]
        if not c:
            break
        if c == 1:
            pmask |= _PBIT[b]
            rex = 0
            rexp = False
        else:
            rex = b & 15
            rexp = True
        pos += 1
        if pos - offset >= 15:
            return 2
        if pos >= n:
            return 1
    pos += 1
    if b == 15:
        if pos >= n:
            return 1
        b = buf[pos]
        pos += 1
        plan = _P2[b]
    else:
        plan = _P1[b]
    if plan is None:
        return 0
    enc, imm, flags, ek, rd, wr, group, extra, tpl = plan
    if flags & 1:
        opsize = 8
    elif pmask & 1 and not rex & 8:
        opsize = 16
    elif rex & 8 or flags & 2:
        opsize = 64
    else:
        opsize = 32
    dest_fam = -1
    src_fam = -1
    addr_mask = 0
    dest_mem = False
    imm_op = None

    if 1 <= enc <= 5:
        # ModRM (+SIB, +disp) forms.  The r/m width uses the *parent*
        # operand size even for groups (oracle parity).
        if pos >= n:
            return 1
        modrm = buf[pos]
        pos += 1
        mod = modrm >> 6
        reg_f = ((rex & 4) << 1) | ((modrm >> 3) & 7)
        rm = modrm & 7
        if flags & 0xE00:
            rm_w = 8 if flags & 512 else (16 if flags & 1024 else 32)
        else:
            rm_w = opsize
        rm_op = None
        if mod == 3:
            rm_fam = rm | ((rex & 1) << 3)
            if rm_w == 32:
                rm_op = _RO32[rm_fam]
            elif rm_w == 64:
                rm_op = _RO64[rm_fam]
            elif rm_w == 16:
                rm_op = _RO16[rm_fam]
            elif rexp:
                rm_op = _RO8X[rm_fam]
            else:
                rm_op = _RO8L[rm_fam]
        else:
            rm_fam = -1
            base = None
            index = None
            scale = 1
            disp = 0
            rip = False
            if rm == 4:
                if pos >= n:
                    return 1
                sib = buf[pos]
                pos += 1
                scale = 1 << (sib >> 6)
                inum = ((sib >> 3) & 7) | ((rex & 2) << 2)
                if inum != 4:
                    index = _R64[inum]
                    addr_mask = 1 << inum
                if sib & 7 == 5 and mod == 0:
                    if pos + 4 > n:
                        return 1
                    disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                    pos += 4
                else:
                    bnum = (sib & 7) | ((rex & 1) << 3)
                    base = _R64[bnum]
                    addr_mask |= 1 << bnum
            elif rm == 5 and mod == 0:
                rip = True
                if pos + 4 > n:
                    return 1
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
            else:
                bnum = rm | ((rex & 1) << 3)
                base = _R64[bnum]
                addr_mask = 1 << bnum
            if mod == 1:
                if pos >= n:
                    return 1
                disp = buf[pos]
                pos += 1
                if disp >= 128:
                    disp -= 256
            elif mod == 2:
                if pos + 4 > n:
                    return 1
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
        if group is not None:
            plan = group[reg_f & 7]
            if plan is None:
                return 0
            _, imm, flags, ek, rd, wr, _, extra, tpl = plan
            if flags & 4:
                opsize = 16 if pmask & 1 and not rex & 8 else 64
        if enc <= 3:
            if opsize == 32:
                reg_op = _RO32[reg_f]
            elif opsize == 64:
                reg_op = _RO64[reg_f]
            elif opsize == 16:
                reg_op = _RO16[reg_f]
            elif rexp:
                reg_op = _RO8X[reg_f]
            else:
                reg_op = _RO8L[reg_f]
        if imm:
            if imm == 1:
                if pos >= n:
                    return 1
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return 1
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if mod != 3:
            rm_op = _MEM_NEW(MemOp)
            _OSA(rm_op, "__dict__", {
                "base": base, "index": index, "scale": scale, "disp": disp,
                "rip_relative": rip,
                "target": pos + disp if rip else None, "width": rm_w})
            dest_mem = enc != 2 and enc != 3
        if enc == 1:
            dest_fam = rm_fam
            src_fam = reg_f
            ops = ((rm_op, reg_op) if imm_op is None
                   else (rm_op, reg_op, imm_op))
        elif enc <= 3:
            dest_fam = reg_f
            src_fam = rm_fam
            ops = ((reg_op, rm_op) if imm_op is None
                   else (reg_op, rm_op, imm_op))
        else:
            dest_fam = rm_fam
            if flags & 128:
                ops = (rm_op, _IMM1)
            elif imm_op is None:
                ops = (rm_op,)
            else:
                ops = (rm_op, imm_op)
    elif enc == 0:
        ops = ()
    elif enc == 9:
        # Relative branch displacement; target is offset-absolute.
        if imm == 1:
            isz = 1
        elif imm:
            isz = 2 if opsize == 16 else 4
        else:
            isz = 4
        if pos + isz > n:
            return 1
        if isz == 1:
            dv = buf[pos]
            pos += 1
            if dv >= 128:
                dv -= 256
        else:
            dv = _IFB(buf[pos:pos + isz], "little", signed=True)
            pos += isz
        rel = _REL_NEW(RelOp)
        _OSA(rel, "__dict__", {"target": pos + dv})
        ops = (rel,)
    elif enc == 6 or enc == 7 or enc == 8:
        # Immediate-only and register-in-opcode forms.
        if enc != 6:
            num = (b & 7) | ((rex & 1) << 3)
            if opsize == 32:
                reg_op = _RO32[num]
            elif opsize == 64:
                reg_op = _RO64[num]
            elif opsize == 16:
                reg_op = _RO16[num]
            elif rexp:
                reg_op = _RO8X[num]
            else:
                reg_op = _RO8L[num]
        if imm:
            if imm == 1:
                if pos >= n:
                    return 1
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return 1
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if enc == 6:
            ops = (imm_op,)
        elif flags & 64:
            if opsize == 32:
                rax = _RO32[0]
            elif opsize == 64:
                rax = _RO64[0]
            else:
                rax = _RO16[0]
            ops = (rax, reg_op)
            dest_fam = 0
            src_fam = num
        else:
            dest_fam = num
            ops = (reg_op,) if imm_op is None else (reg_op, imm_op)
    elif enc == 10:
        # mov rAX <-> moffs64: 8-byte absolute address, no checks
        # (oracle parity: returns before the length and lock checks).
        if pos + 8 > n:
            return 1
        pos += 8
        ops = ()
    else:
        # enter imm16, imm8: same check exemption as moffs.
        if pos + 3 > n:
            return 1
        pos += 3
        ops = ()

    if pos - offset > 15 and not flags & 16384:
        return 2
    if pmask & 2 and not flags & 16384:
        if not (flags & 32 and dest_mem):
            return 0
    if ek:
        if addr_mask and not flags & 16:
            rd |= addr_mask
        if ek == 6:
            if dest_fam >= 0:
                m = 1 << dest_fam
                rd |= m
                wr |= m
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 5:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 4:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 2:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
        elif ek == 1:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
        elif ek == 3:
            m = 0
            if dest_fam >= 0:
                m = 1 << dest_fam
            if src_fam >= 0:
                m |= 1 << src_fam
            rd |= m
            wr |= m
        reads = _FSC_GET(rd)
        if reads is None:
            reads = _fs(rd)
        writes = _FSC_GET(wr)
        if writes is None:
            writes = _fs(wr)
    else:
        reads = rd
        writes = wr
    raw = buf[offset:pos]
    if raw.__class__ is not bytes:
        raw = bytes(raw)
    d = tpl.copy()
    d["offset"] = offset
    d["length"] = pos - offset
    d["operands"] = ops
    d["reads"] = reads
    d["writes"] = writes
    d["raw"] = raw
    if flags & 256:
        d["mnemonic"] = extra[opsize]
    if pmask & 4:
        d["rare"] = True
    ins = _INS_NEW(Instruction)
    _OSA(ins, "__dict__", d)
    return ins


def try_decode(buf, offset=0):
    """Decode at ``buf[offset]``: an Instruction, or None on failure."""
    n = len(buf)
    if offset < 0 or offset >= n:
        return None
    pos = offset
    pmask = 0
    rex = 0
    rexp = False
    while True:
        b = buf[pos]
        c = _BCLASS[b]
        if not c:
            break
        if c == 1:
            pmask |= _PBIT[b]
            rex = 0
            rexp = False
        else:
            rex = b & 15
            rexp = True
        pos += 1
        if pos - offset >= 15:
            return None
        if pos >= n:
            return None
    pos += 1
    if b == 15:
        if pos >= n:
            return None
        b = buf[pos]
        pos += 1
        plan = _P2[b]
    else:
        plan = _P1[b]
    if plan is None:
        return None
    enc, imm, flags, ek, rd, wr, group, extra, tpl = plan
    if flags & 1:
        opsize = 8
    elif pmask & 1 and not rex & 8:
        opsize = 16
    elif rex & 8 or flags & 2:
        opsize = 64
    else:
        opsize = 32
    dest_fam = -1
    src_fam = -1
    addr_mask = 0
    dest_mem = False
    imm_op = None

    if 1 <= enc <= 5:
        # ModRM (+SIB, +disp) forms.  The r/m width uses the *parent*
        # operand size even for groups (oracle parity).
        if pos >= n:
            return None
        modrm = buf[pos]
        pos += 1
        mod = modrm >> 6
        reg_f = ((rex & 4) << 1) | ((modrm >> 3) & 7)
        rm = modrm & 7
        if flags & 0xE00:
            rm_w = 8 if flags & 512 else (16 if flags & 1024 else 32)
        else:
            rm_w = opsize
        rm_op = None
        if mod == 3:
            rm_fam = rm | ((rex & 1) << 3)
            if rm_w == 32:
                rm_op = _RO32[rm_fam]
            elif rm_w == 64:
                rm_op = _RO64[rm_fam]
            elif rm_w == 16:
                rm_op = _RO16[rm_fam]
            elif rexp:
                rm_op = _RO8X[rm_fam]
            else:
                rm_op = _RO8L[rm_fam]
        else:
            rm_fam = -1
            base = None
            index = None
            scale = 1
            disp = 0
            rip = False
            if rm == 4:
                if pos >= n:
                    return None
                sib = buf[pos]
                pos += 1
                scale = 1 << (sib >> 6)
                inum = ((sib >> 3) & 7) | ((rex & 2) << 2)
                if inum != 4:
                    index = _R64[inum]
                    addr_mask = 1 << inum
                if sib & 7 == 5 and mod == 0:
                    if pos + 4 > n:
                        return None
                    disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                    pos += 4
                else:
                    bnum = (sib & 7) | ((rex & 1) << 3)
                    base = _R64[bnum]
                    addr_mask |= 1 << bnum
            elif rm == 5 and mod == 0:
                rip = True
                if pos + 4 > n:
                    return None
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
            else:
                bnum = rm | ((rex & 1) << 3)
                base = _R64[bnum]
                addr_mask = 1 << bnum
            if mod == 1:
                if pos >= n:
                    return None
                disp = buf[pos]
                pos += 1
                if disp >= 128:
                    disp -= 256
            elif mod == 2:
                if pos + 4 > n:
                    return None
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
        if group is not None:
            plan = group[reg_f & 7]
            if plan is None:
                return None
            _, imm, flags, ek, rd, wr, _, extra, tpl = plan
            if flags & 4:
                opsize = 16 if pmask & 1 and not rex & 8 else 64
        if enc <= 3:
            if opsize == 32:
                reg_op = _RO32[reg_f]
            elif opsize == 64:
                reg_op = _RO64[reg_f]
            elif opsize == 16:
                reg_op = _RO16[reg_f]
            elif rexp:
                reg_op = _RO8X[reg_f]
            else:
                reg_op = _RO8L[reg_f]
        if imm:
            if imm == 1:
                if pos >= n:
                    return None
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return None
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if mod != 3:
            rm_op = _MEM_NEW(MemOp)
            _OSA(rm_op, "__dict__", {
                "base": base, "index": index, "scale": scale, "disp": disp,
                "rip_relative": rip,
                "target": pos + disp if rip else None, "width": rm_w})
            dest_mem = enc != 2 and enc != 3
        if enc == 1:
            dest_fam = rm_fam
            src_fam = reg_f
            ops = ((rm_op, reg_op) if imm_op is None
                   else (rm_op, reg_op, imm_op))
        elif enc <= 3:
            dest_fam = reg_f
            src_fam = rm_fam
            ops = ((reg_op, rm_op) if imm_op is None
                   else (reg_op, rm_op, imm_op))
        else:
            dest_fam = rm_fam
            if flags & 128:
                ops = (rm_op, _IMM1)
            elif imm_op is None:
                ops = (rm_op,)
            else:
                ops = (rm_op, imm_op)
    elif enc == 0:
        ops = ()
    elif enc == 9:
        # Relative branch displacement; target is offset-absolute.
        if imm == 1:
            isz = 1
        elif imm:
            isz = 2 if opsize == 16 else 4
        else:
            isz = 4
        if pos + isz > n:
            return None
        if isz == 1:
            dv = buf[pos]
            pos += 1
            if dv >= 128:
                dv -= 256
        else:
            dv = _IFB(buf[pos:pos + isz], "little", signed=True)
            pos += isz
        rel = _REL_NEW(RelOp)
        _OSA(rel, "__dict__", {"target": pos + dv})
        ops = (rel,)
    elif enc == 6 or enc == 7 or enc == 8:
        # Immediate-only and register-in-opcode forms.
        if enc != 6:
            num = (b & 7) | ((rex & 1) << 3)
            if opsize == 32:
                reg_op = _RO32[num]
            elif opsize == 64:
                reg_op = _RO64[num]
            elif opsize == 16:
                reg_op = _RO16[num]
            elif rexp:
                reg_op = _RO8X[num]
            else:
                reg_op = _RO8L[num]
        if imm:
            if imm == 1:
                if pos >= n:
                    return None
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return None
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if enc == 6:
            ops = (imm_op,)
        elif flags & 64:
            if opsize == 32:
                rax = _RO32[0]
            elif opsize == 64:
                rax = _RO64[0]
            else:
                rax = _RO16[0]
            ops = (rax, reg_op)
            dest_fam = 0
            src_fam = num
        else:
            dest_fam = num
            ops = (reg_op,) if imm_op is None else (reg_op, imm_op)
    elif enc == 10:
        # mov rAX <-> moffs64: 8-byte absolute address, no checks
        # (oracle parity: returns before the length and lock checks).
        if pos + 8 > n:
            return None
        pos += 8
        ops = ()
    else:
        # enter imm16, imm8: same check exemption as moffs.
        if pos + 3 > n:
            return None
        pos += 3
        ops = ()

    if pos - offset > 15 and not flags & 16384:
        return None
    if pmask & 2 and not flags & 16384:
        if not (flags & 32 and dest_mem):
            return None
    if ek:
        if addr_mask and not flags & 16:
            rd |= addr_mask
        if ek == 6:
            if dest_fam >= 0:
                m = 1 << dest_fam
                rd |= m
                wr |= m
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 5:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 4:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 2:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
        elif ek == 1:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
        elif ek == 3:
            m = 0
            if dest_fam >= 0:
                m = 1 << dest_fam
            if src_fam >= 0:
                m |= 1 << src_fam
            rd |= m
            wr |= m
        reads = _FSC_GET(rd)
        if reads is None:
            reads = _fs(rd)
        writes = _FSC_GET(wr)
        if writes is None:
            writes = _fs(wr)
    else:
        reads = rd
        writes = wr
    raw = buf[offset:pos]
    if raw.__class__ is not bytes:
        raw = bytes(raw)
    d = tpl.copy()
    d["offset"] = offset
    d["length"] = pos - offset
    d["operands"] = ops
    d["reads"] = reads
    d["writes"] = writes
    d["raw"] = raw
    if flags & 256:
        d["mnemonic"] = extra[opsize]
    if pmask & 4:
        d["rare"] = True
    ins = _INS_NEW(Instruction)
    _OSA(ins, "__dict__", d)
    return ins

