"""Offline table compiler for the x86-64 decoder hot path.

Superset disassembly decodes a candidate instruction at *every byte
offset* of every text section, so the interpretive table walk in
:mod:`repro.isa.decoder` is the floor under every workload.  This module
lowers the opcode tables (:data:`~repro.isa.tables.ONE_BYTE`,
:data:`~repro.isa.tables.TWO_BYTE`, the ModRM groups) plus the
prefix/REX/ModRM/SIB/immediate grammar into a specialized generated
module, ``repro/isa/_compiled.py``, following the classic
generate-then-minimize pipeline of table-driven lexer generators:

* **Byte-level DFA for the prefix scanner.**  The 256 byte values
  collapse into three equivalence classes (opcode/exit, legacy prefix,
  REX) stored in a dense ``bytes`` table, and a second table maps each
  prefix byte to the *one-hot bit* the rest of the decode actually
  consumes (operand size, lock, rare segment override).  That is the
  minimized form of the oracle's ``set()``-per-decode prefix tracking.

* **Dense-array dispatch over the opcode keyspace.**  The (escape,
  opcode) keyspace is perfect-hashed by construction -- two 256-entry
  tuples -- and every entry is a pre-lowered *plan*: a flat 9-tuple
  with the encoding code, immediate code, a flag bitfield, an
  effect-kind code, precomputed register-effect masks, and a template
  dict of the plan-constant Instruction fields.
  Group opcodes carry their ModRM.reg sub-plans fully merged at compile
  time (immediate inheritance, ``default_64`` overrides, the D2/D3
  implicit ``cl`` read), so the engine never consults
  :class:`~repro.isa.opcodes.GroupEntry` at run time.

* **Plan interning.**  Identical plans are deduplicated into shared
  module-level constants (the 6-opcode ALU blocks, the 16 ``j.cc``
  variants per immediate width, the SIMD ranges), which both shrinks
  the generated module and keeps the dispatch tuples pointing at a few
  dozen heavily-reused objects.

* **Allocation-lean engine.**  The emitted ``raw_decode`` works on any
  indexable byte buffer with no reader object, interns ``RegOp``/
  ``Register`` values in dense pools, interns ``frozenset`` effect sets
  keyed by 16-bit family masks, and constructs the frozen dataclasses
  via ``__new__`` + a single ``object.__setattr__`` of ``__dict__``.
  Decode failures return a small int (0 invalid / 1 truncated / 2 too
  long) instead of raising, so the superset sweep pays no exception
  machinery on the ~7% of offsets that fail.

The generated module is **checked in**; regenerate it with::

    python -m repro.isa.compile_tables

and verify drift (CI does this) with::

    python -m repro.isa.compile_tables --check

The interpretive decoder remains the differential-testing oracle: the
engine must be bit-identical to it on every input, including its
deliberate quirks (pre-group operand size for the r/m width, the
``mov``-moffs/``enter`` check exemptions, REX reset on a later legacy
prefix, error-class priorities).  ``tests/isa/test_decoder_differential``
enforces that contract.
"""

from __future__ import annotations

import argparse
import hashlib
import re
import sys
from pathlib import Path

from .decoder import _LOCKABLE, _NO_GPR_SEMANTICS, _RAX_IMPLICIT
from .opcodes import (IMPLICIT_EFFECTS, READS_ONLY, WRITE_ONLY_DEST,
                      Encoding, GroupEntry, ImmSize, OpcodeInfo)
from .registers import RCX
from .tables import (FLAG_READERS, FLAG_WRITERS, LEGACY_PREFIXES, ONE_BYTE,
                     TWO_BYTE)

#: Where the generated module lives (checked in, next to this compiler).
GENERATED_PATH = Path(__file__).with_name("_compiled.py")

# ---------------------------------------------------------------------------
# Plan representation
#
# A plan is the flat 9-tuple the engine dispatches on:
#
#   (enc, imm, flags, ek, reads, writes, group, extra, tpl)
#
# enc   0 NONE / 1 MR / 2 RM / 3 RMI / 4 M / 5 MI / 6 I / 7 O / 8 OI /
#       9 D / 10 MOFFS / 11 ENTER      (1..5 are the ModRM forms)
# imm   0 none / 1 B / 2 W / 3 Z / 4 V
# ek    effect kind: 0 static (reads/writes are final frozensets),
#       1 read-dest, 2 write-dest-only (pop/lea), 3 xchg, 4 reads-only,
#       5 write-dest-read-src, 6 read-modify-write, 7 no GPR semantics
# flags bitfield, see F_* below
# group None, or the 8 merged ModRM.reg sub-plans
# extra None, or the operand-size rename map for cwde/cdq
# tpl   dict of the plan-constant Instruction fields (mnemonic, flow,
#       flag booleans, base rarity); the engine copies it per decode
# ---------------------------------------------------------------------------

F_BYTEOP = 1 << 0     # fixed 8-bit operand size
F_DEF64 = 1 << 1      # operand size defaults to 64-bit
F_DEF64OVR = 1 << 2   # group entry re-applies the 64-bit default
F_RARE = 1 << 3       # essentially never in compiler output
F_NOADDR = 1 << 4     # hint: memory operand's address regs are not read
F_LOCKABLE = 1 << 5   # LOCK prefix legal (with a memory destination)
F_XCHGPAIR = 1 << 6   # O-encoded xchg: operands are (rAX, reg)
F_IMM1 = 1 << 7       # D0/D1 shifts: implicit ImmOp(1, 8)
F_RENAME = 1 << 8     # mnemonic renames with operand size (extra map)
F_RM8 = 1 << 9        # r/m operand is 8-bit  (movzx/movsx from r/m8)
F_RM16 = 1 << 10      # r/m operand is 16-bit (movzx/movsx from r/m16)
F_RM32 = 1 << 11      # r/m operand is 32-bit (movsxd)
F_RFLAGS = 1 << 12    # reads the arithmetic flags
F_WFLAGS = 1 << 13    # writes the arithmetic flags
F_NOCHECKS = 1 << 14  # mov_moffs/enter skip the length and lock checks

_ENC_CODES = {
    Encoding.NONE: 0, Encoding.MR: 1, Encoding.RM: 2, Encoding.RMI: 3,
    Encoding.M: 4, Encoding.MI: 5, Encoding.I: 6, Encoding.O: 7,
    Encoding.OI: 8, Encoding.D: 9,
}
ENC_MOFFS = 10
ENC_ENTER = 11

_IMM_CODES = {ImmSize.NONE: 0, ImmSize.B: 1, ImmSize.W: 2, ImmSize.Z: 3,
              ImmSize.V: 4}

#: Encodings whose operands can never name a general-purpose register,
#: so the full effect sets are computable at compile time.
_STATIC_ENCS = frozenset({0, 6, 9, ENC_MOFFS, ENC_ENTER})

#: The operand-size mnemonic renames (mirrors the decoder's literal map).
_RENAMES = {
    "cwde": {16: "cbw", 32: "cwde", 64: "cdqe"},
    "cdq": {16: "cwd", 32: "cdq", 64: "cqo"},
}


def _effect_kind(mnemonic: str) -> int:
    """Classify a mnemonic's operand effects (the oracle's branch order)."""
    if mnemonic in _NO_GPR_SEMANTICS or mnemonic.startswith("simd."):
        return 7
    if mnemonic in ("push", "call", "jmp"):
        return 1
    if mnemonic == "pop":
        return 2
    if mnemonic in ("mul", "imul1", "div", "idiv"):
        return 1
    if mnemonic == "xchg":
        return 3
    if mnemonic == "lea":
        return 2
    if mnemonic in READS_ONLY:
        return 4
    if mnemonic in WRITE_ONLY_DEST or mnemonic.startswith(("set.", "mov")):
        return 5
    return 6


def _mask(families) -> int:
    m = 0
    for family in families:
        m |= 1 << family
    return m


def _implicit_masks(mnemonic: str) -> tuple[int, int]:
    implicit = IMPLICIT_EFFECTS.get(mnemonic)
    if implicit is None:
        return 0, 0
    return _mask(implicit[0]), _mask(implicit[1])


def _static_effects(mnemonic: str, encoding: Encoding) -> tuple[int, int]:
    """Final effect masks for plans with no register-bearing operands."""
    reads, writes = _implicit_masks(mnemonic)
    if encoding is Encoding.I and mnemonic in _RAX_IMPLICIT:
        reads |= 1       # rAX
        if mnemonic not in ("cmp", "test"):
            writes |= 1
    return reads, writes


def _common_flags(mnemonic: str) -> int:
    flags = 0
    if mnemonic in ("nop", "prefetch"):
        flags |= F_NOADDR
    if mnemonic in _LOCKABLE:
        flags |= F_LOCKABLE
    if mnemonic in FLAG_READERS:
        flags |= F_RFLAGS
    if mnemonic in FLAG_WRITERS:
        flags |= F_WFLAGS
    return flags


class _Emitter:
    """Interns emitted expressions into named module-level constants."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._names: dict[str, str] = {}
        self._counts: dict[str, int] = {}

    def intern(self, expr: str, kind: str) -> str:
        name = self._names.get(expr)
        if name is None:
            index = self._counts.get(kind, 0)
            self._counts[kind] = index + 1
            name = f"_{kind}{index}"
            self._names[expr] = name
            self.lines.append(f"{name} = {expr}")
        return name

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)


def _plan_expr(mnemonic: str, flow, enc: int, imm: int, flags: int, ek: int,
               rmask: int, wmask: int, group_ref: str, extra: str,
               em: _Emitter) -> str:
    if ek == 0:
        reads, writes = f"_fs({rmask:#x})", f"_fs({wmask:#x})"
    else:
        reads, writes = f"{rmask:#x}", f"{wmask:#x}"
    # The template dict holds the plan-constant Instruction fields; the
    # engine finishes each decode with tpl.copy() plus the six varying
    # keys, which beats rebuilding the full field dict per instruction.
    tpl = ("{" + f"'mnemonic': {mnemonic!r}, 'flow': _F.{flow.name}, "
           f"'reads_flags': {bool(flags & F_RFLAGS)}, "
           f"'writes_flags': {bool(flags & F_WFLAGS)}, "
           f"'rare': {bool(flags & F_RARE)}" + "}")
    tpl_ref = em.intern(tpl, "t")
    return (f"({enc}, {imm}, {flags:#x}, {ek}, "
            f"{reads}, {writes}, {group_ref}, {extra}, {tpl_ref})")


def _lower_entry(entry: GroupEntry | None, parent: OpcodeInfo,
                 two_byte: bool, opcode: int, em: _Emitter) -> str:
    """Merge one group entry with its parent into a standalone plan."""
    if entry is None:
        return "None"
    mnemonic = entry.mnemonic
    assert mnemonic not in _RENAMES, "rename mnemonics never sit in groups"
    imm = entry.imm if entry.imm is not ImmSize.NONE else parent.imm
    flags = _common_flags(mnemonic)
    if parent.rare:
        flags |= F_RARE
    if entry.default_64:
        flags |= F_DEF64OVR
    if not two_byte and opcode in (0xD0, 0xD1):
        flags |= F_IMM1
        assert imm is ImmSize.NONE, "D0/D1 carry no encoded immediate"
    ek = _effect_kind(mnemonic)
    rmask, wmask = _implicit_masks(mnemonic)
    if not two_byte and opcode in (0xD2, 0xD3):
        rmask |= 1 << RCX        # shift-by-cl implicitly reads rcx
    expr = _plan_expr(mnemonic, entry.flow, 0, _IMM_CODES[imm], flags, ek,
                      rmask, wmask, "None", "None", em)
    return em.intern(expr, "p")


def _lower(info: OpcodeInfo | None, two_byte: bool, opcode: int,
           em: _Emitter) -> str:
    """Lower one opcode-table entry into an interned plan reference."""
    if info is None:
        return "None"
    mnemonic = info.mnemonic
    enc = _ENC_CODES[info.encoding]
    imm = _IMM_CODES[info.imm]
    flags = _common_flags(mnemonic)
    extra = "None"
    if info.byte_op:
        flags |= F_BYTEOP
    if info.default_64:
        flags |= F_DEF64
    if info.rare:
        flags |= F_RARE
    if mnemonic == "mov_moffs":
        enc = ENC_MOFFS
        flags |= F_NOCHECKS
    elif mnemonic == "enter":
        enc = ENC_ENTER
        flags |= F_NOCHECKS
    if two_byte and opcode in (0xB6, 0xBE):
        flags |= F_RM8
    elif two_byte and opcode in (0xB7, 0xBF):
        flags |= F_RM16
    elif not two_byte and opcode == 0x63:
        flags |= F_RM32
    if enc in (7, 8) and mnemonic == "xchg":
        flags |= F_XCHGPAIR
    if mnemonic in _RENAMES:
        rename = _RENAMES[mnemonic]
        base = _static_effects(mnemonic, info.encoding)
        for other in rename.values():
            assert _static_effects(other, info.encoding) == base, mnemonic
            assert _common_flags(other) == _common_flags(mnemonic), mnemonic
        flags |= F_RENAME
        extra = ("{" + ", ".join(f"{size}: {name!r}"
                                 for size, name in sorted(rename.items()))
                 + "}")

    group_ref = "None"
    if info.group is not None:
        assert 1 <= enc <= 5, "groups always take a ModRM byte"
        subs = [_lower_entry(entry, info, two_byte, opcode, em)
                for entry in info.group]
        group_ref = em.intern("(" + ", ".join(subs) + ")", "g")

    if enc in _STATIC_ENCS:
        ek = 0
        rmask, wmask = _static_effects(mnemonic, info.encoding)
        assert not (enc == 6 and imm == 0), "I-encoded plans carry an imm"
    else:
        ek = _effect_kind(mnemonic)
        rmask, wmask = _implicit_masks(mnemonic)
        assert not (enc == 8 and imm == 0), "OI-encoded plans carry an imm"
    expr = _plan_expr(mnemonic, info.flow, enc, imm, flags, ek, rmask, wmask,
                      group_ref, extra, em)
    return em.intern(expr, "p")


def _byte_tables() -> tuple[list[int], list[int]]:
    """The prefix scanner's byte equivalence classes and one-hot bits."""
    bclass = [0] * 256
    pbit = [0] * 256
    for byte in LEGACY_PREFIXES:
        bclass[byte] = 1
    for byte in range(0x40, 0x50):
        bclass[byte] = 2
    pbit[0x66] = 1                    # operand-size override
    pbit[0xF0] = 2                    # lock
    for byte in (0x2E, 0x36, 0x3E, 0x26):
        pbit[byte] = 4                # rare segment overrides
    return bclass, pbit


def _describe(info: OpcodeInfo | None) -> str:
    if info is None:
        return "invalid"
    if info.group is not None:
        members = "/".join(sorted({e.mnemonic for e in info.group
                                   if e is not None}))
        return f"group[{members}]"
    return info.mnemonic


def _emit_dispatch(name: str, refs: list[str],
                   table: tuple[OpcodeInfo | None, ...]) -> list[str]:
    lines = [f"{name} = ("]
    for opcode, (ref, info) in enumerate(zip(refs, table)):
        lines.append(f"    {ref},  # {opcode:#04x} {_describe(info)}")
    lines.append(")")
    return lines


def generate() -> str:
    """Compile the opcode tables into the generated module's source."""
    em = _Emitter()
    one_byte = [_lower(info, False, opcode, em)
                for opcode, info in enumerate(ONE_BYTE)]
    two_byte = [_lower(info, True, opcode, em)
                for opcode, info in enumerate(TWO_BYTE)]
    bclass, pbit = _byte_tables()

    body: list[str] = []
    body.append("from .instruction import Instruction")
    body.append("from .opcodes import FlowKind as _F")
    body.append("from .operands import ImmOp, MemOp, RegOp, RelOp")
    body.append("from .registers import Register")
    body.append("")
    body.append('BACKEND = "compiled"')
    body.append("")
    body.append("# Interned register/operand pools (index = hardware "
                "number).")
    body.append("_R64 = tuple(Register(n, 64) for n in range(16))")
    body.append("_RO64 = tuple(RegOp(r) for r in _R64)")
    body.append("_RO32 = tuple(RegOp(Register(n, 32)) for n in range(16))")
    body.append("_RO16 = tuple(RegOp(Register(n, 16)) for n in range(16))")
    body.append("_RO8X = tuple(RegOp(Register(n, 8)) for n in range(16))")
    body.append("_RO8L = tuple(RegOp(Register(n, 8, high_byte=n >= 4))")
    body.append("              for n in range(8))")
    body.append("_IMM1 = ImmOp(1, 8)")
    body.append("_IMM8 = tuple(ImmOp(v - 256 if v >= 128 else v, 8)")
    body.append("              for v in range(256))")
    body.append("")
    body.append("# Interned effect sets keyed by 16-bit register-family "
                "mask.")
    body.append("_FSC = {}")
    body.append("")
    body.append("")
    body.append("def _fs(mask):")
    body.append("    fs = _FSC.get(mask)")
    body.append("    if fs is None:")
    body.append("        fs = _FSC[mask] = frozenset(")
    body.append("            f for f in range(16) if mask >> f & 1)")
    body.append("    return fs")
    body.append("")
    body.append("")
    body.append("# Prefix-scanner DFA: byte -> equivalence class")
    body.append("# (0 opcode/exit, 1 legacy prefix, 2 REX) and byte -> "
                "prefix bit")
    body.append("# (1 operand size, 2 lock, 4 rare segment override).")
    body.append('_BCLASS = bytes.fromhex(')
    hexes = bytes(bclass).hex()
    for i in range(0, 512, 64):
        body.append(f'    "{hexes[i:i + 64]}"')
    body.append(")")
    body.append('_PBIT = bytes.fromhex(')
    hexes = bytes(pbit).hex()
    for i in range(0, 512, 64):
        body.append(f'    "{hexes[i:i + 64]}"')
    body.append(")")
    body.append("")
    body.append("# Interned decode plans:")
    body.append("#   (enc, imm, flags, ek, reads, writes, group, extra, "
                "tpl)")
    body.append("# enc: 0 none 1 MR 2 RM 3 RMI 4 M 5 MI 6 I 7 O 8 OI 9 D")
    body.append("#      10 moffs 11 enter; imm: 0 none 1 B 2 W 3 Z 4 V")
    body.append("# ek: 0 static 1 read-dest 2 write-dest 3 xchg 4 "
                "reads-only")
    body.append("#     5 write-read 6 rmw 7 no-GPR; flags: see "
                "repro.isa.compile_tables.F_*")
    body.append("# tpl: the plan-constant Instruction fields; the engine")
    body.append("#      copies it and fills the six per-decode keys.")
    body.extend(em.lines)
    body.append("")
    body.append("# Dense opcode dispatch: plan (or None) per opcode byte.")
    body.extend(_emit_dispatch("_P1", one_byte, ONE_BYTE))
    body.extend(_emit_dispatch("_P2", two_byte, TWO_BYTE))
    body.append("")
    body.append(_engine_source())
    body.append("")
    text = "\n".join(body)

    digest = hashlib.sha256(text.encode()).hexdigest()[:16]
    entries = sum(info is not None for info in ONE_BYTE + TWO_BYTE)
    header = f'''"""x86-64 decode engine compiled from the opcode tables.

GENERATED FILE -- DO NOT EDIT.  Regenerate with:

    python -m repro.isa.compile_tables

and check for drift (CI enforces this) with:

    python -m repro.isa.compile_tables --check

The compiler (repro.isa.compile_tables) lowers ONE_BYTE/TWO_BYTE and the
ModRM groups into the dense dispatch tables below and appends its engine
template verbatim.  The interpretive decoder (repro.isa.decoder) is the
behavioral oracle; the differential tests keep this module bit-identical
to it.

table digest : {digest}
opcode plans : {entries} table entries -> {em.count("p")} interned plans,
               {em.count("g")} interned groups, {em.count("t")} interned
               field templates
"""

'''
    return header + text + "\n"


_ENGINE_PRELUDE = '''
# ---------------------------------------------------------------------------
# Decode engine (emitted from repro.isa.compile_tables; ``try_decode`` is
# the same body as ``raw_decode`` with error codes rewritten to None so
# the superset sweep pays no wrapper call per offset).
# ---------------------------------------------------------------------------

_OSA = object.__setattr__
_IFB = int.from_bytes
_INS_NEW = Instruction.__new__
_MEM_NEW = MemOp.__new__
_IMM_NEW = ImmOp.__new__
_REL_NEW = RelOp.__new__
_FSC_GET = _FSC.get

#: Error codes returned by :func:`raw_decode` in place of an Instruction,
#: index-aligned with (InvalidOpcodeError, TruncatedError, TooLongError).
INVALID, TRUNCATED, TOO_LONG = 0, 1, 2
'''

_ENGINE_RAW = '''
def raw_decode(buf, offset):
    """Decode at ``buf[offset]``: an Instruction, or an error code int."""
    n = len(buf)
    if offset < 0 or offset >= n:
        return 1
    pos = offset
    pmask = 0
    rex = 0
    rexp = False
    while True:
        b = buf[pos]
        c = _BCLASS[b]
        if not c:
            break
        if c == 1:
            pmask |= _PBIT[b]
            rex = 0
            rexp = False
        else:
            rex = b & 15
            rexp = True
        pos += 1
        if pos - offset >= 15:
            return 2
        if pos >= n:
            return 1
    pos += 1
    if b == 15:
        if pos >= n:
            return 1
        b = buf[pos]
        pos += 1
        plan = _P2[b]
    else:
        plan = _P1[b]
    if plan is None:
        return 0
    enc, imm, flags, ek, rd, wr, group, extra, tpl = plan
    if flags & 1:
        opsize = 8
    elif pmask & 1 and not rex & 8:
        opsize = 16
    elif rex & 8 or flags & 2:
        opsize = 64
    else:
        opsize = 32
    dest_fam = -1
    src_fam = -1
    addr_mask = 0
    dest_mem = False
    imm_op = None

    if 1 <= enc <= 5:
        # ModRM (+SIB, +disp) forms.  The r/m width uses the *parent*
        # operand size even for groups (oracle parity).
        if pos >= n:
            return 1
        modrm = buf[pos]
        pos += 1
        mod = modrm >> 6
        reg_f = ((rex & 4) << 1) | ((modrm >> 3) & 7)
        rm = modrm & 7
        if flags & 0xE00:
            rm_w = 8 if flags & 512 else (16 if flags & 1024 else 32)
        else:
            rm_w = opsize
        rm_op = None
        if mod == 3:
            rm_fam = rm | ((rex & 1) << 3)
            if rm_w == 32:
                rm_op = _RO32[rm_fam]
            elif rm_w == 64:
                rm_op = _RO64[rm_fam]
            elif rm_w == 16:
                rm_op = _RO16[rm_fam]
            elif rexp:
                rm_op = _RO8X[rm_fam]
            else:
                rm_op = _RO8L[rm_fam]
        else:
            rm_fam = -1
            base = None
            index = None
            scale = 1
            disp = 0
            rip = False
            if rm == 4:
                if pos >= n:
                    return 1
                sib = buf[pos]
                pos += 1
                scale = 1 << (sib >> 6)
                inum = ((sib >> 3) & 7) | ((rex & 2) << 2)
                if inum != 4:
                    index = _R64[inum]
                    addr_mask = 1 << inum
                if sib & 7 == 5 and mod == 0:
                    if pos + 4 > n:
                        return 1
                    disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                    pos += 4
                else:
                    bnum = (sib & 7) | ((rex & 1) << 3)
                    base = _R64[bnum]
                    addr_mask |= 1 << bnum
            elif rm == 5 and mod == 0:
                rip = True
                if pos + 4 > n:
                    return 1
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
            else:
                bnum = rm | ((rex & 1) << 3)
                base = _R64[bnum]
                addr_mask = 1 << bnum
            if mod == 1:
                if pos >= n:
                    return 1
                disp = buf[pos]
                pos += 1
                if disp >= 128:
                    disp -= 256
            elif mod == 2:
                if pos + 4 > n:
                    return 1
                disp = _IFB(buf[pos:pos + 4], "little", signed=True)
                pos += 4
        if group is not None:
            plan = group[reg_f & 7]
            if plan is None:
                return 0
            _, imm, flags, ek, rd, wr, _, extra, tpl = plan
            if flags & 4:
                opsize = 16 if pmask & 1 and not rex & 8 else 64
        if enc <= 3:
            if opsize == 32:
                reg_op = _RO32[reg_f]
            elif opsize == 64:
                reg_op = _RO64[reg_f]
            elif opsize == 16:
                reg_op = _RO16[reg_f]
            elif rexp:
                reg_op = _RO8X[reg_f]
            else:
                reg_op = _RO8L[reg_f]
        if imm:
            if imm == 1:
                if pos >= n:
                    return 1
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return 1
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if mod != 3:
            rm_op = _MEM_NEW(MemOp)
            _OSA(rm_op, "__dict__", {
                "base": base, "index": index, "scale": scale, "disp": disp,
                "rip_relative": rip,
                "target": pos + disp if rip else None, "width": rm_w})
            dest_mem = enc != 2 and enc != 3
        if enc == 1:
            dest_fam = rm_fam
            src_fam = reg_f
            ops = ((rm_op, reg_op) if imm_op is None
                   else (rm_op, reg_op, imm_op))
        elif enc <= 3:
            dest_fam = reg_f
            src_fam = rm_fam
            ops = ((reg_op, rm_op) if imm_op is None
                   else (reg_op, rm_op, imm_op))
        else:
            dest_fam = rm_fam
            if flags & 128:
                ops = (rm_op, _IMM1)
            elif imm_op is None:
                ops = (rm_op,)
            else:
                ops = (rm_op, imm_op)
    elif enc == 0:
        ops = ()
    elif enc == 9:
        # Relative branch displacement; target is offset-absolute.
        if imm == 1:
            isz = 1
        elif imm:
            isz = 2 if opsize == 16 else 4
        else:
            isz = 4
        if pos + isz > n:
            return 1
        if isz == 1:
            dv = buf[pos]
            pos += 1
            if dv >= 128:
                dv -= 256
        else:
            dv = _IFB(buf[pos:pos + isz], "little", signed=True)
            pos += isz
        rel = _REL_NEW(RelOp)
        _OSA(rel, "__dict__", {"target": pos + dv})
        ops = (rel,)
    elif enc == 6 or enc == 7 or enc == 8:
        # Immediate-only and register-in-opcode forms.
        if enc != 6:
            num = (b & 7) | ((rex & 1) << 3)
            if opsize == 32:
                reg_op = _RO32[num]
            elif opsize == 64:
                reg_op = _RO64[num]
            elif opsize == 16:
                reg_op = _RO16[num]
            elif rexp:
                reg_op = _RO8X[num]
            else:
                reg_op = _RO8L[num]
        if imm:
            if imm == 1:
                if pos >= n:
                    return 1
                imm_op = _IMM8[buf[pos]]
                pos += 1
            else:
                if imm == 3:
                    isz = 2 if opsize == 16 else 4
                elif imm == 2:
                    isz = 2
                else:
                    isz = (2 if opsize == 16
                           else (4 if opsize == 32 else 8))
                if pos + isz > n:
                    return 1
                iv = _IFB(buf[pos:pos + isz], "little", signed=True)
                pos += isz
                imm_op = _IMM_NEW(ImmOp)
                _OSA(imm_op, "__dict__", {"value": iv, "width": isz * 8})
        if enc == 6:
            ops = (imm_op,)
        elif flags & 64:
            if opsize == 32:
                rax = _RO32[0]
            elif opsize == 64:
                rax = _RO64[0]
            else:
                rax = _RO16[0]
            ops = (rax, reg_op)
            dest_fam = 0
            src_fam = num
        else:
            dest_fam = num
            ops = (reg_op,) if imm_op is None else (reg_op, imm_op)
    elif enc == 10:
        # mov rAX <-> moffs64: 8-byte absolute address, no checks
        # (oracle parity: returns before the length and lock checks).
        if pos + 8 > n:
            return 1
        pos += 8
        ops = ()
    else:
        # enter imm16, imm8: same check exemption as moffs.
        if pos + 3 > n:
            return 1
        pos += 3
        ops = ()

    if pos - offset > 15 and not flags & 16384:
        return 2
    if pmask & 2 and not flags & 16384:
        if not (flags & 32 and dest_mem):
            return 0
    if ek:
        if addr_mask and not flags & 16:
            rd |= addr_mask
        if ek == 6:
            if dest_fam >= 0:
                m = 1 << dest_fam
                rd |= m
                wr |= m
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 5:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 4:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
            if src_fam >= 0:
                rd |= 1 << src_fam
        elif ek == 2:
            if dest_fam >= 0:
                wr |= 1 << dest_fam
        elif ek == 1:
            if dest_fam >= 0:
                rd |= 1 << dest_fam
        elif ek == 3:
            m = 0
            if dest_fam >= 0:
                m = 1 << dest_fam
            if src_fam >= 0:
                m |= 1 << src_fam
            rd |= m
            wr |= m
        reads = _FSC_GET(rd)
        if reads is None:
            reads = _fs(rd)
        writes = _FSC_GET(wr)
        if writes is None:
            writes = _fs(wr)
    else:
        reads = rd
        writes = wr
    raw = buf[offset:pos]
    if raw.__class__ is not bytes:
        raw = bytes(raw)
    d = tpl.copy()
    d["offset"] = offset
    d["length"] = pos - offset
    d["operands"] = ops
    d["reads"] = reads
    d["writes"] = writes
    d["raw"] = raw
    if flags & 256:
        d["mnemonic"] = extra[opsize]
    if pmask & 4:
        d["rare"] = True
    ins = _INS_NEW(Instruction)
    _OSA(ins, "__dict__", d)
    return ins
'''


def _engine_source() -> str:
    """The emitted engine: prelude, ``raw_decode``, and ``try_decode``.

    ``try_decode`` is not a wrapper -- the superset sweep calls it once
    per byte offset, so a wrapper's call-and-check would be the single
    largest per-offset cost.  Instead it is the same engine body with
    the integer error returns mechanically rewritten to ``return None``.
    """
    try_src = _ENGINE_RAW.replace(
        'def raw_decode(buf, offset):\n'
        '    """Decode at ``buf[offset]``: an Instruction, '
        'or an error code int."""',
        'def try_decode(buf, offset=0):\n'
        '    """Decode at ``buf[offset]``: an Instruction, '
        'or None on failure."""',
        1)
    try_src, substitutions = re.subn(
        r"(?m)^(\s*)return [012]$", r"\1return None", try_src)
    if try_src == _ENGINE_RAW or not substitutions:
        raise AssertionError("try_decode transform did not apply")
    return (_ENGINE_PRELUDE.rstrip("\n") + "\n\n"
            + _ENGINE_RAW.strip("\n") + "\n\n\n"
            + try_src.strip("\n"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.isa.compile_tables",
        description="Regenerate the compiled decode module.")
    parser.add_argument("--check", action="store_true",
                        help="exit 2 if the checked-in module is stale")
    parser.add_argument("--stdout", action="store_true",
                        help="print the generated source instead of writing")
    args = parser.parse_args(argv)

    text = generate()
    if args.stdout:
        sys.stdout.write(text)
        return 0
    if args.check:
        on_disk = (GENERATED_PATH.read_text()
                   if GENERATED_PATH.exists() else "")
        if on_disk != text:
            sys.stderr.write(
                f"{GENERATED_PATH} is stale: regenerate with "
                "`python -m repro.isa.compile_tables`\n")
            return 2
        print(f"{GENERATED_PATH.name} is up to date")
        return 0
    GENERATED_PATH.write_text(text)
    print(f"wrote {GENERATED_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
