"""A minimal stripped-binary container.

Real evaluations in this space run on ELF/PE files; this reproduction
uses a deliberately simple container with the same essential content: a
set of named sections (at most one executable text section), an entry
point, and nothing else -- no symbols, no relocations, no exception
tables.  That *absence* is the point of the paper: the disassembler gets
machine code and an entry point only.

The on-disk format is a small little-endian structure (see
:meth:`Binary.to_bytes`); ground truth travels separately
(:mod:`repro.binary.groundtruth`) so that a "stripped" binary really
contains no metadata.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

_MAGIC = b"RPRB"
_VERSION = 1


class BinaryFormatError(ValueError):
    """Raised when deserializing a malformed container."""


@dataclass(frozen=True)
class Section:
    """One named section of the binary."""

    name: str
    addr: int
    data: bytes
    executable: bool = False

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass
class Binary:
    """A loaded binary: sections plus an entry point."""

    sections: list[Section] = field(default_factory=list)
    entry: int = 0

    @property
    def text(self) -> Section:
        """The (single) executable section."""
        executable = [s for s in self.sections if s.executable]
        if len(executable) != 1:
            raise BinaryFormatError(
                f"expected exactly one executable section, found "
                f"{len(executable)}")
        return executable[0]

    def section(self, name: str) -> Section:
        for s in self.sections:
            if s.name == name:
                return s
        raise KeyError(f"no section named {name!r}")

    def section_at(self, addr: int) -> Section | None:
        for s in self.sections:
            if s.contains(addr):
                return s
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the container format."""
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<HHQ", _VERSION, len(self.sections), self.entry)
        for s in self.sections:
            name = s.name.encode("utf-8")
            out += struct.pack("<H", len(name))
            out += name
            out += struct.pack("<QQB", s.addr, len(s.data), int(s.executable))
            out += s.data
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> Binary:
        """Deserialize a container produced by :meth:`to_bytes`."""
        if blob[:4] != _MAGIC:
            raise BinaryFormatError("bad magic")
        try:
            version, count, entry = struct.unpack_from("<HHQ", blob, 4)
        except struct.error as error:
            raise BinaryFormatError(f"truncated header: {error}") from error
        if version != _VERSION:
            raise BinaryFormatError(f"unsupported version {version}")
        pos = 4 + struct.calcsize("<HHQ")
        sections = []
        for _ in range(count):
            try:
                (name_len,) = struct.unpack_from("<H", blob, pos)
                pos += 2
                raw_name = blob[pos:pos + name_len]
                if len(raw_name) != name_len:
                    raise BinaryFormatError("truncated section name")
                name = raw_name.decode("utf-8")
                pos += name_len
                addr, size, executable = struct.unpack_from("<QQB", blob,
                                                            pos)
            except struct.error as error:
                raise BinaryFormatError(
                    f"truncated section header: {error}") from error
            except UnicodeDecodeError as error:
                raise BinaryFormatError(
                    f"section name is not UTF-8: {error}") from error
            pos += struct.calcsize("<QQB")
            data = blob[pos:pos + size]
            if len(data) != size:
                raise BinaryFormatError("truncated section data")
            pos += size
            sections.append(Section(name, addr, data, bool(executable)))
        if pos != len(blob):
            raise BinaryFormatError("trailing garbage after sections")
        return cls(sections=sections, entry=entry)
