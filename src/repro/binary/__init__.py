"""Binary container, ground-truth labels, and paired I/O."""

from .container import Binary, BinaryFormatError, Section
from .groundtruth import ByteKind, FunctionInfo, GroundTruth
from .loader import TestCase

__all__ = ["Binary", "BinaryFormatError", "Section", "ByteKind",
           "FunctionInfo", "GroundTruth", "TestCase"]
