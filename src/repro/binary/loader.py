"""Convenience I/O: save/load a binary together with its ground truth.

A :class:`TestCase` pairs a stripped binary with the labels the
evaluation needs.  On disk this is two files (``.bin`` container +
``.gt.json`` sidecar), preserving the fiction that the disassembler under
test sees a genuinely metadata-free input.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .container import Binary
from .groundtruth import GroundTruth


@dataclass
class TestCase:
    """A stripped binary plus its (separately stored) ground truth."""

    name: str
    binary: Binary
    truth: GroundTruth

    @property
    def text(self) -> bytes:
        return self.binary.text.data

    def save(self, directory: str | Path) -> tuple[Path, Path]:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        bin_path = directory / f"{self.name}.bin"
        gt_path = directory / f"{self.name}.gt.json"
        bin_path.write_bytes(self.binary.to_bytes())
        gt_path.write_text(self.truth.to_json())
        return bin_path, gt_path

    @classmethod
    def load(cls, directory: str | Path, name: str) -> TestCase:
        directory = Path(directory)
        binary = Binary.from_bytes((directory / f"{name}.bin").read_bytes())
        truth = GroundTruth.from_json(
            (directory / f"{name}.gt.json").read_text())
        return cls(name=name, binary=binary, truth=truth)
