"""Convenience I/O: save/load a binary together with its ground truth.

A :class:`TestCase` pairs a stripped binary with the labels the
evaluation needs.  On disk this is two files (``.bin`` container +
``.gt.json`` sidecar), preserving the fiction that the disassembler under
test sees a genuinely metadata-free input.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .container import Binary
from .groundtruth import GroundTruth


@dataclass
class TestCase:
    """A stripped binary plus its (separately stored) ground truth."""

    name: str
    binary: Binary
    truth: GroundTruth

    @property
    def text(self) -> bytes:
        return self.binary.text.data

    def save(self, directory: str | Path,
             fmt: str = "rprb") -> tuple[Path, Path]:
        """Write the binary (+ ground-truth sidecar) to ``directory``.

        ``fmt`` selects the container: ``"rprb"`` writes the native
        ``.bin``, ``"elf"`` writes a real ELF64 executable as ``.elf``
        (via :func:`repro.formats.emit_elf`); the ground truth travels
        in the same ``.gt.json`` sidecar either way.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if fmt == "rprb":
            bin_path = directory / f"{self.name}.bin"
            bin_path.write_bytes(self.binary.to_bytes())
        elif fmt == "elf":
            from ..formats import emit_elf
            bin_path = directory / f"{self.name}.elf"
            bin_path.write_bytes(emit_elf(self.binary))
        else:
            raise ValueError(f"unknown save format {fmt!r} "
                             f"(expected 'rprb' or 'elf')")
        gt_path = directory / f"{self.name}.gt.json"
        gt_path.write_text(self.truth.to_json())
        return bin_path, gt_path

    @classmethod
    def load(cls, directory: str | Path, name: str) -> TestCase:
        directory = Path(directory)
        binary = Binary.from_bytes((directory / f"{name}.bin").read_bytes())
        truth = GroundTruth.from_json(
            (directory / f"{name}.gt.json").read_text())
        return cls(name=name, binary=binary, truth=truth)
