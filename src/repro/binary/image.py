"""A flat read view over all sections of a binary.

Jump-table resolution must read table entries wherever the compiler put
them -- inside the text section or in a read-only data section.  The
:class:`MemoryImage` maps absolute addresses to bytes across every
section of a :class:`~repro.binary.container.Binary`.

Text-section offsets and addresses coincide in this reproduction (text
is loaded at address 0), so resolved code targets are usable as text
offsets directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .container import Binary, Section


@dataclass
class MemoryImage:
    """Address-indexed reads across the sections of a binary."""

    sections: list[Section]

    @classmethod
    def from_binary(cls, binary: Binary) -> MemoryImage:
        return cls(sections=list(binary.sections))

    @classmethod
    def from_text(cls, text: bytes) -> MemoryImage:
        """An image holding only a text section at address 0."""
        return cls(sections=[Section(".text", 0, text, executable=True)])

    def section_at(self, addr: int) -> Section | None:
        for section in self.sections:
            if section.contains(addr):
                return section
        return None

    def read(self, addr: int, size: int) -> bytes | None:
        """Bytes at [addr, addr+size), or None if not fully mapped."""
        section = self.section_at(addr)
        if section is None or addr + size > section.end:
            return None
        start = addr - section.addr
        return section.data[start:start + size]

    def read_u64(self, addr: int) -> int | None:
        raw = self.read(addr, 8)
        return int.from_bytes(raw, "little") if raw is not None else None

    def read_i32(self, addr: int) -> int | None:
        raw = self.read(addr, 4)
        return (int.from_bytes(raw, "little", signed=True)
                if raw is not None else None)

    def in_text(self, addr: int) -> bool:
        section = self.section_at(addr)
        return section is not None and section.executable
